//! `quake` — the reproduction's command-line driver.

use quake_app::characterize::AnalyzedInstance;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::report::{fmt_mb_per_s, fmt_seconds, telemetry_summary, Table};
use quake_core::machine::{BlockRegime, Processor};
use quake_core::model::eq1::{required_sustained_bandwidth, required_tc};
use quake_core::model::eq2::half_bandwidth_point;
use quake_core::paperdata;
use quake_fem::assembly::{assemble, GroundMaterial};
use quake_fem::source::{PointSource, Ricker};
use quake_fem::timestep::Simulation;
use quake_repro::cli::{help, CliError, Invocation};
use quake_sparse::dense::Vec3;
use std::process::ExitCode;

/// Exit code for malformed command lines, distinct from runtime failures
/// (`1`) per Unix convention.
const EXIT_USAGE: u8 = 2;

fn usage_error(e: &CliError) -> ExitCode {
    eprintln!("error: {e}");
    eprintln!("usage: quake <command> [--flag value]...  (see 'quake help')");
    ExitCode::from(EXIT_USAGE)
}

fn main() -> ExitCode {
    // The proc transport re-executes this binary as shard children; the
    // hook routes them into the shard protocol (and never returns for
    // them) before any argument parsing can run.
    quake_app::transport::proc::shard_host_hook();
    let inv = match Invocation::parse(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(e) => return usage_error(&e),
    };
    let result = match inv.command.as_str() {
        "help" => {
            println!("{}", help());
            Ok(())
        }
        "mesh" => cmd_mesh(&inv),
        "characterize" => cmd_characterize(&inv),
        "requirements" => cmd_requirements(&inv),
        "simulate" => cmd_simulate(&inv),
        "smvp-run" => cmd_smvp_run(&inv),
        other => unreachable!("parser admits only known commands, got {other}"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // Flag-validation failures surface from inside commands as boxed
        // CliErrors; they are usage errors too.
        Err(e) => match e.downcast_ref::<CliError>() {
            Some(cli) => usage_error(cli),
            None => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

fn generate(inv: &Invocation) -> Result<QuakeApp, Box<dyn std::error::Error>> {
    let period: f64 = inv.get("period", 10.0)?;
    let scale: f64 = inv.get("scale", 8.0)?;
    let seed: u64 = inv.get("seed", 0x5eedu64)?;
    let mut config = AppConfig::new(format!("sf{period}"), period, scale);
    config.seed = seed;
    Ok(QuakeApp::generate(config)?)
}

fn cmd_mesh(inv: &Invocation) -> Result<(), Box<dyn std::error::Error>> {
    let app = generate(inv)?;
    let stats = app.size_stats();
    println!("{stats}");
    println!("avg node degree: {:.2}", app.mesh.avg_node_degree());
    println!(
        "estimated runtime memory: {:.2} MB (paper rule: 1.2 KB/node)",
        app.mesh.estimated_runtime_bytes() as f64 / 1e6
    );
    let q = app.mesh.quality();
    println!(
        "radius-edge ratio: mean {:.2}, worst {:.2}",
        q.mean_radius_edge, q.max_radius_edge
    );
    let out = inv.get_str("out", "");
    if !out.is_empty() {
        let file = std::fs::File::create(&out)?;
        quake_mesh::io::write_text(&app.mesh, std::io::BufWriter::new(file))?;
        println!("wrote {out}");
    }
    Ok(())
}

fn partitioner(name: &str) -> Result<Box<dyn quake_partition::geometric::Partitioner>, CliError> {
    use quake_partition::geometric::{LinearPartition, RandomPartition, RecursiveBisection};
    use quake_partition::sfc::MortonPartition;
    use quake_partition::spectral::SpectralBisection;
    Ok(match name {
        "rib" => Box::new(RecursiveBisection::inertial()),
        "rcb" => Box::new(RecursiveBisection::coordinate()),
        "spectral" => Box::new(SpectralBisection::default()),
        "morton" => Box::new(MortonPartition),
        "linear" => Box::new(LinearPartition),
        "random" => Box::new(RandomPartition { seed: 1 }),
        other => {
            return Err(CliError::BadValue {
                flag: "partitioner".to_string(),
                value: other.to_string(),
            })
        }
    })
}

fn cmd_characterize(inv: &Invocation) -> Result<(), Box<dyn std::error::Error>> {
    let app = generate(inv)?;
    let parts = inv.get_usize_list("parts", &[4, 8, 16])?;
    let strat = partitioner(&inv.get_str("partitioner", "rib"))?;
    let mut t = Table::new(vec![
        "instance", "F", "C_max", "B_max", "M_avg", "F/C_max", "beta",
    ]);
    for &p in &parts {
        let a = AnalyzedInstance::characterize(&app.config.name, &app.mesh, strat.as_ref(), p)?;
        let i = &a.instance;
        t.row(vec![
            i.label(),
            i.f.to_string(),
            i.c_max.to_string(),
            i.b_max.to_string(),
            format!("{:.0}", i.m_avg),
            format!("{:.0}", i.comp_comm_ratio()),
            format!("{:.2}", a.beta),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn cmd_requirements(inv: &Invocation) -> Result<(), Box<dyn std::error::Error>> {
    let mflops: f64 = inv.get("mflops", 200.0)?;
    let efficiency: f64 = inv.get("efficiency", 0.9)?;
    if !(efficiency > 0.0 && efficiency < 1.0) {
        return Err(Box::new(CliError::BadValue {
            flag: "efficiency".to_string(),
            value: efficiency.to_string(),
        }));
    }
    let app = inv.get_str("app", "sf2");
    let instances = paperdata::figure7_app(&app);
    if instances.is_empty() {
        return Err(Box::new(CliError::BadValue {
            flag: "app".to_string(),
            value: app,
        }));
    }
    let pe = Processor::from_mflops("target", mflops);
    let mut t = Table::new(vec![
        "instance",
        "sustained (MB/s)",
        "burst@half (MB/s)",
        "T_l@half (maximal)",
        "T_l@half (4-word)",
    ]);
    for inst in &instances {
        let t_c = required_tc(inst, efficiency, pe.t_f);
        let maximal = half_bandwidth_point(inst, t_c, BlockRegime::Maximal);
        let fixed = half_bandwidth_point(inst, t_c, BlockRegime::CACHE_LINE);
        t.row(vec![
            inst.label(),
            fmt_mb_per_s(required_sustained_bandwidth(inst, efficiency, &pe)),
            fmt_mb_per_s(maximal.burst_bandwidth_bytes()),
            fmt_seconds(maximal.t_l),
            fmt_seconds(fixed.t_l),
        ]);
    }
    println!("requirements for {mflops:.0}-MFLOP PEs at E = {efficiency} (paper Figure 7 data):\n");
    println!("{}", t.render());
    Ok(())
}

fn cmd_smvp_run(inv: &Invocation) -> Result<(), Box<dyn std::error::Error>> {
    use quake_app::executor::BspExecutor;
    use quake_app::transport::{ghost_edges, NetsimTransport, TransportKind};
    use quake_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
    use quake_core::machine::Network;
    use quake_core::model::validate::validate;
    use quake_core::telemetry::TelemetryConfig;
    use quake_fem::assembly::UniformMaterial;
    use quake_mesh::ground::Material;
    use std::sync::Arc;

    let app = generate(inv)?;
    let parts: usize = inv.get("parts", 4usize)?;
    let threads: usize = inv.get("threads", 4usize)?;
    let steps: u64 = inv.get("steps", 25u64)?;
    let fault_seed: u64 = inv.get("fault-seed", 0u64)?;
    let fault_rate: f64 = inv.get("fault-rate", 0.0f64)?;
    let checkpoint_every: u64 = inv.get("checkpoint-every", 5u64)?;
    let quiet: bool = inv.get("quiet", false)?;
    let trace_json = inv.get_str("trace-json", "");
    let metrics = inv.get_str("metrics", "");
    let drift_threshold: f64 = inv.get("drift-threshold", 2.0f64)?;
    let span_capacity: usize = inv.get("span-capacity", 65_536usize)?;
    // --profile mirrors --trace's on/off grammar; --profile-json implies
    // it the same way the trace exporters imply --trace.
    let profile = inv.get_str("profile", "");
    let profile_json = inv.get_str("profile-json", "");
    let profile_on = match profile.as_str() {
        "on" => true,
        "off" if profile_json.is_empty() => false,
        "off" => {
            return Err(Box::new(CliError::BadValue {
                flag: "profile".to_string(),
                value: "off (conflicts with --profile-json)".to_string(),
            }))
        }
        "" => !profile_json.is_empty(),
        _ => {
            return Err(Box::new(CliError::BadValue {
                flag: "profile".to_string(),
                value: profile,
            }))
        }
    };
    // --trace defaults to on as soon as an exporter (or the profiler,
    // which attributes from the span telemetry) needs the data; an
    // explicit `off` alongside any of them is contradictory.
    let trace = inv.get_str("trace", "");
    let telemetry_on = match trace.as_str() {
        "on" => true,
        "off" if trace_json.is_empty() && metrics.is_empty() && !profile_on => false,
        "off" => {
            return Err(Box::new(CliError::BadValue {
                flag: "trace".to_string(),
                value: "off (conflicts with --trace-json/--metrics/--profile)".to_string(),
            }))
        }
        "" => !trace_json.is_empty() || !metrics.is_empty() || profile_on,
        _ => {
            return Err(Box::new(CliError::BadValue {
                flag: "trace".to_string(),
                value: trace,
            }))
        }
    };
    if !(drift_threshold.is_finite() && drift_threshold > 0.0) {
        return Err(Box::new(CliError::BadValue {
            flag: "drift-threshold".to_string(),
            value: drift_threshold.to_string(),
        }));
    }
    let recovery: RecoveryPolicy =
        inv.get_str("recovery", "restart")
            .parse()
            .map_err(|_| CliError::BadValue {
                flag: "recovery".to_string(),
                value: inv.get_str("recovery", "restart"),
            })?;
    let fault_json = inv.get_str("fault-json", "");
    // --transport picks the exchange fabric; a misspelling is a usage
    // error (exit 2), matching the other enumerated flags.
    let transport: TransportKind =
        inv.get_str("transport", "shared")
            .parse()
            .map_err(|_| CliError::BadValue {
                flag: "transport".to_string(),
                value: inv.get_str("transport", "shared"),
            })?;
    let shards: usize = inv.get("shards", 2usize)?;
    // The proc fault-domain knobs. One deadline governs the bootstrap
    // window, the heartbeat/staleness clock and the degraded-wait rounds;
    // the wire-chaos plan is seeded so a failing matrix cell replays
    // exactly; the restart budget bounds supervised shard respawns before
    // the parent escalates to the one-shot ensemble retry.
    let conn_timeout: f64 = inv.get("conn-timeout", 30.0f64)?;
    let wire_fault_rate: f64 = inv.get("wire-fault-rate", 0.0f64)?;
    let wire_fault_seed: u64 = inv.get("wire-fault-seed", 0u64)?;
    let restart_budget: u64 = inv.get("restart-budget", 2u64)?;
    // --kernel picks the compute-phase microkernel; both spellings are
    // bitwise-equal, so this is purely a raw-speed knob.
    let kernel: quake_app::executor::KernelKind =
        inv.get_str("kernel", "micro")
            .parse()
            .map_err(|_| CliError::BadValue {
                flag: "kernel".to_string(),
                value: inv.get_str("kernel", "micro"),
            })?;
    // --nodes N arms the node-aware two-level exchange: the spec's shards
    // chunk contiguously onto N nodes, PEs sharing a node gather boundary
    // partials locally, and exactly one merged block per (node, node) pair
    // crosses the slow link. Absent means flat; an explicit 0, a
    // non-integer, or more nodes than shards cannot describe a topology
    // (exit 2).
    let nodes: usize = match inv.get_str("nodes", "").as_str() {
        "" => 0,
        raw => match raw.parse::<usize>() {
            Ok(n) if n >= 1 && n <= shards => n,
            _ => {
                return Err(Box::new(CliError::BadValue {
                    flag: "nodes".to_string(),
                    value: raw.to_string(),
                }))
            }
        },
    };
    // --aggregate off is the ablation arm: the node placement stays (so
    // --wire-latency still prices the same topology) but the exchange
    // runs flat — every boundary block crosses the emulated slow link
    // individually. Only meaningful alongside --nodes.
    let aggregate = match inv.get_str("aggregate", "").as_str() {
        "on" | "" => true,
        "off" => false,
        other => {
            return Err(Box::new(CliError::BadValue {
                flag: "aggregate".to_string(),
                value: other.to_string(),
            }))
        }
    };
    // --wire-latency S holds each ghost frame that crosses a node
    // boundary on the sender for S seconds (netem-style), emulating a
    // fabric whose inter-node leg is slower than its intra-node leg on a
    // single host. Negative, non-finite, or unparsable is a usage error.
    let wire_latency: f64 = inv.get("wire-latency", 0.0f64)?;
    if !(wire_latency.is_finite() && wire_latency >= 0.0) {
        return Err(Box::new(CliError::BadValue {
            flag: "wire-latency".to_string(),
            value: wire_latency.to_string(),
        }));
    }
    for (flag, zero) in [
        ("threads", threads == 0),
        ("steps", steps == 0),
        ("checkpoint-every", checkpoint_every == 0),
        ("span-capacity", span_capacity == 0),
        ("shards", shards == 0),
    ] {
        if zero {
            return Err(Box::new(CliError::BadValue {
                flag: flag.to_string(),
                value: "0".to_string(),
            }));
        }
    }
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(Box::new(CliError::BadValue {
            flag: "fault-rate".to_string(),
            value: fault_rate.to_string(),
        }));
    }
    if !(0.0..=1.0).contains(&wire_fault_rate) {
        return Err(Box::new(CliError::BadValue {
            flag: "wire-fault-rate".to_string(),
            value: wire_fault_rate.to_string(),
        }));
    }
    if !(conn_timeout.is_finite() && conn_timeout > 0.0) {
        return Err(Box::new(CliError::BadValue {
            flag: "conn-timeout".to_string(),
            value: conn_timeout.to_string(),
        }));
    }
    let strat = partitioner(&inv.get_str("partitioner", "rib"))?;
    let partition = strat.partition(&app.mesh, parts)?;

    // Characterization-side prediction and executable system share one
    // partition, so the counter comparison is exact by construction.
    let analyzed = AnalyzedInstance::from_partition(&app.config.name, &app.mesh, &partition);
    let mat = Material {
        vs: app.ground.vs_rock,
        vp: 2.0 * app.ground.vs_rock,
        rho: 2600.0,
    };
    let system = quake_app::DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))?;

    let x: Vec<Vec3> = (0..app.mesh.node_count())
        .map(|i| {
            let s = i as f64;
            Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
        })
        .collect();
    let rcm: bool = inv.get("rcm", false)?;
    // --overlap mirrors --trace's on/off grammar; anything else is a usage
    // error (exit 2).
    let overlap = match inv.get_str("overlap", "").as_str() {
        "on" => true,
        "off" | "" => false,
        other => {
            return Err(Box::new(CliError::BadValue {
                flag: "overlap".to_string(),
                value: other.to_string(),
            }))
        }
    };
    let spec = quake_app::transport::wire::RunSpec {
        period: inv.get("period", 10.0)?,
        scale: inv.get("scale", 8.0)?,
        seed: inv.get("seed", 0x5eedu64)?,
        parts,
        threads,
        steps,
        partitioner: inv.get_str("partitioner", "rib"),
        rcm,
        overlap,
        fault_rate,
        fault_seed,
        recovery: recovery.to_string(),
        checkpoint_every,
        trace: telemetry_on,
        drift_threshold,
        span_capacity,
        shards,
        x_kind: "trig".to_string(),
        x_seed: 0,
        kernel: kernel.to_string(),
        conn_timeout,
        wire_fault_rate,
        wire_fault_seed,
        restart_budget,
        nodes,
        aggregate,
        wire_latency,
    };
    if transport == TransportKind::Proc {
        let built = quake_app::transport::run::Built {
            app,
            partition,
            system,
            x,
        };
        return run_smvp_proc(
            &spec,
            &built,
            &analyzed,
            quiet,
            &fault_json,
            &metrics,
            &trace_json,
            profile_on,
            &profile_json,
        );
    }
    // Node-aware runs swap in the aggregating fabrics; the executor's
    // schedule never changes (aggregation is transport-level), so output
    // and counters stay bitwise-identical to the flat run.
    let node_map = (nodes >= 1 && aggregate)
        .then(|| quake_app::transport::NodeMap::for_shards(parts, shards, nodes));
    let mut netsim = None;
    let mut exec = match transport {
        TransportKind::Shared => match &node_map {
            Some(map) => {
                let edges = ghost_edges(&system);
                let t: Arc<dyn quake_app::transport::Transport> = Arc::new(
                    quake_app::transport::SharedTransport::with_nodes(&edges, map),
                );
                BspExecutor::with_transport(&system, threads, rcm, overlap, 0..parts, t)
            }
            None => BspExecutor::with_options(&system, threads, rcm, overlap),
        },
        TransportKind::Netsim => {
            let edges = ghost_edges(&system);
            let t = Arc::new(match &node_map {
                Some(map) => NetsimTransport::with_nodes(
                    &edges,
                    parts,
                    Network::cray_t3e(),
                    Network::node_local(),
                    map,
                ),
                None => NetsimTransport::new(&edges, parts, Network::cray_t3e()),
            });
            netsim = Some(Arc::clone(&t));
            BspExecutor::with_transport(&system, threads, rcm, overlap, 0..parts, t)
        }
        TransportKind::Proc => unreachable!("dispatched above"),
    };
    if let Some(map) = &node_map {
        let of: Vec<usize> = (0..parts).map(|q| map.node_of(q)).collect();
        exec.set_node_map(&of);
        if !quiet {
            let mr = quake_partition::comm::MaxRateAnalysis::new(&app.mesh, &partition, nodes);
            let flat = ghost_edges(&system)
                .iter()
                .filter(|e| !map.same_node(e.from, e.to))
                .count();
            println!(
                "node-aware exchange armed: {parts} PEs on {nodes} node(s), {} merged \
                 (node, node) blocks per step replace {flat} flat cross-node edges",
                mr.cross_blocks(),
            );
        }
    }
    exec.set_kernel(kernel);
    if kernel == quake_app::executor::KernelKind::MicroSimd && !quiet {
        println!(
            "kernel micro-simd armed: AVX dispatch {}, row bands sized from the memsim L2",
            if quake_spark::tile_kernels::simd_active() {
                "active"
            } else {
                "unavailable (scalar tile fallback)"
            }
        );
    }
    if overlap && !quiet {
        let split = exec.overlap_boundary_rows().unwrap_or(&[]);
        let boundary: usize = split.iter().sum();
        let total: usize = system.subdomains().iter().map(|sd| sd.node_count()).sum();
        println!(
            "overlap armed: {boundary} boundary rows posted ahead of {} interior rows \
             ({:.1}% of local work hides the exchange)",
            total - boundary,
            100.0 * (total - boundary) as f64 / total.max(1) as f64
        );
    }
    // --fault-rate 0 leaves the chaos layer unarmed entirely, so the clean
    // step path (and its zero-overhead guarantee) is untouched.
    if fault_rate > 0.0 {
        let plan = FaultPlan::generate(fault_seed, steps, parts, &FaultRates::uniform(fault_rate));
        if !quiet {
            println!(
                "chaos armed: {} scheduled events (seed {fault_seed}, rate {fault_rate}), \
                 recovery {recovery}, checkpoint every {checkpoint_every} steps",
                plan.len()
            );
        }
        exec.enable_faults(plan, recovery, checkpoint_every);
    }
    if telemetry_on {
        let mut config = TelemetryConfig {
            span_capacity,
            ..TelemetryConfig::default()
        };
        if let Some(d) = config.drift.as_mut() {
            d.threshold = drift_threshold;
        }
        exec.enable_telemetry(config);
    }
    let y = exec.run(&x, steps);
    let report = exec.report();

    if !quiet {
        println!(
            "{} on {} PEs — {} bulk-synchronous SMVPs over {} pooled worker threads{}",
            app.config.name,
            parts,
            report.steps,
            report.threads,
            match (rcm, overlap) {
                (true, true) => " (RCM-renumbered subdomains, latency-hiding overlap)",
                (true, false) => " (RCM-renumbered subdomains)",
                (false, true) => " (latency-hiding overlap)",
                (false, false) => "",
            }
        );
        println!(
            "phase walls (s): assemble {:.3e}, compute {:.3e}, exchange {:.3e}, fold {:.3e}",
            report.phases.assemble,
            report.phases.compute,
            report.phases.exchange,
            report.phases.fold
        );
        println!("measured efficiency E = {:.4}\n", report.efficiency());
    }
    if let Some(t) = &netsim {
        let net = t.network();
        let busiest = t.modeled_exchange_s().iter().copied().fold(0.0, f64::max);
        if !quiet {
            println!(
                "netsim postal model: busiest-PE modeled exchange {:.3e} s over {} steps \
                 (preset T_l {:.3e} s, T_w {:.3e} s/word)\n",
                busiest, steps, net.t_l, net.t_w
            );
        }
    }
    let validation = validate(&analyzed.instance, &report.measured());
    if !quiet {
        println!("{validation}");
    }
    if !validation.counters_match() {
        return Err("measured counters diverge from characterization".into());
    }
    if overlap {
        // Prove the latency-hiding claim on the spot: a barrier-schedule
        // twin of the same product must be bitwise-identical. The twin
        // keeps the selected kernel so only the schedule varies.
        let mut twin = BspExecutor::with_options(&system, threads, rcm, false);
        twin.set_kernel(kernel);
        let y_twin = twin.run(&x, steps);
        let bitwise_equal = y.iter().zip(&y_twin).all(|(a, b)| {
            (a.x.to_bits(), a.y.to_bits(), a.z.to_bits())
                == (b.x.to_bits(), b.y.to_bits(), b.z.to_bits())
        });
        if !quiet {
            println!(
                "overlapped output bitwise-equal to barrier schedule: {}",
                if bitwise_equal { "yes" } else { "NO" }
            );
        }
        if !bitwise_equal {
            return Err("overlapped output diverges from the barrier schedule".into());
        }
    }
    if kernel == quake_app::executor::KernelKind::MicroSimd {
        // Prove the raw-speed claim's safety on the spot: a scalar-kernel
        // twin of the same schedule must be bitwise-identical.
        let mut twin = BspExecutor::with_options(&system, threads, rcm, overlap);
        let y_twin = twin.run(&x, steps);
        let bitwise_equal = y.iter().zip(&y_twin).all(|(a, b)| {
            (a.x.to_bits(), a.y.to_bits(), a.z.to_bits())
                == (b.x.to_bits(), b.y.to_bits(), b.z.to_bits())
        });
        if !quiet {
            println!(
                "micro-simd output bitwise-equal to scalar micro kernel: {}",
                if bitwise_equal { "yes" } else { "NO" }
            );
        }
        if !bitwise_equal {
            return Err("micro-simd output diverges from the scalar kernel".into());
        }
    }
    if let Some(telemetry) = exec.telemetry() {
        if !quiet {
            println!("{}", telemetry_summary(telemetry));
            let ps = exec.pool_stats();
            println!(
                "worker pool: {} batches dispatched, {} targeted re-runs, {} thread respawns\n",
                ps.broadcasts, ps.targeted, ps.respawns
            );
        }
        if !trace_json.is_empty() {
            std::fs::write(&trace_json, telemetry.to_chrome_trace(&app.config.name))?;
            if !quiet {
                println!("wrote {trace_json}");
            }
        }
        if !metrics.is_empty() {
            std::fs::write(&metrics, telemetry.to_prometheus())?;
            if !quiet {
                println!("wrote {metrics}");
            }
        }
        if profile_on {
            use quake_core::telemetry::profile::{ProfileOptions, ProfileReport};
            use quake_core::telemetry::{ShardTrace, TelemetrySnapshot, TraceContext};
            // One pseudo-shard on offset 0: the in-process run is its own
            // clock domain, so the profiler sees exactly what a one-shard
            // proc ensemble would report.
            let shard = ShardTrace {
                snap: TelemetrySnapshot::capture(
                    telemetry,
                    TraceContext {
                        run_id: 0,
                        shard: 0,
                        generation: 0,
                    },
                    0,
                    parts as u32,
                    Vec::new(),
                    0,
                ),
                clock_offset_ns: 0,
            };
            let link = netsim.as_ref().map(|t| {
                let net = t.network();
                (net.t_l, net.t_w)
            });
            let prof = ProfileReport::build(
                std::slice::from_ref(&shard),
                &ProfileOptions {
                    loads: vec![(analyzed.instance.c_max, analyzed.instance.b_max)],
                    link,
                    overlap,
                },
            );
            if !quiet {
                println!("{}", prof.render_table());
            }
            if !profile_json.is_empty() {
                std::fs::write(&profile_json, prof.to_json())?;
                if !quiet {
                    println!("wrote {profile_json}");
                }
            }
        }
    }
    if let Some(fr) = report.fault {
        // Prove the healing claim: a fault-free reference run of the same
        // product must be bitwise-identical to the recovered output.
        let mut reference = if rcm {
            BspExecutor::with_rcm(&system, threads)
        } else {
            BspExecutor::new(&system, threads)
        };
        let y_ref = reference.run(&x, steps);
        let bitwise_equal = y.iter().zip(&y_ref).all(|(a, b)| {
            (a.x.to_bits(), a.y.to_bits(), a.z.to_bits())
                == (b.x.to_bits(), b.y.to_bits(), b.z.to_bits())
        });
        if !quiet {
            println!("\n{fr}");
            println!(
                "recovered output bitwise-equal to fault-free reference: {}",
                if bitwise_equal { "yes" } else { "NO" }
            );
        }
        if !fault_json.is_empty() {
            std::fs::write(&fault_json, format!("{}\n", fr.to_json()))?;
            if !quiet {
                println!("wrote {fault_json}");
            }
        }
        if !bitwise_equal {
            return Err("recovered output diverges from fault-free reference".into());
        }
        if !fr.balanced() {
            return Err("fault ledger is unbalanced (injected != detected != recovered)".into());
        }
    }
    Ok(())
}

/// The `--transport proc` arm of `smvp-run`: forks shard processes over
/// unix-domain sockets, re-derives Eq. (2)'s `(T_l, T_w)` from socket
/// microbenchmarks, and proves the merged output bitwise-equal to an
/// in-process shared-memory twin of the same spec.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_smvp_proc(
    spec: &quake_app::transport::wire::RunSpec,
    built: &quake_app::transport::run::Built,
    analyzed: &AnalyzedInstance,
    quiet: bool,
    fault_json: &str,
    metrics: &str,
    trace_json: &str,
    profile_on: bool,
    profile_json: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    use quake_app::transport::{run, TransportKind};
    use quake_core::model::validate::validate;
    use quake_core::telemetry::profile::{ProfileOptions, ProfileReport};
    use quake_core::telemetry::{merged_chrome_trace, merged_telemetry, SupervisorInstant};

    if spec.wire_fault_rate > 0.0 && !quiet {
        println!(
            "wire chaos armed: per-frame rate {} (seed {}), conn deadline {} s, \
             restart budget {} shard respawns",
            spec.wire_fault_rate, spec.wire_fault_seed, spec.conn_timeout, spec.restart_budget
        );
    }
    let out = run::run_with(TransportKind::Proc, spec, built)?;
    let report = &out.report;
    if !quiet {
        println!(
            "{} on {} PEs — {} bulk-synchronous SMVPs over {} shard processes × {} worker \
             threads (unix-socket transport){}",
            built.app.config.name,
            spec.parts,
            report.steps,
            spec.shards,
            spec.threads,
            match (spec.rcm, spec.overlap) {
                (true, true) => " (RCM-renumbered subdomains, latency-hiding overlap)",
                (true, false) => " (RCM-renumbered subdomains)",
                (false, true) => " (latency-hiding overlap)",
                (false, false) => "",
            }
        );
        println!(
            "phase walls (s): assemble {:.3e}, compute {:.3e}, exchange {:.3e}, fold {:.3e}",
            report.phases.assemble,
            report.phases.compute,
            report.phases.exchange,
            report.phases.fold
        );
        println!(
            "measured socket link ({}): T_l = {:.3e} s, T_w = {:.3e} s/word",
            if out.link.measured {
                "ping/throughput microbenchmark"
            } else {
                "preset"
            },
            out.link.t_l,
            out.link.t_w
        );
        // Eq. (2) under the measured parameters, against the measured
        // exchange wall — the proc analogue of the netsim postal model.
        // An emulated inter-node hold (`--wire-latency`) is part of the
        // link both models must price, so it folds into the per-message
        // latency term.
        let i = &analyzed.instance;
        let t_l_eff = out.link.t_l + spec.wire_latency;
        let predicted = i.b_max as f64 * t_l_eff + i.c_max as f64 * out.link.t_w;
        let measured = report.phases.exchange / spec.steps.max(1) as f64;
        println!(
            "Eq. (2) with measured link: B_max·T_l + C_max·T_w = {:.3e} s/step \
             vs measured exchange {:.3e} s/step (ratio {:.2})\n",
            predicted,
            measured,
            measured / predicted.max(f64::MIN_POSITIVE)
        );
        // Node-aware runs also price the exchange with the max-rate model
        // (Bienz, Gropp & Olson): the busiest node's injection port plus
        // the intra-node gather leg, under the same measured link.
        if spec.nodes >= 1 {
            let mr = quake_partition::comm::MaxRateAnalysis::new(
                &built.app.mesh,
                &built.partition,
                spec.nodes,
            );
            // Inter-node leg pays the (possibly emulated) slow link;
            // the intra-node gather rides the raw measured socket.
            let mr_pred =
                mr.predicted_with_local(t_l_eff, out.link.t_w, out.link.t_l, out.link.t_w);
            let floor = measured.max(f64::MIN_POSITIVE);
            println!(
                "max-rate model ({} nodes): max_N(B_N·T_l + C_N·T_w) + local gather = \
                 {:.3e} s/step (rel err {:.1}% vs Eq. (2) rel err {:.1}%)\n",
                spec.nodes,
                mr_pred,
                100.0 * (measured - mr_pred).abs() / floor,
                100.0 * (measured - predicted).abs() / floor,
            );
        }
    }
    let validation = validate(&analyzed.instance, &report.measured());
    if !quiet {
        println!("{validation}");
    }
    if !validation.counters_match() {
        return Err("measured counters diverge from characterization".into());
    }
    // Prove the transport claim on the spot: an in-process shared-memory
    // run of the identical spec must be bitwise-identical.
    let twin = run::run_with(TransportKind::Shared, spec, built)?;
    let bitwise_equal = out.y.len() == twin.y.len()
        && out.y.iter().zip(&twin.y).all(|(a, b)| {
            (a.x.to_bits(), a.y.to_bits(), a.z.to_bits())
                == (b.x.to_bits(), b.y.to_bits(), b.z.to_bits())
        });
    if !quiet {
        println!(
            "proc output bitwise-equal to shared transport: {}",
            if bitwise_equal { "yes" } else { "NO" }
        );
    }
    if !bitwise_equal {
        return Err("proc output diverges from the shared transport".into());
    }
    let traced = spec.trace && !out.shard_telemetry.is_empty();
    if spec.trace && !quiet {
        let spans: usize = out.shard_telemetry.iter().map(|t| t.snap.spans.len()).sum();
        println!(
            "telemetry: {} shard snapshot(s) collected ({} spans), handshake clock \
             offsets [{}] ns",
            out.shard_telemetry.len(),
            spans,
            out.shard_telemetry
                .iter()
                .map(|t| t.clock_offset_ns.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if !quiet {
        for i in &out.incidents {
            println!("incident t+{:.3}s shard {}: {}", i.t_s, i.shard, i.kind);
        }
    }
    // The critical-path profiler: per-step rung attribution over the
    // merged shard telemetry, with the Eq. (2) prediction under the
    // measured link as the model baseline.
    if profile_on {
        let prof = ProfileReport::build(
            &out.shard_telemetry,
            &ProfileOptions {
                loads: vec![(analyzed.instance.c_max, analyzed.instance.b_max)],
                link: Some((out.link.t_l, out.link.t_w)),
                overlap: spec.overlap,
            },
        );
        if !quiet {
            println!("{}", prof.render_table());
        }
        if !profile_json.is_empty() {
            std::fs::write(profile_json, prof.to_json())?;
            if !quiet {
                println!("wrote {profile_json}");
            }
        }
    }
    // Trace runs merge every shard's span snapshot onto one clock-aligned
    // timeline (one process track per shard, flow arrows pairing each
    // ghost post with its acquire, the supervisor's incidents on their
    // own track). Untraced proc runs keep the fault-domain-only trace.
    if !trace_json.is_empty() {
        if traced {
            let supervisor: Vec<SupervisorInstant> = out
                .incidents
                .iter()
                .map(|i| SupervisorInstant {
                    name: i.kind.to_string(),
                    shard: i.shard as u32,
                    at_ns: (i.t_s.max(0.0) * 1e9) as u64,
                })
                .collect();
            std::fs::write(
                trace_json,
                merged_chrome_trace(&built.app.config.name, &out.shard_telemetry, &supervisor),
            )?;
            if !quiet {
                println!(
                    "wrote {trace_json} ({} shard tracks, {} fault-domain incidents)",
                    out.shard_telemetry.len(),
                    out.incidents.len()
                );
            }
        } else {
            std::fs::write(
                trace_json,
                incidents_chrome_trace(&built.app.config.name, &out.incidents),
            )?;
            if !quiet {
                println!(
                    "wrote {trace_json} ({} fault-domain incidents)",
                    out.incidents.len()
                );
            }
        }
    }
    if !metrics.is_empty() {
        let mut text = String::new();
        if traced {
            text.push_str(&merged_telemetry(&out.shard_telemetry).to_prometheus());
        }
        text.push_str(&wire_prometheus(
            &report.fault.unwrap_or_default(),
            &out.shard_faults,
        ));
        std::fs::write(metrics, text)?;
        if !quiet {
            println!("wrote {metrics}");
        }
    }
    if let Some(fr) = &report.fault {
        if !quiet {
            println!("\n{fr}");
            println!(
                "wire ledger balanced: {}",
                if fr.balanced() { "yes" } else { "NO" }
            );
        }
        if !fault_json.is_empty() {
            std::fs::write(fault_json, format!("{}\n", fr.to_json()))?;
            if !quiet {
                println!("wrote {fault_json}");
            }
        }
        if !fr.balanced() {
            return Err("fault ledger is unbalanced (injected != detected != recovered)".into());
        }
    }
    Ok(())
}

/// Renders the merged wire-fault ledger as Prometheus text — the proc
/// analogue of the in-process telemetry exporter, covering the fault
/// domain (injection/detection/recovery counters, resends, reconnects,
/// respawns and the delay histogram) that shard-local spans cannot see.
/// Per-shard ledgers add `shard`/`generation`-labeled samples next to
/// the unlabeled run-wide totals, so a straggling shard's chaos bill is
/// attributable without re-running.
fn wire_prometheus(
    fr: &quake_core::fault::FaultReport,
    shards: &[(usize, u32, quake_core::fault::FaultReport)],
) -> String {
    use quake_core::fault::{FaultReport, WireFaultCounts};
    use std::fmt::Write as _;
    type StageSelector = fn(&FaultReport) -> &WireFaultCounts;
    let mut s = String::new();
    let stages: [(&str, StageSelector); 3] = [
        ("injected", |f| &f.wire_injected),
        ("detected", |f| &f.wire_detected),
        ("recovered", |f| &f.wire_recovered),
    ];
    let kinds = |c: &WireFaultCounts| {
        [
            ("corrupt", c.corrupt),
            ("truncate", c.truncate),
            ("delay", c.delay),
            ("reset", c.reset),
            ("stall", c.stall),
        ]
    };
    for (stage, sel) in stages {
        let _ = writeln!(
            s,
            "# HELP quake_wire_{stage}_total Wire faults {stage}, by kind."
        );
        let _ = writeln!(s, "# TYPE quake_wire_{stage}_total counter");
        for (kind, v) in kinds(sel(fr)) {
            let _ = writeln!(s, "quake_wire_{stage}_total{{kind=\"{kind}\"}} {v}");
        }
        for (shard, generation, f) in shards {
            for (kind, v) in kinds(sel(f)) {
                let _ = writeln!(
                    s,
                    "quake_wire_{stage}_total{{kind=\"{kind}\",shard=\"{shard}\",\
                     generation=\"{generation}\"}} {v}"
                );
            }
        }
    }
    for (name, help, v) in [
        (
            "wire_resends",
            "Cache replays answered for damaged frames.",
            fr.wire_resends,
        ),
        (
            "reconnects",
            "Socket links re-established after resets or peer deaths.",
            fr.reconnects,
        ),
        (
            "suspects",
            "Peers escalated to suspect after silent deadlines.",
            fr.suspects,
        ),
        (
            "respawned_shards",
            "Shard processes respawned by the supervisor.",
            fr.respawned_shards,
        ),
        (
            "ensemble_restarts",
            "Whole-ensemble retries after the restart budget ran out.",
            fr.ensemble_restarts,
        ),
    ] {
        let _ = writeln!(s, "# HELP quake_{name}_total {help}");
        let _ = writeln!(s, "# TYPE quake_{name}_total counter");
        let _ = writeln!(s, "quake_{name}_total {v}");
    }
    for (shard, generation, f) in shards {
        for (name, v) in [
            ("wire_resends", f.wire_resends),
            ("reconnects", f.reconnects),
        ] {
            let _ = writeln!(
                s,
                "quake_{name}_total{{shard=\"{shard}\",generation=\"{generation}\"}} {v}"
            );
        }
    }
    let _ = writeln!(
        s,
        "# HELP quake_wire_delay_us Injected wire delays and backoff waits, microseconds."
    );
    let _ = writeln!(s, "# TYPE quake_wire_delay_us histogram");
    let mut delay_hist = |labels: &str, f: &FaultReport| {
        let mut cum = 0u64;
        for (i, n) in f.wire_delay_us_hist.iter().enumerate() {
            cum += n;
            let _ = writeln!(
                s,
                "quake_wire_delay_us_bucket{{{labels}le=\"{}\"}} {cum}",
                1u64 << (i + 1)
            );
        }
        let _ = writeln!(s, "quake_wire_delay_us_bucket{{{labels}le=\"+Inf\"}} {cum}");
        let bare = labels.trim_end_matches(',');
        if bare.is_empty() {
            let _ = writeln!(s, "quake_wire_delay_us_sum {}", f.wire_delay_us_sum);
            let _ = writeln!(s, "quake_wire_delay_us_count {cum}");
        } else {
            let _ = writeln!(
                s,
                "quake_wire_delay_us_sum{{{bare}}} {}",
                f.wire_delay_us_sum
            );
            let _ = writeln!(s, "quake_wire_delay_us_count{{{bare}}} {cum}");
        }
    };
    delay_hist("", fr);
    for (shard, generation, f) in shards {
        delay_hist(
            &format!("shard=\"{shard}\",generation=\"{generation}\","),
            f,
        );
    }
    s
}

/// Renders the supervisor's incident timeline as Chrome-trace JSON —
/// instant events on one row per shard, loadable in `chrome://tracing` or
/// Perfetto next to the in-process exporter's span traces.
fn incidents_chrome_trace(name: &str, incidents: &[quake_app::transport::run::Incident]) -> String {
    let events: Vec<String> = incidents
        .iter()
        .map(|i| {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"fault-domain\",\"ph\":\"i\",\"s\":\"g\",\
                 \"ts\":{:.0},\"pid\":0,\"tid\":{}}}",
                i.kind,
                i.t_s * 1e6,
                i.shard
            )
        })
        .collect();
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"app\":\"{name}\"}},\
         \"traceEvents\":[{}]}}\n",
        events.join(",")
    )
}

fn cmd_simulate(inv: &Invocation) -> Result<(), Box<dyn std::error::Error>> {
    let app = generate(inv)?;
    let steps: u64 = inv.get("steps", 300u64)?;
    let system = assemble(&app.mesh, &GroundMaterial(&app.ground))?;
    let max_vp = 3f64.sqrt() * app.ground.vs_rock;
    let dt = Simulation::stable_dt(&app.mesh, max_vp, 0.4);
    let mut sim = Simulation::new(system, dt)?;
    let source = PointSource::nearest(
        &app.mesh,
        app.ground.basin_center_surface() + Vec3::new(0.0, 0.0, -2_000.0),
        Vec3::new(0.0, 0.0, 1e15),
        Ricker::new(1.0 / app.config.period_s),
    );
    sim.add_source(source);
    let rx = PointSource::nearest(
        &app.mesh,
        app.ground.basin_center_surface(),
        Vec3::ZERO,
        Ricker::new(1.0),
    )
    .node;
    sim.add_receiver(rx);
    sim.run(steps);
    println!(
        "mesh {} nodes / {} elements; dt = {:.4} s; ran {} steps = {:.1} s simulated",
        app.mesh.node_count(),
        app.mesh.element_count(),
        dt,
        sim.step_count(),
        sim.time()
    );
    let smvp_flops = app.mesh.pattern().smvp_flops();
    println!(
        "per step: one SMVP of {smvp_flops} flops; receiver peak displacement {:.3e} m",
        sim.seismograms()[0].peak()
    );
    println!(
        "displacement energy: {:.3e} (finite => stable)",
        sim.displacement_energy()
    );
    Ok(())
}
