//! Workspace root: the `quake` CLI, examples, and integration tests for
//! the HPCA 1998 irregular-applications reproduction.

pub mod cli;
