//! Command-line driver: `quake <command> [--flag value]...`
//!
//! A thin, dependency-free argument parser plus one function per
//! subcommand. Parsing is separated from execution so it can be unit
//! tested.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The subcommand name.
    pub command: String,
    options: HashMap<String, String>,
}

/// Errors from parsing or validating the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A `--flag` had no value.
    MissingValue(String),
    /// An argument did not start with `--` where a flag was expected.
    UnexpectedArgument(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The unparsable text.
        value: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no command given; try 'quake help'"),
            CliError::UnknownCommand(c) => write!(f, "unknown command '{c}'; try 'quake help'"),
            CliError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            CliError::UnexpectedArgument(a) => write!(f, "unexpected argument '{a}'"),
            CliError::BadValue { flag, value } => {
                write!(f, "cannot parse '{value}' for --{flag}")
            }
        }
    }
}

impl Error for CliError {}

/// The available subcommands.
pub const COMMANDS: [&str; 6] = [
    "mesh",
    "characterize",
    "requirements",
    "simulate",
    "smvp-run",
    "help",
];

impl Invocation {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut it = args.into_iter();
        let command = it.next().ok_or(CliError::MissingCommand)?;
        if !COMMANDS.contains(&command.as_str()) {
            return Err(CliError::UnknownCommand(command));
        }
        let mut options = HashMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::UnexpectedArgument(arg.clone()))?
                .to_string();
            let value = it
                .next()
                .ok_or_else(|| CliError::MissingValue(key.clone()))?;
            options.insert(key, value);
        }
        Ok(Invocation { command, options })
    }

    /// A string option, or `default`.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A parsed numeric option, or `default`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] if present but unparsable.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: key.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// A comma-separated list of usize, or `default`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] if present but unparsable.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, CliError> {
        match self.options.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| s.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| CliError::BadValue {
                    flag: key.to_string(),
                    value: v.clone(),
                }),
        }
    }
}

/// The help text.
pub fn help() -> &'static str {
    "quake — reproduction driver for 'Architectural Implications of a Family of \
Irregular Applications' (HPCA 1998)

USAGE: quake <command> [--flag value]...

COMMANDS:
  mesh          generate a synthetic basin mesh and print its statistics
                  --period <s: 10>  --scale <x: 8>  --seed <n>  --out <file>
  characterize  partition a mesh and print its Figure-7 row(s)
                  --period <s: 10>  --scale <x: 8>  --parts <list: 4,8,16>
                  --partitioner <rib|rcb|spectral|morton|linear|random: rib>
  requirements  evaluate Eq. (1)/(2) requirements over the paper's data
                  --mflops <r: 200>  --efficiency <e: 0.9>  --app <sf2>
  simulate      run the explicit wave simulation and print a summary
                  --period <s: 10>  --scale <x: 8>  --steps <n: 300>
  smvp-run      run the instrumented bulk-synchronous SMVP executor and
                print a measured-vs-predicted model validation report
                  --period <s: 10>  --scale <x: 8>  --parts <p: 4>
                  --threads <t: 4>  --steps <n: 25>
                  --partitioner <rib|rcb|spectral|morton|linear|random: rib>
                  --transport <shared|netsim|proc: shared>  the fabric the
                  exchange runs over: 'shared' is the in-process mailbox,
                  'netsim' bills each block against the postal model
                  (preset T_l/T_w) while carrying it in memory, and 'proc'
                  forks --shards shard processes joined by Unix-domain
                  sockets, microbenchmarks the socket's own T_l/T_w for
                  the Eq. (2) validation, and proves the folded product
                  bitwise-equal to the shared-memory run
                  --shards <n: 2>  shard-process count for --transport proc
                  --nodes <n>  arm the node-aware two-level exchange: the
                  shards chunk contiguously onto n nodes, PEs sharing a
                  node gather their boundary partials over the fast
                  intra-node path, and exactly one merged block per
                  (node, node) pair crosses the slow link — collapsing
                  the O(p^2) small-message exchange into O(n^2) large
                  frames. Output, counters and schedules are
                  bitwise-identical to the flat run (aggregation is
                  transport-level); reports add the max-rate model
                  max_N(B_N*T_l + C_N*T_w) next to Eq. (2). Absent means
                  flat; 0, a non-integer, or n > shards exit 2
                  --aggregate <on|off: on>  ablation arm for --nodes:
                  'off' keeps the node placement (so --wire-latency still
                  prices the same topology) but runs the exchange flat —
                  every boundary block crosses the slow link individually
                  --wire-latency <s: 0>  netem-style emulated inter-node
                  latency on the proc fabric: each ghost frame between
                  shards on different nodes is held s seconds on the
                  sender before hitting the socket, so a single host can
                  price a fabric whose inter-node leg is genuinely slower
                  than its intra-node leg; negative or non-finite exits 2
                  --conn-timeout <s: 30>  proc fault-domain deadline: the
                  bootstrap window, the heartbeat/staleness clock and the
                  degraded-wait round length (heartbeats tick at a quarter
                  of it); must be a finite positive number of seconds
                  --wire-fault-rate <r: 0>  arm wire chaos on the proc
                  fabric: per-ghost-frame probability of injected payload
                  corruption, tail truncation and delay (connection resets
                  at r/4, one per peer; hung-peer stalls at r/10, one per
                  shard); every event lands in the wire ledger and the
                  recovered output is proved bitwise-equal every run
                  --wire-fault-seed <n: 0>  seed for the wire-fault plan
                  --restart-budget <n: 2>  supervised per-shard respawns
                  before the parent falls back to the one-shot ensemble
                  retry (0 disables shard-level restart); the recovery
                  ladder is resend -> deadline+backoff -> shard respawn ->
                  ensemble retry -> typed failure
                  --rcm <true|false: false>  renumber each subdomain with
                  reverse Cuthill-McKee before the run (locality pre-pass;
                  counters and the validation report are unaffected)
                  --kernel <micro|micro-simd: micro>  compute-phase
                  microkernel: 'micro' is the register-blocked scalar 3x3
                  kernel, 'micro-simd' runs the AVX tile kernel over the
                  flat BCSR layout with memsim-sized row-band cache
                  blocking (runtime CPU detection, scalar fallback);
                  output is bitwise-equal to 'micro' (proved every run)
                  and counters are unaffected; composes with every
                  schedule and transport
                  --overlap <on|off: off>  latency-hiding schedule: each PE
                  posts its boundary-row partials first, computes interior
                  rows while the exchange is in flight, and applies inbound
                  blocks as they land; output is bitwise-equal to the
                  barrier schedule (proved every run) and counters are
                  unaffected; composes with --rcm, --trace and --fault-rate
                  --fault-rate <r: 0>  arm the chaos layer: per-(step, PE)
                  probability of injected stragglers/drops/corruption (PE
                  crashes at r/10, at most one); 0 leaves the clean path
                  untouched
                  --fault-seed <n: 0>  seed for the deterministic fault plan
                  --recovery <failfast|degrade|restart: restart>
                  --checkpoint-every <k: 5>  snapshot interval for restart
                  --fault-json <file>  write the FaultReport as JSON
                  --trace <on|off>  arm the telemetry layer: per-phase span
                  ring, latency/size histograms, live Eq. (2) drift monitor
                  (defaults to on when --trace-json or --metrics is given,
                  else off; off leaves the clean hot path untouched)
                  --trace-json <file>  write a Chrome trace_event JSON
                  trace (load in chrome://tracing or Perfetto); over
                  --transport proc this is the merged cross-shard trace:
                  one process track per shard generation on a single
                  handshake-aligned clock, flow arrows pairing every
                  remote ghost post with its acquire, and the
                  supervisor's incidents on their own track
                  --metrics <file>  write Prometheus text exposition
                  (proc: merged shard telemetry plus the wire ledger,
                  with shard/generation-labeled per-shard series)
                  --profile <on|off: off>  per-step critical-path
                  attribution from the span telemetry: interior compute,
                  boundary post, ghost apply, transport wait, barrier and
                  recovery rungs per step with the straggler PE/shard
                  named, printed as a table next to the Eq. (2) predicted
                  decomposition under the measured link; implies --trace
                  on (an explicit --trace off is a usage error); rows sum
                  to the measured step wall by construction
                  --profile-json <file>  write the attribution as JSON
                  (implies --profile on)
                  --drift-threshold <x: 2>  flag steps whose worst per-PE
                  exchange residual exceeds x times the median exchange time
                  --span-capacity <n: 65536>  span ring size; the ring keeps
                  the most recent spans and counts the overwritten rest
                  --quiet <true|false: false>  suppress the per-run report
                  and validation tables (errors still print to stderr)
  help          print this text

EXIT STATUS: 0 on success, 1 on runtime failure, 2 on a usage error."
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, CliError> {
        Invocation::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let inv = parse(&["mesh", "--period", "5", "--scale", "4"]).unwrap();
        assert_eq!(inv.command, "mesh");
        assert_eq!(inv.get("period", 10.0).unwrap(), 5.0);
        assert_eq!(inv.get("scale", 8.0).unwrap(), 4.0);
        assert_eq!(inv.get("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_and_unknown_commands() {
        assert_eq!(parse(&[]), Err(CliError::MissingCommand));
        assert!(matches!(
            parse(&["frobnicate"]),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(matches!(
            parse(&["mesh", "period", "5"]),
            Err(CliError::UnexpectedArgument(_))
        ));
        assert!(matches!(
            parse(&["mesh", "--period"]),
            Err(CliError::MissingValue(_))
        ));
    }

    #[test]
    fn bad_values_are_reported() {
        let inv = parse(&["mesh", "--period", "ten"]).unwrap();
        assert!(matches!(
            inv.get("period", 10.0),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn usize_lists() {
        let inv = parse(&["characterize", "--parts", "4, 8,16"]).unwrap();
        assert_eq!(inv.get_usize_list("parts", &[2]).unwrap(), vec![4, 8, 16]);
        assert_eq!(inv.get_usize_list("absent", &[2]).unwrap(), vec![2]);
        let bad = parse(&["characterize", "--parts", "4,x"]).unwrap();
        assert!(bad.get_usize_list("parts", &[2]).is_err());
    }

    #[test]
    fn string_defaults() {
        let inv = parse(&["characterize"]).unwrap();
        assert_eq!(inv.get_str("partitioner", "rib"), "rib");
    }

    #[test]
    fn help_mentions_every_command() {
        for c in COMMANDS {
            assert!(help().contains(c), "help must mention '{c}'");
        }
    }

    #[test]
    fn help_documents_the_chaos_flags_and_exit_codes() {
        for flag in [
            "--fault-rate",
            "--fault-seed",
            "--recovery",
            "--checkpoint-every",
            "--fault-json",
        ] {
            assert!(help().contains(flag), "help must mention '{flag}'");
        }
        assert!(help().contains("EXIT STATUS"));
    }

    #[test]
    fn help_documents_the_overlap_flag() {
        assert!(help().contains("--overlap <on|off: off>"));
        assert!(help().contains("bitwise-equal"));
    }

    #[test]
    fn help_documents_the_kernel_flag() {
        assert!(help().contains("--kernel <micro|micro-simd: micro>"));
        assert!(help().contains("scalar fallback"));
    }

    #[test]
    fn help_documents_the_transport_flags() {
        assert!(help().contains("--transport <shared|netsim|proc: shared>"));
        assert!(help().contains("--shards <n: 2>"));
        assert!(help().contains("microbenchmarks"));
    }

    #[test]
    fn help_documents_the_node_aware_exchange() {
        assert!(help().contains("--nodes <n>"));
        assert!(help().contains("one merged block per"));
        assert!(help().contains("max_N(B_N*T_l + C_N*T_w)"));
        assert!(help().contains("--aggregate <on|off: on>"));
        assert!(help().contains("--wire-latency <s: 0>"));
    }

    #[test]
    fn help_documents_the_wire_chaos_flags() {
        for flag in [
            "--conn-timeout <s: 30>",
            "--wire-fault-rate <r: 0>",
            "--wire-fault-seed <n: 0>",
            "--restart-budget <n: 2>",
        ] {
            assert!(help().contains(flag), "help must mention '{flag}'");
        }
        assert!(help().contains("shard respawn"), "ladder documented");
    }

    #[test]
    fn help_documents_the_telemetry_flags() {
        for flag in [
            "--trace",
            "--trace-json",
            "--metrics",
            "--drift-threshold",
            "--span-capacity",
            "--quiet",
        ] {
            assert!(help().contains(flag), "help must mention '{flag}'");
        }
    }

    #[test]
    fn help_documents_the_profiler_flags() {
        assert!(help().contains("--profile <on|off: off>"));
        assert!(help().contains("--profile-json <file>"));
        assert!(help().contains("critical-path"), "what the profiler is");
        assert!(
            help().contains("straggler"),
            "the straggler verdict is the headline feature"
        );
    }

    #[test]
    fn help_documents_the_merged_trace() {
        assert!(
            help().contains("one process track per shard"),
            "the proc trace merge is documented"
        );
        assert!(help().contains("flow arrows"), "flow pairing documented");
    }

    #[test]
    fn error_display() {
        assert!(CliError::MissingCommand.to_string().contains("help"));
        assert!(CliError::BadValue {
            flag: "x".into(),
            value: "y".into()
        }
        .to_string()
        .contains("--x"));
    }
}
