/root/repo/target/release/deps/tab_partitioner_ablation-8a6256096e606fbc.d: crates/bench/src/bin/tab_partitioner_ablation.rs

/root/repo/target/release/deps/tab_partitioner_ablation-8a6256096e606fbc: crates/bench/src/bin/tab_partitioner_ablation.rs

crates/bench/src/bin/tab_partitioner_ablation.rs:
