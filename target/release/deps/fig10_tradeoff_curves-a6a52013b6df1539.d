/root/repo/target/release/deps/fig10_tradeoff_curves-a6a52013b6df1539.d: crates/bench/src/bin/fig10_tradeoff_curves.rs

/root/repo/target/release/deps/fig10_tradeoff_curves-a6a52013b6df1539: crates/bench/src/bin/fig10_tradeoff_curves.rs

crates/bench/src/bin/fig10_tradeoff_curves.rs:
