/root/repo/target/release/deps/tab_sustained_tf-11ab2fe6643d1815.d: crates/bench/src/bin/tab_sustained_tf.rs

/root/repo/target/release/deps/tab_sustained_tf-11ab2fe6643d1815: crates/bench/src/bin/tab_sustained_tf.rs

crates/bench/src/bin/tab_sustained_tf.rs:
