/root/repo/target/release/deps/quake_repro-88303739042597bb.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libquake_repro-88303739042597bb.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libquake_repro-88303739042597bb.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
