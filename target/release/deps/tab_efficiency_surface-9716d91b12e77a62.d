/root/repo/target/release/deps/tab_efficiency_surface-9716d91b12e77a62.d: crates/bench/src/bin/tab_efficiency_surface.rs

/root/repo/target/release/deps/tab_efficiency_surface-9716d91b12e77a62: crates/bench/src/bin/tab_efficiency_surface.rs

crates/bench/src/bin/tab_efficiency_surface.rs:
