/root/repo/target/release/deps/bench_executor-6c6000e270867934.d: crates/bench/benches/bench_executor.rs

/root/repo/target/release/deps/bench_executor-6c6000e270867934: crates/bench/benches/bench_executor.rs

crates/bench/benches/bench_executor.rs:
