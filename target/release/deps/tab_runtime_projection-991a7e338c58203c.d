/root/repo/target/release/deps/tab_runtime_projection-991a7e338c58203c.d: crates/bench/src/bin/tab_runtime_projection.rs

/root/repo/target/release/deps/tab_runtime_projection-991a7e338c58203c: crates/bench/src/bin/tab_runtime_projection.rs

crates/bench/src/bin/tab_runtime_projection.rs:
