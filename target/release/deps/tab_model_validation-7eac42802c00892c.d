/root/repo/target/release/deps/tab_model_validation-7eac42802c00892c.d: crates/bench/src/bin/tab_model_validation.rs

/root/repo/target/release/deps/tab_model_validation-7eac42802c00892c: crates/bench/src/bin/tab_model_validation.rs

crates/bench/src/bin/tab_model_validation.rs:
