/root/repo/target/release/deps/fig10_tradeoff_curves-29a29727b0f0bdfc.d: crates/bench/src/bin/fig10_tradeoff_curves.rs

/root/repo/target/release/deps/fig10_tradeoff_curves-29a29727b0f0bdfc: crates/bench/src/bin/fig10_tradeoff_curves.rs

crates/bench/src/bin/fig10_tradeoff_curves.rs:
