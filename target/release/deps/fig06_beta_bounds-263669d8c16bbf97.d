/root/repo/target/release/deps/fig06_beta_bounds-263669d8c16bbf97.d: crates/bench/src/bin/fig06_beta_bounds.rs

/root/repo/target/release/deps/fig06_beta_bounds-263669d8c16bbf97: crates/bench/src/bin/fig06_beta_bounds.rs

crates/bench/src/bin/fig06_beta_bounds.rs:
