/root/repo/target/release/deps/bench_smvp_kernels-36bc57623e677de5.d: crates/bench/benches/bench_smvp_kernels.rs

/root/repo/target/release/deps/bench_smvp_kernels-36bc57623e677de5: crates/bench/benches/bench_smvp_kernels.rs

crates/bench/benches/bench_smvp_kernels.rs:
