/root/repo/target/release/deps/quake_bench-7f291e87efbf9ffa.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

/root/repo/target/release/deps/libquake_bench-7f291e87efbf9ffa.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

/root/repo/target/release/deps/libquake_bench-7f291e87efbf9ffa.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/json.rs:
