/root/repo/target/release/deps/tab_model_validation-6256a335ae4110af.d: crates/bench/src/bin/tab_model_validation.rs

/root/repo/target/release/deps/tab_model_validation-6256a335ae4110af: crates/bench/src/bin/tab_model_validation.rs

crates/bench/src/bin/tab_model_validation.rs:
