/root/repo/target/release/deps/quake_app-4af99f1df409e48a.d: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/release/deps/libquake_app-4af99f1df409e48a.rlib: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/release/deps/libquake_app-4af99f1df409e48a.rmeta: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

crates/app/src/lib.rs:
crates/app/src/characterize.rs:
crates/app/src/distributed.rs:
crates/app/src/executor.rs:
crates/app/src/family.rs:
crates/app/src/report.rs:
crates/app/src/scaling.rs:
