/root/repo/target/release/deps/fig07_smvp_properties-5cfd2f7b55fa20e8.d: crates/bench/src/bin/fig07_smvp_properties.rs

/root/repo/target/release/deps/fig07_smvp_properties-5cfd2f7b55fa20e8: crates/bench/src/bin/fig07_smvp_properties.rs

crates/bench/src/bin/fig07_smvp_properties.rs:
