/root/repo/target/release/deps/quake_repro-92474b1622c7e7f0.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libquake_repro-92474b1622c7e7f0.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libquake_repro-92474b1622c7e7f0.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
