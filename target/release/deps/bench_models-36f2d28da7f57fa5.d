/root/repo/target/release/deps/bench_models-36f2d28da7f57fa5.d: crates/bench/benches/bench_models.rs

/root/repo/target/release/deps/bench_models-36f2d28da7f57fa5: crates/bench/benches/bench_models.rs

crates/bench/benches/bench_models.rs:
