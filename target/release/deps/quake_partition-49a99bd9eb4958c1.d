/root/repo/target/release/deps/quake_partition-49a99bd9eb4958c1.d: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

/root/repo/target/release/deps/libquake_partition-49a99bd9eb4958c1.rlib: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

/root/repo/target/release/deps/libquake_partition-49a99bd9eb4958c1.rmeta: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

crates/partition/src/lib.rs:
crates/partition/src/comm.rs:
crates/partition/src/geometric.rs:
crates/partition/src/metrics.rs:
crates/partition/src/partition.rs:
crates/partition/src/refine.rs:
crates/partition/src/sfc.rs:
crates/partition/src/spectral.rs:
