/root/repo/target/release/deps/tab_scaling_law-a1319c6132f6a445.d: crates/bench/src/bin/tab_scaling_law.rs

/root/repo/target/release/deps/tab_scaling_law-a1319c6132f6a445: crates/bench/src/bin/tab_scaling_law.rs

crates/bench/src/bin/tab_scaling_law.rs:
