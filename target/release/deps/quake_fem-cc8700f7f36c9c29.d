/root/repo/target/release/deps/quake_fem-cc8700f7f36c9c29.d: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/release/deps/libquake_fem-cc8700f7f36c9c29.rlib: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/release/deps/libquake_fem-cc8700f7f36c9c29.rmeta: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

crates/fem/src/lib.rs:
crates/fem/src/assembly.rs:
crates/fem/src/elasticity.rs:
crates/fem/src/source.rs:
crates/fem/src/timestep.rs:
