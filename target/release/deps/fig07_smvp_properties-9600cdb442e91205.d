/root/repo/target/release/deps/fig07_smvp_properties-9600cdb442e91205.d: crates/bench/src/bin/fig07_smvp_properties.rs

/root/repo/target/release/deps/fig07_smvp_properties-9600cdb442e91205: crates/bench/src/bin/fig07_smvp_properties.rs

crates/bench/src/bin/fig07_smvp_properties.rs:
