/root/repo/target/release/deps/fig06_beta_bounds-09696318ab79eb4c.d: crates/bench/src/bin/fig06_beta_bounds.rs

/root/repo/target/release/deps/fig06_beta_bounds-09696318ab79eb4c: crates/bench/src/bin/fig06_beta_bounds.rs

crates/bench/src/bin/fig06_beta_bounds.rs:
