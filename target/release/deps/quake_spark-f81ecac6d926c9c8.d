/root/repo/target/release/deps/quake_spark-f81ecac6d926c9c8.d: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

/root/repo/target/release/deps/libquake_spark-f81ecac6d926c9c8.rlib: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

/root/repo/target/release/deps/libquake_spark-f81ecac6d926c9c8.rmeta: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

crates/spark/src/lib.rs:
crates/spark/src/kernels.rs:
crates/spark/src/pool.rs:
crates/spark/src/workspace.rs:
