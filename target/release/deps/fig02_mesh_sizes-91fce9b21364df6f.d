/root/repo/target/release/deps/fig02_mesh_sizes-91fce9b21364df6f.d: crates/bench/src/bin/fig02_mesh_sizes.rs

/root/repo/target/release/deps/fig02_mesh_sizes-91fce9b21364df6f: crates/bench/src/bin/fig02_mesh_sizes.rs

crates/bench/src/bin/fig02_mesh_sizes.rs:
