/root/repo/target/release/deps/fig02_mesh_sizes-2a2c7a219b04843d.d: crates/bench/src/bin/fig02_mesh_sizes.rs

/root/repo/target/release/deps/fig02_mesh_sizes-2a2c7a219b04843d: crates/bench/src/bin/fig02_mesh_sizes.rs

crates/bench/src/bin/fig02_mesh_sizes.rs:
