/root/repo/target/release/deps/quake_bench-2b9ffa1eb9caa89c.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

/root/repo/target/release/deps/quake_bench-2b9ffa1eb9caa89c: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/json.rs:
