/root/repo/target/release/deps/fig07_smvp_properties-a0f1a38b67df1adc.d: crates/bench/src/bin/fig07_smvp_properties.rs

/root/repo/target/release/deps/fig07_smvp_properties-a0f1a38b67df1adc: crates/bench/src/bin/fig07_smvp_properties.rs

crates/bench/src/bin/fig07_smvp_properties.rs:
