/root/repo/target/release/deps/fig02_mesh_sizes-a5a60121fb546c05.d: crates/bench/src/bin/fig02_mesh_sizes.rs

/root/repo/target/release/deps/fig02_mesh_sizes-a5a60121fb546c05: crates/bench/src/bin/fig02_mesh_sizes.rs

crates/bench/src/bin/fig02_mesh_sizes.rs:
