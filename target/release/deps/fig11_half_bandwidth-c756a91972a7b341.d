/root/repo/target/release/deps/fig11_half_bandwidth-c756a91972a7b341.d: crates/bench/src/bin/fig11_half_bandwidth.rs

/root/repo/target/release/deps/fig11_half_bandwidth-c756a91972a7b341: crates/bench/src/bin/fig11_half_bandwidth.rs

crates/bench/src/bin/fig11_half_bandwidth.rs:
