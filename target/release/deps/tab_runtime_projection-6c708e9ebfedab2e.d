/root/repo/target/release/deps/tab_runtime_projection-6c708e9ebfedab2e.d: crates/bench/src/bin/tab_runtime_projection.rs

/root/repo/target/release/deps/tab_runtime_projection-6c708e9ebfedab2e: crates/bench/src/bin/tab_runtime_projection.rs

crates/bench/src/bin/tab_runtime_projection.rs:
