/root/repo/target/release/deps/quake_bench-aae4a8562c2d44ca.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libquake_bench-aae4a8562c2d44ca.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libquake_bench-aae4a8562c2d44ca.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
