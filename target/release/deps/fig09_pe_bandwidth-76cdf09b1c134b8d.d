/root/repo/target/release/deps/fig09_pe_bandwidth-76cdf09b1c134b8d.d: crates/bench/src/bin/fig09_pe_bandwidth.rs

/root/repo/target/release/deps/fig09_pe_bandwidth-76cdf09b1c134b8d: crates/bench/src/bin/fig09_pe_bandwidth.rs

crates/bench/src/bin/fig09_pe_bandwidth.rs:
