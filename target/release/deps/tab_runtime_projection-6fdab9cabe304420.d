/root/repo/target/release/deps/tab_runtime_projection-6fdab9cabe304420.d: crates/bench/src/bin/tab_runtime_projection.rs

/root/repo/target/release/deps/tab_runtime_projection-6fdab9cabe304420: crates/bench/src/bin/tab_runtime_projection.rs

crates/bench/src/bin/tab_runtime_projection.rs:
