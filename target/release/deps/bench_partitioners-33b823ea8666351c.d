/root/repo/target/release/deps/bench_partitioners-33b823ea8666351c.d: crates/bench/benches/bench_partitioners.rs

/root/repo/target/release/deps/bench_partitioners-33b823ea8666351c: crates/bench/benches/bench_partitioners.rs

crates/bench/benches/bench_partitioners.rs:
