/root/repo/target/release/deps/quake-e82adb946e08f27a.d: src/main.rs

/root/repo/target/release/deps/quake-e82adb946e08f27a: src/main.rs

src/main.rs:
