/root/repo/target/release/deps/quake_netsim-eb4538e310a19c2e.d: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

/root/repo/target/release/deps/libquake_netsim-eb4538e310a19c2e.rlib: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

/root/repo/target/release/deps/libquake_netsim-eb4538e310a19c2e.rmeta: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/simulate.rs:
crates/netsim/src/sweep.rs:
crates/netsim/src/validate.rs:
crates/netsim/src/workload.rs:
