/root/repo/target/release/deps/fig11_half_bandwidth-8f9273cf162ff214.d: crates/bench/src/bin/fig11_half_bandwidth.rs

/root/repo/target/release/deps/fig11_half_bandwidth-8f9273cf162ff214: crates/bench/src/bin/fig11_half_bandwidth.rs

crates/bench/src/bin/fig11_half_bandwidth.rs:
