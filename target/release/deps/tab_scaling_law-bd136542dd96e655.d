/root/repo/target/release/deps/tab_scaling_law-bd136542dd96e655.d: crates/bench/src/bin/tab_scaling_law.rs

/root/repo/target/release/deps/tab_scaling_law-bd136542dd96e655: crates/bench/src/bin/tab_scaling_law.rs

crates/bench/src/bin/tab_scaling_law.rs:
