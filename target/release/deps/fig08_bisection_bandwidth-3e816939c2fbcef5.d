/root/repo/target/release/deps/fig08_bisection_bandwidth-3e816939c2fbcef5.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

/root/repo/target/release/deps/fig08_bisection_bandwidth-3e816939c2fbcef5: crates/bench/src/bin/fig08_bisection_bandwidth.rs

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
