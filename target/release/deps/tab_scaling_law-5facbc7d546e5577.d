/root/repo/target/release/deps/tab_scaling_law-5facbc7d546e5577.d: crates/bench/src/bin/tab_scaling_law.rs

/root/repo/target/release/deps/tab_scaling_law-5facbc7d546e5577: crates/bench/src/bin/tab_scaling_law.rs

crates/bench/src/bin/tab_scaling_law.rs:
