/root/repo/target/release/deps/bench_reorder-c80c2d09f6948cf8.d: crates/bench/benches/bench_reorder.rs

/root/repo/target/release/deps/bench_reorder-c80c2d09f6948cf8: crates/bench/benches/bench_reorder.rs

crates/bench/benches/bench_reorder.rs:
