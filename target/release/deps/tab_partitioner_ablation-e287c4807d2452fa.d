/root/repo/target/release/deps/tab_partitioner_ablation-e287c4807d2452fa.d: crates/bench/src/bin/tab_partitioner_ablation.rs

/root/repo/target/release/deps/tab_partitioner_ablation-e287c4807d2452fa: crates/bench/src/bin/tab_partitioner_ablation.rs

crates/bench/src/bin/tab_partitioner_ablation.rs:
