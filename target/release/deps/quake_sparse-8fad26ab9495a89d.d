/root/repo/target/release/deps/quake_sparse-8fad26ab9495a89d.d: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/pattern.rs crates/sparse/src/reorder.rs crates/sparse/src/sym.rs

/root/repo/target/release/deps/libquake_sparse-8fad26ab9495a89d.rlib: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/pattern.rs crates/sparse/src/reorder.rs crates/sparse/src/sym.rs

/root/repo/target/release/deps/libquake_sparse-8fad26ab9495a89d.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/pattern.rs crates/sparse/src/reorder.rs crates/sparse/src/sym.rs

crates/sparse/src/lib.rs:
crates/sparse/src/bcsr.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/pattern.rs:
crates/sparse/src/reorder.rs:
crates/sparse/src/sym.rs:
