/root/repo/target/release/deps/bench_executor-dff1aa8cb9cdcfe1.d: crates/bench/benches/bench_executor.rs

/root/repo/target/release/deps/bench_executor-dff1aa8cb9cdcfe1: crates/bench/benches/bench_executor.rs

crates/bench/benches/bench_executor.rs:
