/root/repo/target/release/deps/quake_core-1b33d9a1c718cc00.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/machine.rs crates/core/src/model/mod.rs crates/core/src/model/beta.rs crates/core/src/model/bisection.rs crates/core/src/model/eq1.rs crates/core/src/model/eq2.rs crates/core/src/model/logp.rs crates/core/src/model/overlap.rs crates/core/src/model/scaling_law.rs crates/core/src/model/validate.rs crates/core/src/paperdata.rs crates/core/src/requirements.rs

/root/repo/target/release/deps/libquake_core-1b33d9a1c718cc00.rlib: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/machine.rs crates/core/src/model/mod.rs crates/core/src/model/beta.rs crates/core/src/model/bisection.rs crates/core/src/model/eq1.rs crates/core/src/model/eq2.rs crates/core/src/model/logp.rs crates/core/src/model/overlap.rs crates/core/src/model/scaling_law.rs crates/core/src/model/validate.rs crates/core/src/paperdata.rs crates/core/src/requirements.rs

/root/repo/target/release/deps/libquake_core-1b33d9a1c718cc00.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/machine.rs crates/core/src/model/mod.rs crates/core/src/model/beta.rs crates/core/src/model/bisection.rs crates/core/src/model/eq1.rs crates/core/src/model/eq2.rs crates/core/src/model/logp.rs crates/core/src/model/overlap.rs crates/core/src/model/scaling_law.rs crates/core/src/model/validate.rs crates/core/src/paperdata.rs crates/core/src/requirements.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/machine.rs:
crates/core/src/model/mod.rs:
crates/core/src/model/beta.rs:
crates/core/src/model/bisection.rs:
crates/core/src/model/eq1.rs:
crates/core/src/model/eq2.rs:
crates/core/src/model/logp.rs:
crates/core/src/model/overlap.rs:
crates/core/src/model/scaling_law.rs:
crates/core/src/model/validate.rs:
crates/core/src/paperdata.rs:
crates/core/src/requirements.rs:
