/root/repo/target/release/deps/quake_memsim-40796afdd5432ab7.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

/root/repo/target/release/deps/libquake_memsim-40796afdd5432ab7.rlib: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

/root/repo/target/release/deps/libquake_memsim-40796afdd5432ab7.rmeta: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/stride.rs:
crates/memsim/src/trace.rs:
