/root/repo/target/release/deps/tab_efficiency_surface-386cebabdbf832ee.d: crates/bench/src/bin/tab_efficiency_surface.rs

/root/repo/target/release/deps/tab_efficiency_surface-386cebabdbf832ee: crates/bench/src/bin/tab_efficiency_surface.rs

crates/bench/src/bin/tab_efficiency_surface.rs:
