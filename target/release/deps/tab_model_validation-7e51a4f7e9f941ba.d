/root/repo/target/release/deps/tab_model_validation-7e51a4f7e9f941ba.d: crates/bench/src/bin/tab_model_validation.rs

/root/repo/target/release/deps/tab_model_validation-7e51a4f7e9f941ba: crates/bench/src/bin/tab_model_validation.rs

crates/bench/src/bin/tab_model_validation.rs:
