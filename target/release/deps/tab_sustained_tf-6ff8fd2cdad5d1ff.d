/root/repo/target/release/deps/tab_sustained_tf-6ff8fd2cdad5d1ff.d: crates/bench/src/bin/tab_sustained_tf.rs

/root/repo/target/release/deps/tab_sustained_tf-6ff8fd2cdad5d1ff: crates/bench/src/bin/tab_sustained_tf.rs

crates/bench/src/bin/tab_sustained_tf.rs:
