/root/repo/target/release/deps/tab_efficiency_surface-e108d87dd30430be.d: crates/bench/src/bin/tab_efficiency_surface.rs

/root/repo/target/release/deps/tab_efficiency_surface-e108d87dd30430be: crates/bench/src/bin/tab_efficiency_surface.rs

crates/bench/src/bin/tab_efficiency_surface.rs:
