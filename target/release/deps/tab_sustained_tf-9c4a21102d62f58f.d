/root/repo/target/release/deps/tab_sustained_tf-9c4a21102d62f58f.d: crates/bench/src/bin/tab_sustained_tf.rs

/root/repo/target/release/deps/tab_sustained_tf-9c4a21102d62f58f: crates/bench/src/bin/tab_sustained_tf.rs

crates/bench/src/bin/tab_sustained_tf.rs:
