/root/repo/target/release/deps/bench_smvp-c487d65d2b7239d4.d: crates/bench/src/bin/bench_smvp.rs

/root/repo/target/release/deps/bench_smvp-c487d65d2b7239d4: crates/bench/src/bin/bench_smvp.rs

crates/bench/src/bin/bench_smvp.rs:
