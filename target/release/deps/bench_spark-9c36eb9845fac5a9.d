/root/repo/target/release/deps/bench_spark-9c36eb9845fac5a9.d: crates/bench/benches/bench_spark.rs

/root/repo/target/release/deps/bench_spark-9c36eb9845fac5a9: crates/bench/benches/bench_spark.rs

crates/bench/benches/bench_spark.rs:
