/root/repo/target/release/deps/bench_smvp-5c2f9d1d4e8a580f.d: crates/bench/src/bin/bench_smvp.rs

/root/repo/target/release/deps/bench_smvp-5c2f9d1d4e8a580f: crates/bench/src/bin/bench_smvp.rs

crates/bench/src/bin/bench_smvp.rs:
