/root/repo/target/release/deps/tab_exflow_comparison-006a83283b210f0f.d: crates/bench/src/bin/tab_exflow_comparison.rs

/root/repo/target/release/deps/tab_exflow_comparison-006a83283b210f0f: crates/bench/src/bin/tab_exflow_comparison.rs

crates/bench/src/bin/tab_exflow_comparison.rs:
