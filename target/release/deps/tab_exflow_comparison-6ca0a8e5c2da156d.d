/root/repo/target/release/deps/tab_exflow_comparison-6ca0a8e5c2da156d.d: crates/bench/src/bin/tab_exflow_comparison.rs

/root/repo/target/release/deps/tab_exflow_comparison-6ca0a8e5c2da156d: crates/bench/src/bin/tab_exflow_comparison.rs

crates/bench/src/bin/tab_exflow_comparison.rs:
