/root/repo/target/release/deps/tab_exflow_comparison-57b2e0db487fbbac.d: crates/bench/src/bin/tab_exflow_comparison.rs

/root/repo/target/release/deps/tab_exflow_comparison-57b2e0db487fbbac: crates/bench/src/bin/tab_exflow_comparison.rs

crates/bench/src/bin/tab_exflow_comparison.rs:
