/root/repo/target/release/deps/quake-7be5a59f683dfcec.d: src/main.rs

/root/repo/target/release/deps/quake-7be5a59f683dfcec: src/main.rs

src/main.rs:
