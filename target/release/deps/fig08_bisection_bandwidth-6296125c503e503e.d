/root/repo/target/release/deps/fig08_bisection_bandwidth-6296125c503e503e.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

/root/repo/target/release/deps/fig08_bisection_bandwidth-6296125c503e503e: crates/bench/src/bin/fig08_bisection_bandwidth.rs

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
