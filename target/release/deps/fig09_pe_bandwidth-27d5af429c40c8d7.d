/root/repo/target/release/deps/fig09_pe_bandwidth-27d5af429c40c8d7.d: crates/bench/src/bin/fig09_pe_bandwidth.rs

/root/repo/target/release/deps/fig09_pe_bandwidth-27d5af429c40c8d7: crates/bench/src/bin/fig09_pe_bandwidth.rs

crates/bench/src/bin/fig09_pe_bandwidth.rs:
