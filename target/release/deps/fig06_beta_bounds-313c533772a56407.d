/root/repo/target/release/deps/fig06_beta_bounds-313c533772a56407.d: crates/bench/src/bin/fig06_beta_bounds.rs

/root/repo/target/release/deps/fig06_beta_bounds-313c533772a56407: crates/bench/src/bin/fig06_beta_bounds.rs

crates/bench/src/bin/fig06_beta_bounds.rs:
