/root/repo/target/release/deps/fig11_half_bandwidth-e76c38258585da52.d: crates/bench/src/bin/fig11_half_bandwidth.rs

/root/repo/target/release/deps/fig11_half_bandwidth-e76c38258585da52: crates/bench/src/bin/fig11_half_bandwidth.rs

crates/bench/src/bin/fig11_half_bandwidth.rs:
