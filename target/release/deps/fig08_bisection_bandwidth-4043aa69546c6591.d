/root/repo/target/release/deps/fig08_bisection_bandwidth-4043aa69546c6591.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

/root/repo/target/release/deps/fig08_bisection_bandwidth-4043aa69546c6591: crates/bench/src/bin/fig08_bisection_bandwidth.rs

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
