/root/repo/target/release/deps/quake_mesh-90614cf9aa8dd3e3.d: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

/root/repo/target/release/deps/libquake_mesh-90614cf9aa8dd3e3.rlib: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

/root/repo/target/release/deps/libquake_mesh-90614cf9aa8dd3e3.rmeta: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

crates/mesh/src/lib.rs:
crates/mesh/src/boundary.rs:
crates/mesh/src/delaunay.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/geometry.rs:
crates/mesh/src/ground.rs:
crates/mesh/src/io.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/refine.rs:
crates/mesh/src/sampling.rs:
