/root/repo/target/release/deps/tab_partitioner_ablation-8fd4cfbe2efaad2c.d: crates/bench/src/bin/tab_partitioner_ablation.rs

/root/repo/target/release/deps/tab_partitioner_ablation-8fd4cfbe2efaad2c: crates/bench/src/bin/tab_partitioner_ablation.rs

crates/bench/src/bin/tab_partitioner_ablation.rs:
