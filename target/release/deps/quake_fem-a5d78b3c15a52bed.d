/root/repo/target/release/deps/quake_fem-a5d78b3c15a52bed.d: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/release/deps/libquake_fem-a5d78b3c15a52bed.rlib: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/release/deps/libquake_fem-a5d78b3c15a52bed.rmeta: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

crates/fem/src/lib.rs:
crates/fem/src/assembly.rs:
crates/fem/src/elasticity.rs:
crates/fem/src/source.rs:
crates/fem/src/timestep.rs:
