/root/repo/target/release/deps/fig10_tradeoff_curves-ec01a41c314cce21.d: crates/bench/src/bin/fig10_tradeoff_curves.rs

/root/repo/target/release/deps/fig10_tradeoff_curves-ec01a41c314cce21: crates/bench/src/bin/fig10_tradeoff_curves.rs

crates/bench/src/bin/fig10_tradeoff_curves.rs:
