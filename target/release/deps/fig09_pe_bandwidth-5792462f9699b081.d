/root/repo/target/release/deps/fig09_pe_bandwidth-5792462f9699b081.d: crates/bench/src/bin/fig09_pe_bandwidth.rs

/root/repo/target/release/deps/fig09_pe_bandwidth-5792462f9699b081: crates/bench/src/bin/fig09_pe_bandwidth.rs

crates/bench/src/bin/fig09_pe_bandwidth.rs:
