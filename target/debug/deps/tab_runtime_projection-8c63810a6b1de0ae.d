/root/repo/target/debug/deps/tab_runtime_projection-8c63810a6b1de0ae.d: crates/bench/src/bin/tab_runtime_projection.rs

/root/repo/target/debug/deps/tab_runtime_projection-8c63810a6b1de0ae: crates/bench/src/bin/tab_runtime_projection.rs

crates/bench/src/bin/tab_runtime_projection.rs:
