/root/repo/target/debug/deps/bench_partitioners-dd52147000ea7350.d: crates/bench/benches/bench_partitioners.rs Cargo.toml

/root/repo/target/debug/deps/libbench_partitioners-dd52147000ea7350.rmeta: crates/bench/benches/bench_partitioners.rs Cargo.toml

crates/bench/benches/bench_partitioners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
