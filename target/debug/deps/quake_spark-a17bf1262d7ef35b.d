/root/repo/target/debug/deps/quake_spark-a17bf1262d7ef35b.d: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

/root/repo/target/debug/deps/libquake_spark-a17bf1262d7ef35b.rlib: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

/root/repo/target/debug/deps/libquake_spark-a17bf1262d7ef35b.rmeta: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

crates/spark/src/lib.rs:
crates/spark/src/kernels.rs:
crates/spark/src/pool.rs:
crates/spark/src/workspace.rs:
