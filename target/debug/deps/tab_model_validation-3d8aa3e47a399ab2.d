/root/repo/target/debug/deps/tab_model_validation-3d8aa3e47a399ab2.d: crates/bench/src/bin/tab_model_validation.rs

/root/repo/target/debug/deps/tab_model_validation-3d8aa3e47a399ab2: crates/bench/src/bin/tab_model_validation.rs

crates/bench/src/bin/tab_model_validation.rs:
