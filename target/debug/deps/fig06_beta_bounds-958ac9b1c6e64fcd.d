/root/repo/target/debug/deps/fig06_beta_bounds-958ac9b1c6e64fcd.d: crates/bench/src/bin/fig06_beta_bounds.rs

/root/repo/target/debug/deps/fig06_beta_bounds-958ac9b1c6e64fcd: crates/bench/src/bin/fig06_beta_bounds.rs

crates/bench/src/bin/fig06_beta_bounds.rs:
