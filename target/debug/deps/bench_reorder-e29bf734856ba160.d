/root/repo/target/debug/deps/bench_reorder-e29bf734856ba160.d: crates/bench/benches/bench_reorder.rs Cargo.toml

/root/repo/target/debug/deps/libbench_reorder-e29bf734856ba160.rmeta: crates/bench/benches/bench_reorder.rs Cargo.toml

crates/bench/benches/bench_reorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
