/root/repo/target/debug/deps/model_consistency-4730a99490132f59.d: tests/model_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_consistency-4730a99490132f59.rmeta: tests/model_consistency.rs Cargo.toml

tests/model_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
