/root/repo/target/debug/deps/tab_runtime_projection-5d84f673c7dc6bdd.d: crates/bench/src/bin/tab_runtime_projection.rs

/root/repo/target/debug/deps/tab_runtime_projection-5d84f673c7dc6bdd: crates/bench/src/bin/tab_runtime_projection.rs

crates/bench/src/bin/tab_runtime_projection.rs:
