/root/repo/target/debug/deps/tab_partitioner_ablation-cbe9d08a8205b4b9.d: crates/bench/src/bin/tab_partitioner_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtab_partitioner_ablation-cbe9d08a8205b4b9.rmeta: crates/bench/src/bin/tab_partitioner_ablation.rs Cargo.toml

crates/bench/src/bin/tab_partitioner_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
