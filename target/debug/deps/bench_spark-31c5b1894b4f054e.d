/root/repo/target/debug/deps/bench_spark-31c5b1894b4f054e.d: crates/bench/benches/bench_spark.rs

/root/repo/target/debug/deps/bench_spark-31c5b1894b4f054e: crates/bench/benches/bench_spark.rs

crates/bench/benches/bench_spark.rs:
