/root/repo/target/debug/deps/fig02_mesh_sizes-f114ca3ba2b474c2.d: crates/bench/src/bin/fig02_mesh_sizes.rs

/root/repo/target/debug/deps/fig02_mesh_sizes-f114ca3ba2b474c2: crates/bench/src/bin/fig02_mesh_sizes.rs

crates/bench/src/bin/fig02_mesh_sizes.rs:
