/root/repo/target/debug/deps/tab_partitioner_ablation-7259ad69c5e53b4f.d: crates/bench/src/bin/tab_partitioner_ablation.rs

/root/repo/target/debug/deps/tab_partitioner_ablation-7259ad69c5e53b4f: crates/bench/src/bin/tab_partitioner_ablation.rs

crates/bench/src/bin/tab_partitioner_ablation.rs:
