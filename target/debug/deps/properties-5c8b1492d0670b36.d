/root/repo/target/debug/deps/properties-5c8b1492d0670b36.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5c8b1492d0670b36: tests/properties.rs

tests/properties.rs:
