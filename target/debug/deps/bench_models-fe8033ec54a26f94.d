/root/repo/target/debug/deps/bench_models-fe8033ec54a26f94.d: crates/bench/benches/bench_models.rs

/root/repo/target/debug/deps/bench_models-fe8033ec54a26f94: crates/bench/benches/bench_models.rs

crates/bench/benches/bench_models.rs:
