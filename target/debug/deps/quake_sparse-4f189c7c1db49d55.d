/root/repo/target/debug/deps/quake_sparse-4f189c7c1db49d55.d: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/pattern.rs crates/sparse/src/reorder.rs crates/sparse/src/sym.rs

/root/repo/target/debug/deps/quake_sparse-4f189c7c1db49d55: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/pattern.rs crates/sparse/src/reorder.rs crates/sparse/src/sym.rs

crates/sparse/src/lib.rs:
crates/sparse/src/bcsr.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/pattern.rs:
crates/sparse/src/reorder.rs:
crates/sparse/src/sym.rs:
