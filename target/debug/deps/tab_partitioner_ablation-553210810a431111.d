/root/repo/target/debug/deps/tab_partitioner_ablation-553210810a431111.d: crates/bench/src/bin/tab_partitioner_ablation.rs

/root/repo/target/debug/deps/tab_partitioner_ablation-553210810a431111: crates/bench/src/bin/tab_partitioner_ablation.rs

crates/bench/src/bin/tab_partitioner_ablation.rs:
