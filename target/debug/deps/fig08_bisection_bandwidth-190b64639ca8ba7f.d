/root/repo/target/debug/deps/fig08_bisection_bandwidth-190b64639ca8ba7f.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_bisection_bandwidth-190b64639ca8ba7f.rmeta: crates/bench/src/bin/fig08_bisection_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
