/root/repo/target/debug/deps/tab_model_validation-5d99ddf87b96ca84.d: crates/bench/src/bin/tab_model_validation.rs

/root/repo/target/debug/deps/tab_model_validation-5d99ddf87b96ca84: crates/bench/src/bin/tab_model_validation.rs

crates/bench/src/bin/tab_model_validation.rs:
