/root/repo/target/debug/deps/bench_smvp-0949df1869c6bbc0.d: crates/bench/src/bin/bench_smvp.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smvp-0949df1869c6bbc0.rmeta: crates/bench/src/bin/bench_smvp.rs Cargo.toml

crates/bench/src/bin/bench_smvp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
