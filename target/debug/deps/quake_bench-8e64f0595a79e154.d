/root/repo/target/debug/deps/quake_bench-8e64f0595a79e154.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libquake_bench-8e64f0595a79e154.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
