/root/repo/target/debug/deps/quake_fem-15a2a1935188084c.d: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/debug/deps/quake_fem-15a2a1935188084c: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

crates/fem/src/lib.rs:
crates/fem/src/assembly.rs:
crates/fem/src/elasticity.rs:
crates/fem/src/source.rs:
crates/fem/src/timestep.rs:
