/root/repo/target/debug/deps/bench_partitioners-360b215f4d9a75e0.d: crates/bench/benches/bench_partitioners.rs

/root/repo/target/debug/deps/bench_partitioners-360b215f4d9a75e0: crates/bench/benches/bench_partitioners.rs

crates/bench/benches/bench_partitioners.rs:
