/root/repo/target/debug/deps/kernel_equivalence-a9dd91a52efc4383.d: crates/spark/tests/kernel_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_equivalence-a9dd91a52efc4383.rmeta: crates/spark/tests/kernel_equivalence.rs Cargo.toml

crates/spark/tests/kernel_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
