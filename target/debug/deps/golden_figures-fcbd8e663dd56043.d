/root/repo/target/debug/deps/golden_figures-fcbd8e663dd56043.d: crates/bench/tests/golden_figures.rs

/root/repo/target/debug/deps/golden_figures-fcbd8e663dd56043: crates/bench/tests/golden_figures.rs

crates/bench/tests/golden_figures.rs:
