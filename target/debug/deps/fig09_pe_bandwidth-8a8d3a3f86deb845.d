/root/repo/target/debug/deps/fig09_pe_bandwidth-8a8d3a3f86deb845.d: crates/bench/src/bin/fig09_pe_bandwidth.rs

/root/repo/target/debug/deps/fig09_pe_bandwidth-8a8d3a3f86deb845: crates/bench/src/bin/fig09_pe_bandwidth.rs

crates/bench/src/bin/fig09_pe_bandwidth.rs:
