/root/repo/target/debug/deps/quake_repro-3a9c17005545bed0.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libquake_repro-3a9c17005545bed0.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libquake_repro-3a9c17005545bed0.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
