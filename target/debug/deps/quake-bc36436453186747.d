/root/repo/target/debug/deps/quake-bc36436453186747.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libquake-bc36436453186747.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
