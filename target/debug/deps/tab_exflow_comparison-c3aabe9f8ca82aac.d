/root/repo/target/debug/deps/tab_exflow_comparison-c3aabe9f8ca82aac.d: crates/bench/src/bin/tab_exflow_comparison.rs

/root/repo/target/debug/deps/tab_exflow_comparison-c3aabe9f8ca82aac: crates/bench/src/bin/tab_exflow_comparison.rs

crates/bench/src/bin/tab_exflow_comparison.rs:
