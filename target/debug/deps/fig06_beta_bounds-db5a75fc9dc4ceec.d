/root/repo/target/debug/deps/fig06_beta_bounds-db5a75fc9dc4ceec.d: crates/bench/src/bin/fig06_beta_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_beta_bounds-db5a75fc9dc4ceec.rmeta: crates/bench/src/bin/fig06_beta_bounds.rs Cargo.toml

crates/bench/src/bin/fig06_beta_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
