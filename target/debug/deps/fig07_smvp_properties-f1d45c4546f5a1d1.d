/root/repo/target/debug/deps/fig07_smvp_properties-f1d45c4546f5a1d1.d: crates/bench/src/bin/fig07_smvp_properties.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_smvp_properties-f1d45c4546f5a1d1.rmeta: crates/bench/src/bin/fig07_smvp_properties.rs Cargo.toml

crates/bench/src/bin/fig07_smvp_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
