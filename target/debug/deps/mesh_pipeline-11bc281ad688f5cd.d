/root/repo/target/debug/deps/mesh_pipeline-11bc281ad688f5cd.d: tests/mesh_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmesh_pipeline-11bc281ad688f5cd.rmeta: tests/mesh_pipeline.rs Cargo.toml

tests/mesh_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
