/root/repo/target/debug/deps/fig09_pe_bandwidth-b32d4b5b1c513388.d: crates/bench/src/bin/fig09_pe_bandwidth.rs

/root/repo/target/debug/deps/fig09_pe_bandwidth-b32d4b5b1c513388: crates/bench/src/bin/fig09_pe_bandwidth.rs

crates/bench/src/bin/fig09_pe_bandwidth.rs:
