/root/repo/target/debug/deps/quake_bench-1b64cf910d281837.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/quake_bench-1b64cf910d281837: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/json.rs:
