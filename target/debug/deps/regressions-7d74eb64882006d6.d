/root/repo/target/debug/deps/regressions-7d74eb64882006d6.d: tests/regressions.rs

/root/repo/target/debug/deps/regressions-7d74eb64882006d6: tests/regressions.rs

tests/regressions.rs:
