/root/repo/target/debug/deps/tab_model_validation-6e3615f225386dcc.d: crates/bench/src/bin/tab_model_validation.rs

/root/repo/target/debug/deps/tab_model_validation-6e3615f225386dcc: crates/bench/src/bin/tab_model_validation.rs

crates/bench/src/bin/tab_model_validation.rs:
