/root/repo/target/debug/deps/bench_reorder-92d977faa285d0b7.d: crates/bench/benches/bench_reorder.rs Cargo.toml

/root/repo/target/debug/deps/libbench_reorder-92d977faa285d0b7.rmeta: crates/bench/benches/bench_reorder.rs Cargo.toml

crates/bench/benches/bench_reorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
