/root/repo/target/debug/deps/end_to_end-56c28c0c027cc0f1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-56c28c0c027cc0f1: tests/end_to_end.rs

tests/end_to_end.rs:
