/root/repo/target/debug/deps/fig02_mesh_sizes-a13b0aa54f28c1ba.d: crates/bench/src/bin/fig02_mesh_sizes.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_mesh_sizes-a13b0aa54f28c1ba.rmeta: crates/bench/src/bin/fig02_mesh_sizes.rs Cargo.toml

crates/bench/src/bin/fig02_mesh_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
