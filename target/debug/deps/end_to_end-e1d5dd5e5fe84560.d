/root/repo/target/debug/deps/end_to_end-e1d5dd5e5fe84560.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e1d5dd5e5fe84560: tests/end_to_end.rs

tests/end_to_end.rs:
