/root/repo/target/debug/deps/bench_smvp_kernels-5d3a15297a84eb60.d: crates/bench/benches/bench_smvp_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smvp_kernels-5d3a15297a84eb60.rmeta: crates/bench/benches/bench_smvp_kernels.rs Cargo.toml

crates/bench/benches/bench_smvp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
