/root/repo/target/debug/deps/quake_mesh-dad463c2d35768fd.d: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs Cargo.toml

/root/repo/target/debug/deps/libquake_mesh-dad463c2d35768fd.rmeta: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/boundary.rs:
crates/mesh/src/delaunay.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/geometry.rs:
crates/mesh/src/ground.rs:
crates/mesh/src/io.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/refine.rs:
crates/mesh/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
