/root/repo/target/debug/deps/quake_repro-6439897fbf3f3444.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libquake_repro-6439897fbf3f3444.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
