/root/repo/target/debug/deps/quake_netsim-ec8261b79442308a.d: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libquake_netsim-ec8261b79442308a.rmeta: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/simulate.rs:
crates/netsim/src/sweep.rs:
crates/netsim/src/validate.rs:
crates/netsim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
