/root/repo/target/debug/deps/fig02_mesh_sizes-0d8bd9290bb0a4df.d: crates/bench/src/bin/fig02_mesh_sizes.rs

/root/repo/target/debug/deps/fig02_mesh_sizes-0d8bd9290bb0a4df: crates/bench/src/bin/fig02_mesh_sizes.rs

crates/bench/src/bin/fig02_mesh_sizes.rs:
