/root/repo/target/debug/deps/tab_partitioner_ablation-5406fb4bbeb474d5.d: crates/bench/src/bin/tab_partitioner_ablation.rs

/root/repo/target/debug/deps/tab_partitioner_ablation-5406fb4bbeb474d5: crates/bench/src/bin/tab_partitioner_ablation.rs

crates/bench/src/bin/tab_partitioner_ablation.rs:
