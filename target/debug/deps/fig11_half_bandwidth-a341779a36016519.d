/root/repo/target/debug/deps/fig11_half_bandwidth-a341779a36016519.d: crates/bench/src/bin/fig11_half_bandwidth.rs

/root/repo/target/debug/deps/fig11_half_bandwidth-a341779a36016519: crates/bench/src/bin/fig11_half_bandwidth.rs

crates/bench/src/bin/fig11_half_bandwidth.rs:
