/root/repo/target/debug/deps/properties-03388d3e62f45659.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-03388d3e62f45659.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
