/root/repo/target/debug/deps/bench_models-4fa97f18f209c75f.d: crates/bench/benches/bench_models.rs Cargo.toml

/root/repo/target/debug/deps/libbench_models-4fa97f18f209c75f.rmeta: crates/bench/benches/bench_models.rs Cargo.toml

crates/bench/benches/bench_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
