/root/repo/target/debug/deps/tab_sustained_tf-3b4cae0b0dd07a56.d: crates/bench/src/bin/tab_sustained_tf.rs Cargo.toml

/root/repo/target/debug/deps/libtab_sustained_tf-3b4cae0b0dd07a56.rmeta: crates/bench/src/bin/tab_sustained_tf.rs Cargo.toml

crates/bench/src/bin/tab_sustained_tf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
