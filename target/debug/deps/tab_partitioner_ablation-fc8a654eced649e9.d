/root/repo/target/debug/deps/tab_partitioner_ablation-fc8a654eced649e9.d: crates/bench/src/bin/tab_partitioner_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtab_partitioner_ablation-fc8a654eced649e9.rmeta: crates/bench/src/bin/tab_partitioner_ablation.rs Cargo.toml

crates/bench/src/bin/tab_partitioner_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
