/root/repo/target/debug/deps/quake-46b2a46d49007983.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libquake-46b2a46d49007983.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
