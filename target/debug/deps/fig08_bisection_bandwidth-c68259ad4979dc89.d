/root/repo/target/debug/deps/fig08_bisection_bandwidth-c68259ad4979dc89.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

/root/repo/target/debug/deps/fig08_bisection_bandwidth-c68259ad4979dc89: crates/bench/src/bin/fig08_bisection_bandwidth.rs

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
