/root/repo/target/debug/deps/quake_repro-dc27ddb6ae8a198d.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/quake_repro-dc27ddb6ae8a198d: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
