/root/repo/target/debug/deps/tab_scaling_law-7e73b72bffa16da3.d: crates/bench/src/bin/tab_scaling_law.rs

/root/repo/target/debug/deps/tab_scaling_law-7e73b72bffa16da3: crates/bench/src/bin/tab_scaling_law.rs

crates/bench/src/bin/tab_scaling_law.rs:
