/root/repo/target/debug/deps/quake_memsim-64af0f22681a2533.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

/root/repo/target/debug/deps/libquake_memsim-64af0f22681a2533.rlib: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

/root/repo/target/debug/deps/libquake_memsim-64af0f22681a2533.rmeta: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/stride.rs:
crates/memsim/src/trace.rs:
