/root/repo/target/debug/deps/quake_repro-dd670ef34f03aa1b.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/quake_repro-dd670ef34f03aa1b: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
