/root/repo/target/debug/deps/bench_models-a7d54450ebf3f504.d: crates/bench/benches/bench_models.rs Cargo.toml

/root/repo/target/debug/deps/libbench_models-a7d54450ebf3f504.rmeta: crates/bench/benches/bench_models.rs Cargo.toml

crates/bench/benches/bench_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
