/root/repo/target/debug/deps/tab_sustained_tf-f25a6586af90b392.d: crates/bench/src/bin/tab_sustained_tf.rs

/root/repo/target/debug/deps/tab_sustained_tf-f25a6586af90b392: crates/bench/src/bin/tab_sustained_tf.rs

crates/bench/src/bin/tab_sustained_tf.rs:
