/root/repo/target/debug/deps/fig09_pe_bandwidth-439b50119bad0520.d: crates/bench/src/bin/fig09_pe_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_pe_bandwidth-439b50119bad0520.rmeta: crates/bench/src/bin/fig09_pe_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig09_pe_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
