/root/repo/target/debug/deps/fig07_smvp_properties-e7d80bbed3a02979.d: crates/bench/src/bin/fig07_smvp_properties.rs

/root/repo/target/debug/deps/fig07_smvp_properties-e7d80bbed3a02979: crates/bench/src/bin/fig07_smvp_properties.rs

crates/bench/src/bin/fig07_smvp_properties.rs:
