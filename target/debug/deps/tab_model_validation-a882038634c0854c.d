/root/repo/target/debug/deps/tab_model_validation-a882038634c0854c.d: crates/bench/src/bin/tab_model_validation.rs

/root/repo/target/debug/deps/tab_model_validation-a882038634c0854c: crates/bench/src/bin/tab_model_validation.rs

crates/bench/src/bin/tab_model_validation.rs:
