/root/repo/target/debug/deps/fig10_tradeoff_curves-756deca8ed5f4b4a.d: crates/bench/src/bin/fig10_tradeoff_curves.rs

/root/repo/target/debug/deps/fig10_tradeoff_curves-756deca8ed5f4b4a: crates/bench/src/bin/fig10_tradeoff_curves.rs

crates/bench/src/bin/fig10_tradeoff_curves.rs:
