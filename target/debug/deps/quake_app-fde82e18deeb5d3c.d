/root/repo/target/debug/deps/quake_app-fde82e18deeb5d3c.d: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/debug/deps/quake_app-fde82e18deeb5d3c: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

crates/app/src/lib.rs:
crates/app/src/characterize.rs:
crates/app/src/distributed.rs:
crates/app/src/executor.rs:
crates/app/src/family.rs:
crates/app/src/report.rs:
crates/app/src/scaling.rs:
