/root/repo/target/debug/deps/fig02_mesh_sizes-1cbcd6867013d420.d: crates/bench/src/bin/fig02_mesh_sizes.rs

/root/repo/target/debug/deps/fig02_mesh_sizes-1cbcd6867013d420: crates/bench/src/bin/fig02_mesh_sizes.rs

crates/bench/src/bin/fig02_mesh_sizes.rs:
