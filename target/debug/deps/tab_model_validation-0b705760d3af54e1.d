/root/repo/target/debug/deps/tab_model_validation-0b705760d3af54e1.d: crates/bench/src/bin/tab_model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libtab_model_validation-0b705760d3af54e1.rmeta: crates/bench/src/bin/tab_model_validation.rs Cargo.toml

crates/bench/src/bin/tab_model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
