/root/repo/target/debug/deps/bench_smvp-b33d48756aa207bc.d: crates/bench/src/bin/bench_smvp.rs

/root/repo/target/debug/deps/bench_smvp-b33d48756aa207bc: crates/bench/src/bin/bench_smvp.rs

crates/bench/src/bin/bench_smvp.rs:
