/root/repo/target/debug/deps/quake_repro-51c5210f9635c46e.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libquake_repro-51c5210f9635c46e.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
