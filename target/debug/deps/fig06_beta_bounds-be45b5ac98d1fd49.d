/root/repo/target/debug/deps/fig06_beta_bounds-be45b5ac98d1fd49.d: crates/bench/src/bin/fig06_beta_bounds.rs

/root/repo/target/debug/deps/fig06_beta_bounds-be45b5ac98d1fd49: crates/bench/src/bin/fig06_beta_bounds.rs

crates/bench/src/bin/fig06_beta_bounds.rs:
