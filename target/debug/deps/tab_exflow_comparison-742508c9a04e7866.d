/root/repo/target/debug/deps/tab_exflow_comparison-742508c9a04e7866.d: crates/bench/src/bin/tab_exflow_comparison.rs

/root/repo/target/debug/deps/tab_exflow_comparison-742508c9a04e7866: crates/bench/src/bin/tab_exflow_comparison.rs

crates/bench/src/bin/tab_exflow_comparison.rs:
