/root/repo/target/debug/deps/fig10_tradeoff_curves-c17d4380bd445bd0.d: crates/bench/src/bin/fig10_tradeoff_curves.rs

/root/repo/target/debug/deps/fig10_tradeoff_curves-c17d4380bd445bd0: crates/bench/src/bin/fig10_tradeoff_curves.rs

crates/bench/src/bin/fig10_tradeoff_curves.rs:
