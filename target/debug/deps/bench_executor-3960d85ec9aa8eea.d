/root/repo/target/debug/deps/bench_executor-3960d85ec9aa8eea.d: crates/bench/benches/bench_executor.rs

/root/repo/target/debug/deps/bench_executor-3960d85ec9aa8eea: crates/bench/benches/bench_executor.rs

crates/bench/benches/bench_executor.rs:
