/root/repo/target/debug/deps/bench_smvp_kernels-f07a00bb30dc4805.d: crates/bench/benches/bench_smvp_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libbench_smvp_kernels-f07a00bb30dc4805.rmeta: crates/bench/benches/bench_smvp_kernels.rs Cargo.toml

crates/bench/benches/bench_smvp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
