/root/repo/target/debug/deps/quake_fem-406e4a054ebc2bef.d: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/debug/deps/libquake_fem-406e4a054ebc2bef.rlib: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/debug/deps/libquake_fem-406e4a054ebc2bef.rmeta: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

crates/fem/src/lib.rs:
crates/fem/src/assembly.rs:
crates/fem/src/elasticity.rs:
crates/fem/src/source.rs:
crates/fem/src/timestep.rs:
