/root/repo/target/debug/deps/quake_fem-682e13798cc96b86.d: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/debug/deps/quake_fem-682e13798cc96b86: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

crates/fem/src/lib.rs:
crates/fem/src/assembly.rs:
crates/fem/src/elasticity.rs:
crates/fem/src/source.rs:
crates/fem/src/timestep.rs:
