/root/repo/target/debug/deps/fig08_bisection_bandwidth-1a560a851ef2c0c6.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

/root/repo/target/debug/deps/fig08_bisection_bandwidth-1a560a851ef2c0c6: crates/bench/src/bin/fig08_bisection_bandwidth.rs

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
