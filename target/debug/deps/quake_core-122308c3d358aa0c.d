/root/repo/target/debug/deps/quake_core-122308c3d358aa0c.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/machine.rs crates/core/src/model/mod.rs crates/core/src/model/beta.rs crates/core/src/model/bisection.rs crates/core/src/model/eq1.rs crates/core/src/model/eq2.rs crates/core/src/model/logp.rs crates/core/src/model/overlap.rs crates/core/src/model/scaling_law.rs crates/core/src/model/validate.rs crates/core/src/paperdata.rs crates/core/src/requirements.rs Cargo.toml

/root/repo/target/debug/deps/libquake_core-122308c3d358aa0c.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/machine.rs crates/core/src/model/mod.rs crates/core/src/model/beta.rs crates/core/src/model/bisection.rs crates/core/src/model/eq1.rs crates/core/src/model/eq2.rs crates/core/src/model/logp.rs crates/core/src/model/overlap.rs crates/core/src/model/scaling_law.rs crates/core/src/model/validate.rs crates/core/src/paperdata.rs crates/core/src/requirements.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/machine.rs:
crates/core/src/model/mod.rs:
crates/core/src/model/beta.rs:
crates/core/src/model/bisection.rs:
crates/core/src/model/eq1.rs:
crates/core/src/model/eq2.rs:
crates/core/src/model/logp.rs:
crates/core/src/model/overlap.rs:
crates/core/src/model/scaling_law.rs:
crates/core/src/model/validate.rs:
crates/core/src/paperdata.rs:
crates/core/src/requirements.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
