/root/repo/target/debug/deps/quake_app-d34d9012c0181be4.d: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libquake_app-d34d9012c0181be4.rmeta: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs Cargo.toml

crates/app/src/lib.rs:
crates/app/src/characterize.rs:
crates/app/src/distributed.rs:
crates/app/src/executor.rs:
crates/app/src/family.rs:
crates/app/src/report.rs:
crates/app/src/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
