/root/repo/target/debug/deps/tab_efficiency_surface-40279ef1938988aa.d: crates/bench/src/bin/tab_efficiency_surface.rs

/root/repo/target/debug/deps/tab_efficiency_surface-40279ef1938988aa: crates/bench/src/bin/tab_efficiency_surface.rs

crates/bench/src/bin/tab_efficiency_surface.rs:
