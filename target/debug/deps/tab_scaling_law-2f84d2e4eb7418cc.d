/root/repo/target/debug/deps/tab_scaling_law-2f84d2e4eb7418cc.d: crates/bench/src/bin/tab_scaling_law.rs

/root/repo/target/debug/deps/tab_scaling_law-2f84d2e4eb7418cc: crates/bench/src/bin/tab_scaling_law.rs

crates/bench/src/bin/tab_scaling_law.rs:
