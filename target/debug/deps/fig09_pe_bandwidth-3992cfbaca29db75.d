/root/repo/target/debug/deps/fig09_pe_bandwidth-3992cfbaca29db75.d: crates/bench/src/bin/fig09_pe_bandwidth.rs

/root/repo/target/debug/deps/fig09_pe_bandwidth-3992cfbaca29db75: crates/bench/src/bin/fig09_pe_bandwidth.rs

crates/bench/src/bin/fig09_pe_bandwidth.rs:
