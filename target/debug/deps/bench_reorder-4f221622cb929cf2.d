/root/repo/target/debug/deps/bench_reorder-4f221622cb929cf2.d: crates/bench/benches/bench_reorder.rs

/root/repo/target/debug/deps/bench_reorder-4f221622cb929cf2: crates/bench/benches/bench_reorder.rs

crates/bench/benches/bench_reorder.rs:
