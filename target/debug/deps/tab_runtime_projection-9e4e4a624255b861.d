/root/repo/target/debug/deps/tab_runtime_projection-9e4e4a624255b861.d: crates/bench/src/bin/tab_runtime_projection.rs

/root/repo/target/debug/deps/tab_runtime_projection-9e4e4a624255b861: crates/bench/src/bin/tab_runtime_projection.rs

crates/bench/src/bin/tab_runtime_projection.rs:
