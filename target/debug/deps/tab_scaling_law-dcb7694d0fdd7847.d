/root/repo/target/debug/deps/tab_scaling_law-dcb7694d0fdd7847.d: crates/bench/src/bin/tab_scaling_law.rs

/root/repo/target/debug/deps/tab_scaling_law-dcb7694d0fdd7847: crates/bench/src/bin/tab_scaling_law.rs

crates/bench/src/bin/tab_scaling_law.rs:
