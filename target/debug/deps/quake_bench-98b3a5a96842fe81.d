/root/repo/target/debug/deps/quake_bench-98b3a5a96842fe81.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/libquake_bench-98b3a5a96842fe81.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/libquake_bench-98b3a5a96842fe81.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/json.rs:
