/root/repo/target/debug/deps/model_consistency-d3655e94caf93fc0.d: tests/model_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_consistency-d3655e94caf93fc0.rmeta: tests/model_consistency.rs Cargo.toml

tests/model_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
