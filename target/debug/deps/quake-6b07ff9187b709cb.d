/root/repo/target/debug/deps/quake-6b07ff9187b709cb.d: src/main.rs

/root/repo/target/debug/deps/quake-6b07ff9187b709cb: src/main.rs

src/main.rs:
