/root/repo/target/debug/deps/golden_figures-2384bcd2ad2b36ee.d: crates/bench/tests/golden_figures.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_figures-2384bcd2ad2b36ee.rmeta: crates/bench/tests/golden_figures.rs Cargo.toml

crates/bench/tests/golden_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
