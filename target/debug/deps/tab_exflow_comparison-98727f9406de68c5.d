/root/repo/target/debug/deps/tab_exflow_comparison-98727f9406de68c5.d: crates/bench/src/bin/tab_exflow_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtab_exflow_comparison-98727f9406de68c5.rmeta: crates/bench/src/bin/tab_exflow_comparison.rs Cargo.toml

crates/bench/src/bin/tab_exflow_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
