/root/repo/target/debug/deps/tab_partitioner_ablation-6af4c51e0e1e52d0.d: crates/bench/src/bin/tab_partitioner_ablation.rs

/root/repo/target/debug/deps/tab_partitioner_ablation-6af4c51e0e1e52d0: crates/bench/src/bin/tab_partitioner_ablation.rs

crates/bench/src/bin/tab_partitioner_ablation.rs:
