/root/repo/target/debug/deps/tab_model_validation-92bc7cd673f52e1a.d: crates/bench/src/bin/tab_model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libtab_model_validation-92bc7cd673f52e1a.rmeta: crates/bench/src/bin/tab_model_validation.rs Cargo.toml

crates/bench/src/bin/tab_model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
