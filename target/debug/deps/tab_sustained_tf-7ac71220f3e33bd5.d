/root/repo/target/debug/deps/tab_sustained_tf-7ac71220f3e33bd5.d: crates/bench/src/bin/tab_sustained_tf.rs

/root/repo/target/debug/deps/tab_sustained_tf-7ac71220f3e33bd5: crates/bench/src/bin/tab_sustained_tf.rs

crates/bench/src/bin/tab_sustained_tf.rs:
