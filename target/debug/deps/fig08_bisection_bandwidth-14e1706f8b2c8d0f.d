/root/repo/target/debug/deps/fig08_bisection_bandwidth-14e1706f8b2c8d0f.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

/root/repo/target/debug/deps/fig08_bisection_bandwidth-14e1706f8b2c8d0f: crates/bench/src/bin/fig08_bisection_bandwidth.rs

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
