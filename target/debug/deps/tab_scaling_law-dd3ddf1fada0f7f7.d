/root/repo/target/debug/deps/tab_scaling_law-dd3ddf1fada0f7f7.d: crates/bench/src/bin/tab_scaling_law.rs

/root/repo/target/debug/deps/tab_scaling_law-dd3ddf1fada0f7f7: crates/bench/src/bin/tab_scaling_law.rs

crates/bench/src/bin/tab_scaling_law.rs:
