/root/repo/target/debug/deps/quake_partition-33547b6b908a3a8e.d: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

/root/repo/target/debug/deps/libquake_partition-33547b6b908a3a8e.rlib: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

/root/repo/target/debug/deps/libquake_partition-33547b6b908a3a8e.rmeta: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

crates/partition/src/lib.rs:
crates/partition/src/comm.rs:
crates/partition/src/geometric.rs:
crates/partition/src/metrics.rs:
crates/partition/src/partition.rs:
crates/partition/src/refine.rs:
crates/partition/src/sfc.rs:
crates/partition/src/spectral.rs:
