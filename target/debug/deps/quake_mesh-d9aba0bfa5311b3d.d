/root/repo/target/debug/deps/quake_mesh-d9aba0bfa5311b3d.d: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

/root/repo/target/debug/deps/quake_mesh-d9aba0bfa5311b3d: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

crates/mesh/src/lib.rs:
crates/mesh/src/boundary.rs:
crates/mesh/src/delaunay.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/geometry.rs:
crates/mesh/src/ground.rs:
crates/mesh/src/io.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/refine.rs:
crates/mesh/src/sampling.rs:
