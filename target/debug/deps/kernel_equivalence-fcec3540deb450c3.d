/root/repo/target/debug/deps/kernel_equivalence-fcec3540deb450c3.d: crates/spark/tests/kernel_equivalence.rs

/root/repo/target/debug/deps/kernel_equivalence-fcec3540deb450c3: crates/spark/tests/kernel_equivalence.rs

crates/spark/tests/kernel_equivalence.rs:
