/root/repo/target/debug/deps/fig06_beta_bounds-e0fb5d3e4fdc0185.d: crates/bench/src/bin/fig06_beta_bounds.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_beta_bounds-e0fb5d3e4fdc0185.rmeta: crates/bench/src/bin/fig06_beta_bounds.rs Cargo.toml

crates/bench/src/bin/fig06_beta_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
