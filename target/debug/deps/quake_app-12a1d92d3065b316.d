/root/repo/target/debug/deps/quake_app-12a1d92d3065b316.d: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/debug/deps/quake_app-12a1d92d3065b316: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

crates/app/src/lib.rs:
crates/app/src/characterize.rs:
crates/app/src/distributed.rs:
crates/app/src/executor.rs:
crates/app/src/family.rs:
crates/app/src/report.rs:
crates/app/src/scaling.rs:
