/root/repo/target/debug/deps/fig08_bisection_bandwidth-eff70d480611d812.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_bisection_bandwidth-eff70d480611d812.rmeta: crates/bench/src/bin/fig08_bisection_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
