/root/repo/target/debug/deps/fig07_smvp_properties-44a35935821da3cc.d: crates/bench/src/bin/fig07_smvp_properties.rs

/root/repo/target/debug/deps/fig07_smvp_properties-44a35935821da3cc: crates/bench/src/bin/fig07_smvp_properties.rs

crates/bench/src/bin/fig07_smvp_properties.rs:
