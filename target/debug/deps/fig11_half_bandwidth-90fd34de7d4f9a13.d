/root/repo/target/debug/deps/fig11_half_bandwidth-90fd34de7d4f9a13.d: crates/bench/src/bin/fig11_half_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_half_bandwidth-90fd34de7d4f9a13.rmeta: crates/bench/src/bin/fig11_half_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig11_half_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
