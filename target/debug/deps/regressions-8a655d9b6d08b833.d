/root/repo/target/debug/deps/regressions-8a655d9b6d08b833.d: tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-8a655d9b6d08b833.rmeta: tests/regressions.rs Cargo.toml

tests/regressions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
