/root/repo/target/debug/deps/tab_efficiency_surface-1c385975a0143b1e.d: crates/bench/src/bin/tab_efficiency_surface.rs

/root/repo/target/debug/deps/tab_efficiency_surface-1c385975a0143b1e: crates/bench/src/bin/tab_efficiency_surface.rs

crates/bench/src/bin/tab_efficiency_surface.rs:
