/root/repo/target/debug/deps/quake_spark-09ebfb6b572b13b2.d: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

/root/repo/target/debug/deps/quake_spark-09ebfb6b572b13b2: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs

crates/spark/src/lib.rs:
crates/spark/src/kernels.rs:
crates/spark/src/pool.rs:
crates/spark/src/workspace.rs:
