/root/repo/target/debug/deps/quake_partition-63c731a9f79f8833.d: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs Cargo.toml

/root/repo/target/debug/deps/libquake_partition-63c731a9f79f8833.rmeta: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/comm.rs:
crates/partition/src/geometric.rs:
crates/partition/src/metrics.rs:
crates/partition/src/partition.rs:
crates/partition/src/refine.rs:
crates/partition/src/sfc.rs:
crates/partition/src/spectral.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
