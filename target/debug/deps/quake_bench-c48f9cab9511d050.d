/root/repo/target/debug/deps/quake_bench-c48f9cab9511d050.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libquake_bench-c48f9cab9511d050.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/json.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
