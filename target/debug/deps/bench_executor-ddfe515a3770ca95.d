/root/repo/target/debug/deps/bench_executor-ddfe515a3770ca95.d: crates/bench/benches/bench_executor.rs Cargo.toml

/root/repo/target/debug/deps/libbench_executor-ddfe515a3770ca95.rmeta: crates/bench/benches/bench_executor.rs Cargo.toml

crates/bench/benches/bench_executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
