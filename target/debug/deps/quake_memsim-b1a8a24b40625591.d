/root/repo/target/debug/deps/quake_memsim-b1a8a24b40625591.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libquake_memsim-b1a8a24b40625591.rmeta: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs Cargo.toml

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/stride.rs:
crates/memsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
