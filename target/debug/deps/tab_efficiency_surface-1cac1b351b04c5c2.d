/root/repo/target/debug/deps/tab_efficiency_surface-1cac1b351b04c5c2.d: crates/bench/src/bin/tab_efficiency_surface.rs

/root/repo/target/debug/deps/tab_efficiency_surface-1cac1b351b04c5c2: crates/bench/src/bin/tab_efficiency_surface.rs

crates/bench/src/bin/tab_efficiency_surface.rs:
