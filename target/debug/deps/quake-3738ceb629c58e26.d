/root/repo/target/debug/deps/quake-3738ceb629c58e26.d: src/main.rs

/root/repo/target/debug/deps/quake-3738ceb629c58e26: src/main.rs

src/main.rs:
