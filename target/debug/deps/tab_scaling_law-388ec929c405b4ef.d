/root/repo/target/debug/deps/tab_scaling_law-388ec929c405b4ef.d: crates/bench/src/bin/tab_scaling_law.rs Cargo.toml

/root/repo/target/debug/deps/libtab_scaling_law-388ec929c405b4ef.rmeta: crates/bench/src/bin/tab_scaling_law.rs Cargo.toml

crates/bench/src/bin/tab_scaling_law.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
