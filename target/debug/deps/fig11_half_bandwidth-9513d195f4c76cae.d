/root/repo/target/debug/deps/fig11_half_bandwidth-9513d195f4c76cae.d: crates/bench/src/bin/fig11_half_bandwidth.rs

/root/repo/target/debug/deps/fig11_half_bandwidth-9513d195f4c76cae: crates/bench/src/bin/fig11_half_bandwidth.rs

crates/bench/src/bin/fig11_half_bandwidth.rs:
