/root/repo/target/debug/deps/quake_fem-b53f56c635d4177f.d: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs Cargo.toml

/root/repo/target/debug/deps/libquake_fem-b53f56c635d4177f.rmeta: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs Cargo.toml

crates/fem/src/lib.rs:
crates/fem/src/assembly.rs:
crates/fem/src/elasticity.rs:
crates/fem/src/source.rs:
crates/fem/src/timestep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
