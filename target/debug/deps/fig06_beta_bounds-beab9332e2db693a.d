/root/repo/target/debug/deps/fig06_beta_bounds-beab9332e2db693a.d: crates/bench/src/bin/fig06_beta_bounds.rs

/root/repo/target/debug/deps/fig06_beta_bounds-beab9332e2db693a: crates/bench/src/bin/fig06_beta_bounds.rs

crates/bench/src/bin/fig06_beta_bounds.rs:
