/root/repo/target/debug/deps/bench_spark-c69f3eeb603c266c.d: crates/bench/benches/bench_spark.rs Cargo.toml

/root/repo/target/debug/deps/libbench_spark-c69f3eeb603c266c.rmeta: crates/bench/benches/bench_spark.rs Cargo.toml

crates/bench/benches/bench_spark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
