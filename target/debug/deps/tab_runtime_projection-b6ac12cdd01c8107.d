/root/repo/target/debug/deps/tab_runtime_projection-b6ac12cdd01c8107.d: crates/bench/src/bin/tab_runtime_projection.rs

/root/repo/target/debug/deps/tab_runtime_projection-b6ac12cdd01c8107: crates/bench/src/bin/tab_runtime_projection.rs

crates/bench/src/bin/tab_runtime_projection.rs:
