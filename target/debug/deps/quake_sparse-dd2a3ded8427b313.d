/root/repo/target/debug/deps/quake_sparse-dd2a3ded8427b313.d: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/pattern.rs crates/sparse/src/reorder.rs crates/sparse/src/sym.rs Cargo.toml

/root/repo/target/debug/deps/libquake_sparse-dd2a3ded8427b313.rmeta: crates/sparse/src/lib.rs crates/sparse/src/bcsr.rs crates/sparse/src/coo.rs crates/sparse/src/csr.rs crates/sparse/src/dense.rs crates/sparse/src/error.rs crates/sparse/src/pattern.rs crates/sparse/src/reorder.rs crates/sparse/src/sym.rs Cargo.toml

crates/sparse/src/lib.rs:
crates/sparse/src/bcsr.rs:
crates/sparse/src/coo.rs:
crates/sparse/src/csr.rs:
crates/sparse/src/dense.rs:
crates/sparse/src/error.rs:
crates/sparse/src/pattern.rs:
crates/sparse/src/reorder.rs:
crates/sparse/src/sym.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
