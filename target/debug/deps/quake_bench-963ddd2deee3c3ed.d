/root/repo/target/debug/deps/quake_bench-963ddd2deee3c3ed.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libquake_bench-963ddd2deee3c3ed.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libquake_bench-963ddd2deee3c3ed.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
