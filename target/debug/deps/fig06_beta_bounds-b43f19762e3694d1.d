/root/repo/target/debug/deps/fig06_beta_bounds-b43f19762e3694d1.d: crates/bench/src/bin/fig06_beta_bounds.rs

/root/repo/target/debug/deps/fig06_beta_bounds-b43f19762e3694d1: crates/bench/src/bin/fig06_beta_bounds.rs

crates/bench/src/bin/fig06_beta_bounds.rs:
