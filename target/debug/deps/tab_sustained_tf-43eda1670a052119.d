/root/repo/target/debug/deps/tab_sustained_tf-43eda1670a052119.d: crates/bench/src/bin/tab_sustained_tf.rs

/root/repo/target/debug/deps/tab_sustained_tf-43eda1670a052119: crates/bench/src/bin/tab_sustained_tf.rs

crates/bench/src/bin/tab_sustained_tf.rs:
