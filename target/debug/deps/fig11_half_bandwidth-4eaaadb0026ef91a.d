/root/repo/target/debug/deps/fig11_half_bandwidth-4eaaadb0026ef91a.d: crates/bench/src/bin/fig11_half_bandwidth.rs

/root/repo/target/debug/deps/fig11_half_bandwidth-4eaaadb0026ef91a: crates/bench/src/bin/fig11_half_bandwidth.rs

crates/bench/src/bin/fig11_half_bandwidth.rs:
