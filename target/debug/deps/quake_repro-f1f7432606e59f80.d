/root/repo/target/debug/deps/quake_repro-f1f7432606e59f80.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libquake_repro-f1f7432606e59f80.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libquake_repro-f1f7432606e59f80.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
