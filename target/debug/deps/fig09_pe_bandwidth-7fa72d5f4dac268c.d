/root/repo/target/debug/deps/fig09_pe_bandwidth-7fa72d5f4dac268c.d: crates/bench/src/bin/fig09_pe_bandwidth.rs

/root/repo/target/debug/deps/fig09_pe_bandwidth-7fa72d5f4dac268c: crates/bench/src/bin/fig09_pe_bandwidth.rs

crates/bench/src/bin/fig09_pe_bandwidth.rs:
