/root/repo/target/debug/deps/fig10_tradeoff_curves-02828aa2bd42cc29.d: crates/bench/src/bin/fig10_tradeoff_curves.rs

/root/repo/target/debug/deps/fig10_tradeoff_curves-02828aa2bd42cc29: crates/bench/src/bin/fig10_tradeoff_curves.rs

crates/bench/src/bin/fig10_tradeoff_curves.rs:
