/root/repo/target/debug/deps/quake-5fd47e49f3424e00.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libquake-5fd47e49f3424e00.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
