/root/repo/target/debug/deps/quake-9a8d8012fb60cc33.d: src/main.rs

/root/repo/target/debug/deps/quake-9a8d8012fb60cc33: src/main.rs

src/main.rs:
