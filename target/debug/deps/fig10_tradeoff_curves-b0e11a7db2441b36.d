/root/repo/target/debug/deps/fig10_tradeoff_curves-b0e11a7db2441b36.d: crates/bench/src/bin/fig10_tradeoff_curves.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_tradeoff_curves-b0e11a7db2441b36.rmeta: crates/bench/src/bin/fig10_tradeoff_curves.rs Cargo.toml

crates/bench/src/bin/fig10_tradeoff_curves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
