/root/repo/target/debug/deps/quake_repro-f6fad4778e69f22b.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libquake_repro-f6fad4778e69f22b.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
