/root/repo/target/debug/deps/quake-7624e5691fb881c0.d: src/main.rs

/root/repo/target/debug/deps/quake-7624e5691fb881c0: src/main.rs

src/main.rs:
