/root/repo/target/debug/deps/quake_netsim-b0bf66a18d9eb8de.d: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/libquake_netsim-b0bf66a18d9eb8de.rlib: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/libquake_netsim-b0bf66a18d9eb8de.rmeta: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/simulate.rs:
crates/netsim/src/sweep.rs:
crates/netsim/src/validate.rs:
crates/netsim/src/workload.rs:
