/root/repo/target/debug/deps/quake_netsim-43fabede10c48d69.d: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

/root/repo/target/debug/deps/quake_netsim-43fabede10c48d69: crates/netsim/src/lib.rs crates/netsim/src/simulate.rs crates/netsim/src/sweep.rs crates/netsim/src/validate.rs crates/netsim/src/workload.rs

crates/netsim/src/lib.rs:
crates/netsim/src/simulate.rs:
crates/netsim/src/sweep.rs:
crates/netsim/src/validate.rs:
crates/netsim/src/workload.rs:
