/root/repo/target/debug/deps/bench_smvp_kernels-29f032f8be5485fe.d: crates/bench/benches/bench_smvp_kernels.rs

/root/repo/target/debug/deps/bench_smvp_kernels-29f032f8be5485fe: crates/bench/benches/bench_smvp_kernels.rs

crates/bench/benches/bench_smvp_kernels.rs:
