/root/repo/target/debug/deps/regressions-936ed2422e516267.d: tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-936ed2422e516267.rmeta: tests/regressions.rs Cargo.toml

tests/regressions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
