/root/repo/target/debug/deps/quake_bench-90f9aaec6a3dda60.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/quake_bench-90f9aaec6a3dda60: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
