/root/repo/target/debug/deps/fig11_half_bandwidth-5d8e4dda4997a2fe.d: crates/bench/src/bin/fig11_half_bandwidth.rs

/root/repo/target/debug/deps/fig11_half_bandwidth-5d8e4dda4997a2fe: crates/bench/src/bin/fig11_half_bandwidth.rs

crates/bench/src/bin/fig11_half_bandwidth.rs:
