/root/repo/target/debug/deps/regressions-d08ec53e10a000fa.d: tests/regressions.rs

/root/repo/target/debug/deps/regressions-d08ec53e10a000fa: tests/regressions.rs

tests/regressions.rs:
