/root/repo/target/debug/deps/mesh_pipeline-c5e783f0f5c6346b.d: tests/mesh_pipeline.rs

/root/repo/target/debug/deps/mesh_pipeline-c5e783f0f5c6346b: tests/mesh_pipeline.rs

tests/mesh_pipeline.rs:
