/root/repo/target/debug/deps/bench_smvp-89bc5b9bb75a283b.d: crates/bench/src/bin/bench_smvp.rs

/root/repo/target/debug/deps/bench_smvp-89bc5b9bb75a283b: crates/bench/src/bin/bench_smvp.rs

crates/bench/src/bin/bench_smvp.rs:
