/root/repo/target/debug/deps/quake_spark-d946bb51e7f20a40.d: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs Cargo.toml

/root/repo/target/debug/deps/libquake_spark-d946bb51e7f20a40.rmeta: crates/spark/src/lib.rs crates/spark/src/kernels.rs crates/spark/src/pool.rs crates/spark/src/workspace.rs Cargo.toml

crates/spark/src/lib.rs:
crates/spark/src/kernels.rs:
crates/spark/src/pool.rs:
crates/spark/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
