/root/repo/target/debug/deps/quake_app-d3180b4b28aef389.d: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/debug/deps/libquake_app-d3180b4b28aef389.rlib: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/debug/deps/libquake_app-d3180b4b28aef389.rmeta: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

crates/app/src/lib.rs:
crates/app/src/characterize.rs:
crates/app/src/distributed.rs:
crates/app/src/executor.rs:
crates/app/src/family.rs:
crates/app/src/report.rs:
crates/app/src/scaling.rs:
