/root/repo/target/debug/deps/tab_efficiency_surface-4455c2d9084f188f.d: crates/bench/src/bin/tab_efficiency_surface.rs

/root/repo/target/debug/deps/tab_efficiency_surface-4455c2d9084f188f: crates/bench/src/bin/tab_efficiency_surface.rs

crates/bench/src/bin/tab_efficiency_surface.rs:
