/root/repo/target/debug/deps/tab_exflow_comparison-e2984a9a4fe94fb7.d: crates/bench/src/bin/tab_exflow_comparison.rs

/root/repo/target/debug/deps/tab_exflow_comparison-e2984a9a4fe94fb7: crates/bench/src/bin/tab_exflow_comparison.rs

crates/bench/src/bin/tab_exflow_comparison.rs:
