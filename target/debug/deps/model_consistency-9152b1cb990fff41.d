/root/repo/target/debug/deps/model_consistency-9152b1cb990fff41.d: tests/model_consistency.rs

/root/repo/target/debug/deps/model_consistency-9152b1cb990fff41: tests/model_consistency.rs

tests/model_consistency.rs:
