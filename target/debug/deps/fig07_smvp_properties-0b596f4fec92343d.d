/root/repo/target/debug/deps/fig07_smvp_properties-0b596f4fec92343d.d: crates/bench/src/bin/fig07_smvp_properties.rs

/root/repo/target/debug/deps/fig07_smvp_properties-0b596f4fec92343d: crates/bench/src/bin/fig07_smvp_properties.rs

crates/bench/src/bin/fig07_smvp_properties.rs:
