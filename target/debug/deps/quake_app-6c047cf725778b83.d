/root/repo/target/debug/deps/quake_app-6c047cf725778b83.d: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/debug/deps/libquake_app-6c047cf725778b83.rlib: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

/root/repo/target/debug/deps/libquake_app-6c047cf725778b83.rmeta: crates/app/src/lib.rs crates/app/src/characterize.rs crates/app/src/distributed.rs crates/app/src/executor.rs crates/app/src/family.rs crates/app/src/report.rs crates/app/src/scaling.rs

crates/app/src/lib.rs:
crates/app/src/characterize.rs:
crates/app/src/distributed.rs:
crates/app/src/executor.rs:
crates/app/src/family.rs:
crates/app/src/report.rs:
crates/app/src/scaling.rs:
