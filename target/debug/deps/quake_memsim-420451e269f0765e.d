/root/repo/target/debug/deps/quake_memsim-420451e269f0765e.d: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

/root/repo/target/debug/deps/quake_memsim-420451e269f0765e: crates/memsim/src/lib.rs crates/memsim/src/cache.rs crates/memsim/src/hierarchy.rs crates/memsim/src/stride.rs crates/memsim/src/trace.rs

crates/memsim/src/lib.rs:
crates/memsim/src/cache.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/stride.rs:
crates/memsim/src/trace.rs:
