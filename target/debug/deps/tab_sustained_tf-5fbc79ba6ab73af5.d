/root/repo/target/debug/deps/tab_sustained_tf-5fbc79ba6ab73af5.d: crates/bench/src/bin/tab_sustained_tf.rs

/root/repo/target/debug/deps/tab_sustained_tf-5fbc79ba6ab73af5: crates/bench/src/bin/tab_sustained_tf.rs

crates/bench/src/bin/tab_sustained_tf.rs:
