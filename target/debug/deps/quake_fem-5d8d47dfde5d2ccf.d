/root/repo/target/debug/deps/quake_fem-5d8d47dfde5d2ccf.d: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/debug/deps/libquake_fem-5d8d47dfde5d2ccf.rlib: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

/root/repo/target/debug/deps/libquake_fem-5d8d47dfde5d2ccf.rmeta: crates/fem/src/lib.rs crates/fem/src/assembly.rs crates/fem/src/elasticity.rs crates/fem/src/source.rs crates/fem/src/timestep.rs

crates/fem/src/lib.rs:
crates/fem/src/assembly.rs:
crates/fem/src/elasticity.rs:
crates/fem/src/source.rs:
crates/fem/src/timestep.rs:
