/root/repo/target/debug/deps/mesh_pipeline-7f1671ebcffd8c1f.d: tests/mesh_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmesh_pipeline-7f1671ebcffd8c1f.rmeta: tests/mesh_pipeline.rs Cargo.toml

tests/mesh_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
