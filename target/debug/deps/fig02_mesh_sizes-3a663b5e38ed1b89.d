/root/repo/target/debug/deps/fig02_mesh_sizes-3a663b5e38ed1b89.d: crates/bench/src/bin/fig02_mesh_sizes.rs

/root/repo/target/debug/deps/fig02_mesh_sizes-3a663b5e38ed1b89: crates/bench/src/bin/fig02_mesh_sizes.rs

crates/bench/src/bin/fig02_mesh_sizes.rs:
