/root/repo/target/debug/deps/bench_spark-e927e4c686797848.d: crates/bench/benches/bench_spark.rs Cargo.toml

/root/repo/target/debug/deps/libbench_spark-e927e4c686797848.rmeta: crates/bench/benches/bench_spark.rs Cargo.toml

crates/bench/benches/bench_spark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
