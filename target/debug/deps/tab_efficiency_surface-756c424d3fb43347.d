/root/repo/target/debug/deps/tab_efficiency_surface-756c424d3fb43347.d: crates/bench/src/bin/tab_efficiency_surface.rs Cargo.toml

/root/repo/target/debug/deps/libtab_efficiency_surface-756c424d3fb43347.rmeta: crates/bench/src/bin/tab_efficiency_surface.rs Cargo.toml

crates/bench/src/bin/tab_efficiency_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
