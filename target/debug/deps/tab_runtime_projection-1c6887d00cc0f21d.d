/root/repo/target/debug/deps/tab_runtime_projection-1c6887d00cc0f21d.d: crates/bench/src/bin/tab_runtime_projection.rs Cargo.toml

/root/repo/target/debug/deps/libtab_runtime_projection-1c6887d00cc0f21d.rmeta: crates/bench/src/bin/tab_runtime_projection.rs Cargo.toml

crates/bench/src/bin/tab_runtime_projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
