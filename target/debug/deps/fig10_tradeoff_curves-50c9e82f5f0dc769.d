/root/repo/target/debug/deps/fig10_tradeoff_curves-50c9e82f5f0dc769.d: crates/bench/src/bin/fig10_tradeoff_curves.rs

/root/repo/target/debug/deps/fig10_tradeoff_curves-50c9e82f5f0dc769: crates/bench/src/bin/fig10_tradeoff_curves.rs

crates/bench/src/bin/fig10_tradeoff_curves.rs:
