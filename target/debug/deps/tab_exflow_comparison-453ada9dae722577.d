/root/repo/target/debug/deps/tab_exflow_comparison-453ada9dae722577.d: crates/bench/src/bin/tab_exflow_comparison.rs

/root/repo/target/debug/deps/tab_exflow_comparison-453ada9dae722577: crates/bench/src/bin/tab_exflow_comparison.rs

crates/bench/src/bin/tab_exflow_comparison.rs:
