/root/repo/target/debug/deps/quake_mesh-5d6e8c027974ea94.d: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

/root/repo/target/debug/deps/libquake_mesh-5d6e8c027974ea94.rlib: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

/root/repo/target/debug/deps/libquake_mesh-5d6e8c027974ea94.rmeta: crates/mesh/src/lib.rs crates/mesh/src/boundary.rs crates/mesh/src/delaunay.rs crates/mesh/src/generator.rs crates/mesh/src/geometry.rs crates/mesh/src/ground.rs crates/mesh/src/io.rs crates/mesh/src/mesh.rs crates/mesh/src/refine.rs crates/mesh/src/sampling.rs

crates/mesh/src/lib.rs:
crates/mesh/src/boundary.rs:
crates/mesh/src/delaunay.rs:
crates/mesh/src/generator.rs:
crates/mesh/src/geometry.rs:
crates/mesh/src/ground.rs:
crates/mesh/src/io.rs:
crates/mesh/src/mesh.rs:
crates/mesh/src/refine.rs:
crates/mesh/src/sampling.rs:
