/root/repo/target/debug/deps/fig08_bisection_bandwidth-3602d266c8800d7d.d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

/root/repo/target/debug/deps/fig08_bisection_bandwidth-3602d266c8800d7d: crates/bench/src/bin/fig08_bisection_bandwidth.rs

crates/bench/src/bin/fig08_bisection_bandwidth.rs:
