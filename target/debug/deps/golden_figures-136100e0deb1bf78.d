/root/repo/target/debug/deps/golden_figures-136100e0deb1bf78.d: crates/bench/tests/golden_figures.rs

/root/repo/target/debug/deps/golden_figures-136100e0deb1bf78: crates/bench/tests/golden_figures.rs

crates/bench/tests/golden_figures.rs:
