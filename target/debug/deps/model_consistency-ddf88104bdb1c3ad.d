/root/repo/target/debug/deps/model_consistency-ddf88104bdb1c3ad.d: tests/model_consistency.rs

/root/repo/target/debug/deps/model_consistency-ddf88104bdb1c3ad: tests/model_consistency.rs

tests/model_consistency.rs:
