/root/repo/target/debug/deps/quake_partition-e6fd3e497583ecfb.d: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

/root/repo/target/debug/deps/quake_partition-e6fd3e497583ecfb: crates/partition/src/lib.rs crates/partition/src/comm.rs crates/partition/src/geometric.rs crates/partition/src/metrics.rs crates/partition/src/partition.rs crates/partition/src/refine.rs crates/partition/src/sfc.rs crates/partition/src/spectral.rs

crates/partition/src/lib.rs:
crates/partition/src/comm.rs:
crates/partition/src/geometric.rs:
crates/partition/src/metrics.rs:
crates/partition/src/partition.rs:
crates/partition/src/refine.rs:
crates/partition/src/sfc.rs:
crates/partition/src/spectral.rs:
