/root/repo/target/debug/deps/properties-6a33724f7e8e218a.d: tests/properties.rs

/root/repo/target/debug/deps/properties-6a33724f7e8e218a: tests/properties.rs

tests/properties.rs:
