/root/repo/target/debug/deps/quake_bench-3cb3b13ce7f3e1f7.d: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libquake_bench-3cb3b13ce7f3e1f7.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
