/root/repo/target/debug/deps/fig07_smvp_properties-5d74bd1f441a94d9.d: crates/bench/src/bin/fig07_smvp_properties.rs

/root/repo/target/debug/deps/fig07_smvp_properties-5d74bd1f441a94d9: crates/bench/src/bin/fig07_smvp_properties.rs

crates/bench/src/bin/fig07_smvp_properties.rs:
