/root/repo/target/debug/deps/mesh_pipeline-aa8a8122600aae6e.d: tests/mesh_pipeline.rs

/root/repo/target/debug/deps/mesh_pipeline-aa8a8122600aae6e: tests/mesh_pipeline.rs

tests/mesh_pipeline.rs:
