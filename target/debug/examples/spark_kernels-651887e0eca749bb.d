/root/repo/target/debug/examples/spark_kernels-651887e0eca749bb.d: examples/spark_kernels.rs

/root/repo/target/debug/examples/spark_kernels-651887e0eca749bb: examples/spark_kernels.rs

examples/spark_kernels.rs:
