/root/repo/target/debug/examples/distributed_smvp-30e155cad1425de4.d: examples/distributed_smvp.rs

/root/repo/target/debug/examples/distributed_smvp-30e155cad1425de4: examples/distributed_smvp.rs

examples/distributed_smvp.rs:
