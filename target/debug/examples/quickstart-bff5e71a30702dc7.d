/root/repo/target/debug/examples/quickstart-bff5e71a30702dc7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bff5e71a30702dc7: examples/quickstart.rs

examples/quickstart.rs:
