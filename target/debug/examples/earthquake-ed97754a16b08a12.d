/root/repo/target/debug/examples/earthquake-ed97754a16b08a12.d: examples/earthquake.rs

/root/repo/target/debug/examples/earthquake-ed97754a16b08a12: examples/earthquake.rs

examples/earthquake.rs:
