/root/repo/target/debug/examples/design_space-f5162c2aeebe36e5.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-f5162c2aeebe36e5: examples/design_space.rs

examples/design_space.rs:
