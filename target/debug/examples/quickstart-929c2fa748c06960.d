/root/repo/target/debug/examples/quickstart-929c2fa748c06960.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-929c2fa748c06960: examples/quickstart.rs

examples/quickstart.rs:
