/root/repo/target/debug/examples/earthquake-e61ecbe129371e21.d: examples/earthquake.rs Cargo.toml

/root/repo/target/debug/examples/libearthquake-e61ecbe129371e21.rmeta: examples/earthquake.rs Cargo.toml

examples/earthquake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
