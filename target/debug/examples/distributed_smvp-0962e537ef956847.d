/root/repo/target/debug/examples/distributed_smvp-0962e537ef956847.d: examples/distributed_smvp.rs

/root/repo/target/debug/examples/distributed_smvp-0962e537ef956847: examples/distributed_smvp.rs

examples/distributed_smvp.rs:
