/root/repo/target/debug/examples/earthquake-7fa64bd42e02e94d.d: examples/earthquake.rs Cargo.toml

/root/repo/target/debug/examples/libearthquake-7fa64bd42e02e94d.rmeta: examples/earthquake.rs Cargo.toml

examples/earthquake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
