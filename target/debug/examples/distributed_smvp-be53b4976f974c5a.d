/root/repo/target/debug/examples/distributed_smvp-be53b4976f974c5a.d: examples/distributed_smvp.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_smvp-be53b4976f974c5a.rmeta: examples/distributed_smvp.rs Cargo.toml

examples/distributed_smvp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
