/root/repo/target/debug/examples/earthquake-57b0667503bc486e.d: examples/earthquake.rs

/root/repo/target/debug/examples/earthquake-57b0667503bc486e: examples/earthquake.rs

examples/earthquake.rs:
