/root/repo/target/debug/examples/distributed_smvp-ac50fe12d8790238.d: examples/distributed_smvp.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_smvp-ac50fe12d8790238.rmeta: examples/distributed_smvp.rs Cargo.toml

examples/distributed_smvp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
