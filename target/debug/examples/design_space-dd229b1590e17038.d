/root/repo/target/debug/examples/design_space-dd229b1590e17038.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-dd229b1590e17038: examples/design_space.rs

examples/design_space.rs:
