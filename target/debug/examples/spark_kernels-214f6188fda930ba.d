/root/repo/target/debug/examples/spark_kernels-214f6188fda930ba.d: examples/spark_kernels.rs Cargo.toml

/root/repo/target/debug/examples/libspark_kernels-214f6188fda930ba.rmeta: examples/spark_kernels.rs Cargo.toml

examples/spark_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
