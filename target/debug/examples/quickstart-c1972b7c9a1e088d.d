/root/repo/target/debug/examples/quickstart-c1972b7c9a1e088d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c1972b7c9a1e088d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
