/root/repo/target/debug/examples/spark_kernels-6b52e477c0f31679.d: examples/spark_kernels.rs

/root/repo/target/debug/examples/spark_kernels-6b52e477c0f31679: examples/spark_kernels.rs

examples/spark_kernels.rs:
