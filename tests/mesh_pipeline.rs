//! Integration: mesh persistence and quality refinement across crates —
//! a generated basin mesh survives text and binary round trips byte-exactly,
//! and Delaunay quality refinement composes with the FEM assembly.

use quake_app::family::{AppConfig, QuakeApp};
use quake_fem::assembly::{assemble, UniformMaterial};
use quake_mesh::boundary::Boundary;
use quake_mesh::ground::Material;
use quake_mesh::io;
use quake_mesh::refine::{refine_quality, QualityOptions};
use std::io::BufReader;

#[test]
fn generated_mesh_survives_text_round_trip() {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let mut buf = Vec::new();
    io::write_text(&app.mesh, &mut buf).expect("write");
    let back = io::read_text(BufReader::new(&buf[..])).expect("read");
    assert_eq!(back.node_count(), app.mesh.node_count());
    assert_eq!(back.elements(), app.mesh.elements());
    // Coordinates round-trip through decimal text exactly (Rust prints
    // shortest-round-trip floats).
    assert_eq!(back.nodes(), app.mesh.nodes());
}

#[test]
fn generated_mesh_survives_binary_round_trip_through_file() {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let bytes = io::to_bytes(&app.mesh);
    let path = std::env::temp_dir().join("quake_repro_roundtrip.qmb");
    std::fs::write(&path, &bytes).expect("write file");
    let raw = std::fs::read(&path).expect("read file");
    std::fs::remove_file(&path).ok();
    let back = io::from_bytes(raw.into()).expect("decode");
    assert_eq!(back, app.mesh);
}

#[test]
fn refined_mesh_still_assembles_and_has_closed_boundary() {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let domain = app.mesh.bounding_box().expect("non-empty");
    let options = QualityOptions {
        max_rounds: 2,
        ..QualityOptions::default()
    };
    let (refined, stats) = refine_quality(&app.mesh, domain, options).expect("refine");
    assert!(refined.node_count() >= app.mesh.node_count());
    // The refined mesh is still a valid solid: watertight boundary and a
    // positive-definite-enough system for assembly.
    let boundary = Boundary::extract(&refined);
    assert!(boundary.is_closed(), "refined mesh must stay watertight");
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let sys = assemble(&refined, &UniformMaterial(mat)).expect("assembly");
    assert_eq!(sys.stiffness.block_rows(), refined.node_count());
    assert!(sys.mass.iter().all(|&m| m > 0.0));
    // Stats are internally consistent.
    assert!(stats.rounds <= 2);
}
