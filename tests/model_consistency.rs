//! Integration: the models evaluated over the paper's published data must
//! reproduce the paper's headline numbers and internal consistencies.

use quake_core::machine::{BlockRegime, Network, Processor, WORD_BYTES};
use quake_core::model::eq1::{achieved_efficiency, required_sustained_bandwidth, required_tc};
use quake_core::model::eq2::{delivered_tc, half_bandwidth_point, latency_at_infinite_burst};
use quake_core::paperdata;
use quake_core::requirements::{
    half_bandwidth_series, sustained_bandwidth_series, tradeoff_curve, EFFICIENCIES,
};

#[test]
fn headline_sustained_bandwidths() {
    // §4.3: "On a system with 100-MFLOP PEs, maintaining a sustained rate of
    // 120 MBytes/sec per PE during the communication phase is sufficient to
    // run all instances of the sf2 SMVP at 90% efficiency" and "On systems
    // with 200-MFLOP PEs, a sustained PE bandwidth of about 300 MBytes/sec
    // will be required".
    let sf2 = paperdata::figure7_app("sf2");
    let worst_at = |pe: &Processor| {
        sf2.iter()
            .map(|i| required_sustained_bandwidth(i, 0.9, pe))
            .fold(0.0, f64::max)
    };
    let at100 = worst_at(&Processor::hypothetical_100mflops());
    let at200 = worst_at(&Processor::hypothetical_200mflops());
    assert!((120e6..160e6).contains(&at100), "{:.0} MB/s", at100 / 1e6);
    assert!((250e6..320e6).contains(&at200), "{:.0} MB/s", at200 / 1e6);
}

#[test]
fn network_of_workstations_case() {
    // §4.3: 80% efficiency on networks of workstations "demands sustained
    // per-PE bandwidths of about 100 MBytes/sec" (100-MFLOP PEs).
    let sf2 = paperdata::figure7_app("sf2");
    let worst = sf2
        .iter()
        .map(|i| required_sustained_bandwidth(i, 0.8, &Processor::hypothetical_100mflops()))
        .fold(0.0, f64::max);
    assert!((50e6..130e6).contains(&worst), "{:.0} MB/s", worst / 1e6);
}

#[test]
fn conclusion_burst_bandwidth_and_latency() {
    // §5: 200-MFLOP PEs with maximal blocks need ≈ 300 MB/s sustained,
    // ≈ 600 MB/s burst, and µs-scale block latency for 90% efficiency.
    let inst = paperdata::figure7_instance("sf2", 128).expect("row");
    let tc = required_tc(&inst, 0.9, Processor::hypothetical_200mflops().t_f);
    let hb = half_bandwidth_point(&inst, tc, BlockRegime::Maximal);
    let burst = hb.burst_bandwidth_bytes();
    assert!((450e6..700e6).contains(&burst), "{:.0} MB/s", burst / 1e6);
    assert!((1e-6..10e-6).contains(&hb.t_l), "{} s", hb.t_l);
    // Four-word blocks: tens of ns (§4.4 reads ≈ 70 ns off the plot).
    let fixed = half_bandwidth_point(&inst, tc, BlockRegime::CACHE_LINE);
    assert!((30e-9..100e-9).contains(&fixed.t_l), "{} s", fixed.t_l);
}

#[test]
fn section_4_4_infinite_burst_latency_reading() {
    // §4.4 (fixed 4-word blocks): "if burst bandwidth is infinite, then
    // observed block latency must not exceed 100 ns" at E = 0.9.
    let inst = paperdata::figure7_instance("sf2", 128).expect("row");
    let tc = required_tc(&inst, 0.9, Processor::hypothetical_200mflops().t_f);
    let bound = latency_at_infinite_burst(&inst, tc, BlockRegime::CACHE_LINE);
    assert!(
        (90e-9..130e-9).contains(&bound),
        "expected ≈ 100 ns, got {} ns",
        bound * 1e9
    );
}

#[test]
fn figure7_ratio_scaling_is_cube_root() {
    // §4.1: problem size ×10 → F/C_max ≈ ×2 (n^(1/3) scaling). Check
    // sf10 → sf2 (n × ~52) and sf5 → sf1 (n × ~82) at fixed p.
    for p in paperdata::SUBDOMAIN_COUNTS {
        let r10 = paperdata::figure7_instance("sf10", p)
            .expect("row")
            .comp_comm_ratio();
        let r2 = paperdata::figure7_instance("sf2", p)
            .expect("row")
            .comp_comm_ratio();
        let factor = r2 / r10;
        // n grows 52x; cube root is 3.7. Accept a generous band.
        assert!(
            (2.0..8.0).contains(&factor),
            "sfx growth at p={p}: {factor}"
        );
    }
}

#[test]
fn t3e_network_cannot_hold_90_percent_at_200mflops() {
    // The design-space argument: the measured T3E parameters fall short of
    // the future-machine requirement for the latency-bound instances.
    let inst = paperdata::figure7_instance("sf2", 128).expect("row");
    let pe = Processor::hypothetical_200mflops();
    let delivered = delivered_tc(&inst, &Network::cray_t3e(), BlockRegime::Maximal);
    let e = achieved_efficiency(&inst, delivered, pe.t_f);
    assert!(
        e < 0.9,
        "T3E-class comms should not sustain 90% on 200-MFLOP PEs (got {e:.3})"
    );
}

#[test]
fn tradeoff_curves_pass_through_half_bandwidth_points() {
    // Figure 10 and Figure 11 must be mutually consistent: the half-
    // bandwidth point lies on the corresponding tradeoff curve.
    let inst = paperdata::figure7_instance("sf2", 128).expect("row");
    let pe = Processor::hypothetical_200mflops();
    for regime in [BlockRegime::Maximal, BlockRegime::CACHE_LINE] {
        for &e in &EFFICIENCIES {
            let tc = required_tc(&inst, e, pe.t_f);
            let hb = half_bandwidth_point(&inst, tc, regime);
            let curve = tradeoff_curve(&inst, e, &pe, regime, &[hb.burst_bandwidth_bytes()]);
            assert_eq!(curve.points.len(), 1);
            let (_, t_l) = curve.points[0];
            assert!(
                (t_l - hb.t_l).abs() < 1e-9 * hb.t_l.max(1e-12),
                "curve latency {t_l} vs half-bandwidth {}",
                hb.t_l
            );
        }
    }
}

#[test]
fn figure9_and_figure11_consistent() {
    // The sustained bandwidth of Fig. 9 equals twice the half burst
    // bandwidth... no: T_c = 2·T_w at the half point, so burst = 2×
    // sustained. Verify across the full sweep.
    let sf2 = paperdata::figure7_app("sf2");
    let pes = [
        Processor::hypothetical_100mflops(),
        Processor::hypothetical_200mflops(),
    ];
    let fig9 = sustained_bandwidth_series(&sf2, &pes, &EFFICIENCIES);
    let fig11 = half_bandwidth_series(&sf2, &pes, &EFFICIENCIES, &[BlockRegime::Maximal]);
    assert_eq!(fig9.len(), fig11.len());
    for (p9, p11) in fig9.iter().zip(&fig11) {
        assert_eq!(p9.label, p11.label);
        let sustained = p9.bandwidth_bytes;
        let burst = p11.point.burst_bandwidth_bytes();
        assert!(
            (burst / sustained - 2.0).abs() < 1e-9,
            "burst must be twice sustained at the half point"
        );
        // Sanity: the sustained bandwidth in words matches 1/t_c.
        let tc = WORD_BYTES / sustained;
        assert!(tc > 0.0);
    }
}

#[test]
fn beta_table_shape_matches_paper() {
    // The published β values are all in [1, 1.15]; our bound promises [1, 2].
    for row in paperdata::FIGURE6_BETA {
        for b in row {
            assert!((1.0..=1.2).contains(&b));
        }
    }
}
