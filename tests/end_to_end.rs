//! Integration: the full pipeline — mesh generation → partitioning →
//! assembly → distributed SMVP → characterization → model → simulation —
//! exercised across crate boundaries.

use quake_app::characterize::AnalyzedInstance;
use quake_app::distributed::DistributedSystem;
use quake_app::family::{AppConfig, QuakeApp};
use quake_core::machine::{Network, Processor};
use quake_core::model::eq1::{achieved_efficiency, required_tc};
use quake_fem::assembly::{assemble, GroundMaterial, UniformMaterial};
use quake_fem::source::{PointSource, Ricker};
use quake_fem::timestep::Simulation;
use quake_mesh::ground::Material;
use quake_netsim::simulate::SimOptions;
use quake_netsim::validate::validate;
use quake_partition::geometric::{Partitioner, RandomPartition, RecursiveBisection};
use quake_sparse::dense::Vec3;

fn test_app() -> QuakeApp {
    QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh generation")
}

#[test]
fn pipeline_mesh_to_model() {
    let app = test_app();
    let analyzed =
        AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::inertial(), 8)
            .expect("partition");
    // The characterization drives Eq. (1): requiring exactly the t_c the
    // model prescribes must give back the target efficiency.
    let pe = Processor::hypothetical_200mflops();
    for e in [0.5, 0.8, 0.9] {
        let t_c = required_tc(&analyzed.instance, e, pe.t_f);
        let back = achieved_efficiency(&analyzed.instance, t_c, pe.t_f);
        assert!((back - e).abs() < 1e-12);
    }
}

#[test]
fn pipeline_distributed_smvp_equals_sequential_with_ground_materials() {
    let app = test_app();
    let field = GroundMaterial(&app.ground);
    let partition = RecursiveBisection::coordinate()
        .partition(&app.mesh, 6)
        .expect("partition");
    let distributed = DistributedSystem::build(&app.mesh, &partition, &field).expect("assembly");
    let global = assemble(&app.mesh, &field).expect("assembly");
    let x: Vec<Vec3> = (0..app.mesh.node_count())
        .map(|i| Vec3::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos(), 1.0))
        .collect();
    let seq = global.stiffness.spmv_alloc(&x).expect("dims");
    let par = distributed.smvp(&x);
    let scale = seq.iter().map(|v| v.norm()).fold(0.0, f64::max);
    for (a, b) in seq.iter().zip(&par) {
        assert!((*a - *b).norm() <= 1e-9 * (1.0 + scale));
    }
}

#[test]
fn pipeline_workload_to_netsim_validation() {
    let app = test_app();
    let analyzed =
        AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::inertial(), 8)
            .expect("partition");
    let row = validate(
        &analyzed.workload(),
        &Processor::hypothetical_200mflops(),
        &Network::cray_t3e(),
        SimOptions::default(),
    );
    // The β bound must hold between the model and the per-PE exact bound.
    assert!(row.model_t_comm <= row.beta * row.exact_t_comm * (1.0 + 1e-9));
    // The event-driven simulation cannot beat the busiest PE's serial work.
    assert!(row.sim_t_comm >= row.exact_t_comm * (1.0 - 1e-12));
    // And it should land within a small factor of the model for these
    // balanced geometric partitions.
    assert!(
        row.sim_t_comm <= 2.0 * row.model_t_comm,
        "simulation {} vs model {}",
        row.sim_t_comm,
        row.model_t_comm
    );
    assert!((1.0..=2.0).contains(&row.beta));
}

#[test]
fn pipeline_partitioner_quality_propagates_to_requirements() {
    // A worse partitioner (random) must demand more bandwidth through the
    // whole pipeline than the geometric one.
    let app = test_app();
    let pe = Processor::hypothetical_200mflops();
    let tc_of = |analyzed: &AnalyzedInstance| required_tc(&analyzed.instance, 0.9, pe.t_f);
    let good =
        AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::inertial(), 8)
            .expect("partition");
    let bad = AnalyzedInstance::characterize("sf10", &app.mesh, &RandomPartition { seed: 5 }, 8)
        .expect("partition");
    // Smaller t_c budget = stricter network requirement.
    assert!(
        tc_of(&bad) < tc_of(&good),
        "random partition must require a faster network"
    );
}

#[test]
fn pipeline_wave_simulation_runs_on_generated_mesh() {
    let app = test_app();
    let system = assemble(
        &app.mesh,
        &UniformMaterial(Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        }),
    )
    .expect("assembly");
    let dt = Simulation::stable_dt(&app.mesh, 2000.0, 0.3);
    let mut sim = Simulation::new(system, dt).expect("simulation");
    let source = PointSource::nearest(
        &app.mesh,
        app.ground.basin_center_surface(),
        Vec3::new(0.0, 0.0, 1e12),
        Ricker::new(0.5 / dt / 100.0),
    );
    sim.add_source(source);
    sim.add_receiver(0);
    sim.run(100);
    let energy = sim.displacement_energy();
    assert!(energy.is_finite(), "explicit integration must stay stable");
    assert!(energy > 0.0, "the source must excite the mesh");
}

#[test]
fn fixed_block_regime_consistent_between_model_and_simulator() {
    // Figure 10b machinery: split messages into 4-word blocks both in the
    // analytic model (B_max = C_max/4) and the event simulator, and check
    // they agree on the latency-dominated cost.
    use quake_core::machine::BlockRegime;
    use quake_core::model::eq2::comm_time;
    use quake_netsim::simulate::simulate_comm_phase;

    let app = test_app();
    let analyzed =
        AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::inertial(), 8)
            .expect("partition");
    let net = Network {
        name: "latency-bound",
        t_l: 10e-6,
        t_w: 1e-9,
    };
    let sim = simulate_comm_phase(
        &analyzed.workload(),
        &net,
        SimOptions {
            block_words: Some(4),
            ..SimOptions::default()
        },
    );
    let model = comm_time(&analyzed.instance, &net, BlockRegime::CACHE_LINE);
    let ratio = sim / model;
    assert!(
        (0.5..2.0).contains(&ratio),
        "fixed-block sim {sim} vs model {model} (ratio {ratio})"
    );
    // And the fragmented phase must dwarf the maximal-block one.
    let maximal = simulate_comm_phase(&analyzed.workload(), &net, SimOptions::default());
    assert!(
        sim > 10.0 * maximal,
        "fragmentation must dominate: {sim} vs {maximal}"
    );
}

#[test]
fn characterization_shapes_match_paper_section_4_1() {
    // The three qualitative claims of §4.1, on synthetic data:
    // 1. F/C_max falls as p grows.
    // 2. M_avg is small and falls as p grows.
    // 3. C values stay divisible by 6.
    let app = QuakeApp::generate(AppConfig::new("sf5", 5.0, 8.0)).expect("mesh");
    let table = quake_app::figure7_table(
        "sf5",
        &app.mesh,
        &RecursiveBisection::inertial(),
        &[4, 8, 16, 32],
    );
    let ratios: Vec<f64> = table.iter().map(|a| a.instance.comp_comm_ratio()).collect();
    assert!(
        ratios.first().expect("rows") > ratios.last().expect("rows"),
        "F/C_max must fall overall: {ratios:?}"
    );
    let m_avgs: Vec<f64> = table.iter().map(|a| a.instance.m_avg).collect();
    assert!(m_avgs.first().expect("rows") > m_avgs.last().expect("rows"));
    for a in &table {
        assert_eq!(a.instance.c_max % 6, 0);
        assert!((1.0..=2.0).contains(&a.beta));
    }
}
