//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;
use quake_core::model::beta::{beta_bound, exact_comm_time, modeled_comm_time};
use quake_mesh::geometry::{insphere, orient3d, Tetra};
use quake_netsim::simulate::{simulate_comm_phase, SimOptions};
use quake_netsim::workload::Workload;
use quake_sparse::coo::Coo;
use quake_sparse::dense::Vec3;
use quake_sparse::pattern::Pattern;
use quake_sparse::reorder::{permuted_bandwidth, rcm};
use quake_sparse::sym::SymCsr;

fn vec3_strategy() -> impl Strategy<Value = Vec3> {
    (-10.0..10.0f64, -10.0..10.0f64, -10.0..10.0f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO → CSR → SMVP agrees with a dense reference product.
    #[test]
    fn coo_to_csr_matches_dense(
        entries in prop::collection::vec((0usize..12, 0usize..12, -5.0..5.0f64), 0..60),
        x in prop::collection::vec(-3.0..3.0f64, 12),
    ) {
        let n = 12;
        let mut coo = Coo::new(n, n);
        let mut dense = vec![vec![0.0; n]; n];
        for (r, c, v) in entries {
            coo.push(r, c, v).expect("bounded");
            dense[r][c] += v;
        }
        let csr = coo.to_csr();
        let y = csr.spmv_alloc(&x).expect("dims");
        for r in 0..n {
            let want: f64 = (0..n).map(|c| dense[r][c] * x[c]).sum();
            prop_assert!((y[r] - want).abs() < 1e-9);
        }
    }

    /// Symmetric storage computes the same product as full storage.
    #[test]
    fn symmetric_storage_agrees(
        pairs in prop::collection::vec((0usize..10, 0usize..10, -4.0..4.0f64), 0..40),
        x in prop::collection::vec(-3.0..3.0f64, 10),
    ) {
        let n = 10;
        let mut coo = Coo::new(n, n);
        for (a, b, v) in pairs {
            coo.push(a, b, v).expect("bounded");
            if a != b {
                coo.push(b, a, v).expect("bounded");
            }
        }
        let full = coo.to_csr();
        let sym = SymCsr::from_csr(&full, 1e-9).expect("built symmetric");
        let yf = full.spmv_alloc(&x).expect("dims");
        let ys = sym.spmv_alloc(&x).expect("dims");
        for (a, b) in yf.iter().zip(&ys) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// orient3d is antisymmetric under vertex swaps; insphere of the
    /// centroid of a non-degenerate tet is positive.
    #[test]
    fn geometric_predicates(
        a in vec3_strategy(), b in vec3_strategy(),
        c in vec3_strategy(), d in vec3_strategy(),
    ) {
        let o = orient3d(a, b, c, d);
        prop_assert!((orient3d(b, a, c, d) + o).abs() <= 1e-9 * (1.0 + o.abs()));
        let t = Tetra::new(a, b, c, d);
        if o.abs() > 1e-3 {
            // Orient positively, then the centroid must be inside the
            // circumsphere.
            let (p, q, r, s) = if o > 0.0 { (a, b, c, d) } else { (a, b, d, c) };
            prop_assert!(insphere(p, q, r, s, t.centroid()) > 0.0);
        }
    }

    /// RCM always yields a permutation and never increases the bandwidth of
    /// an already-banded path-like graph's natural order by more than the
    /// graph's diameter... more simply: output is a valid permutation and
    /// bandwidth is positive iff the graph has edges.
    #[test]
    fn rcm_yields_valid_permutation(
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..80),
    ) {
        let filtered: Vec<(usize, usize)> =
            edges.into_iter().filter(|&(a, b)| a != b).collect();
        let p = Pattern::from_edges(30, &filtered).expect("bounded");
        let perm = rcm(&p);
        let mut seen = [false; 30];
        for &v in &perm {
            prop_assert!(v < 30);
            prop_assert!(!seen[v]);
            seen[v] = true;
        }
        let bw = permuted_bandwidth(&p, &perm);
        prop_assert_eq!(bw > 0, p.edge_count() > 0);
    }

    /// The β bound brackets the model overestimate for arbitrary loads and
    /// machine parameters.
    #[test]
    fn beta_brackets_model(
        loads in prop::collection::vec((1u64..10_000, 1u64..100), 1..32),
        t_l in 1e-9..1e-3f64,
        t_w in 1e-10..1e-6f64,
    ) {
        let beta = beta_bound(&loads);
        prop_assert!((1.0..=2.0).contains(&beta));
        let exact = exact_comm_time(&loads, t_l, t_w);
        let model = modeled_comm_time(&loads, t_l, t_w);
        prop_assert!(model >= exact * (1.0 - 1e-12));
        prop_assert!(model <= beta * exact * (1.0 + 1e-9));
    }

    /// The event-driven simulation never beats the busiest PE's serial
    /// lower bound, and always drains (no deadlock) for symmetric random
    /// workloads.
    #[test]
    fn netsim_respects_lower_bound(
        p in 4usize..20,
        words in 1u64..500,
        degree in 1usize..4,
        seed in 0u64..50,
    ) {
        let w = Workload::random_sparse(p, 1_000, words, degree.min(p - 1), seed);
        let t_l = 1e-6;
        let t_w = 10e-9;
        let sim = simulate_comm_phase(
            &w,
            &quake_core::machine::Network { name: "prop", t_l, t_w },
            SimOptions::default(),
        );
        let lower = w
            .pe_loads()
            .iter()
            .map(|&(c, b)| b as f64 * t_l + c as f64 * t_w)
            .fold(0.0, f64::max);
        prop_assert!(sim >= lower * (1.0 - 1e-12));
        // And a safe upper bound: even if every NI serialized into a single
        // chain (receive dependencies can idle NIs), the makespan cannot
        // exceed the total NI work across all PEs.
        let total: f64 = w
            .pe_loads()
            .iter()
            .map(|&(c, b)| b as f64 * t_l + c as f64 * t_w)
            .sum();
        prop_assert!(sim <= total + 1e-12);
    }

    /// Mesh pattern counts: block nnz = 2·edges + nodes, always.
    #[test]
    fn pattern_count_identity(
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..80),
    ) {
        let filtered: Vec<(usize, usize)> =
            edges.into_iter().filter(|&(a, b)| a != b).collect();
        let p = Pattern::from_edges(25, &filtered).expect("bounded");
        prop_assert_eq!(p.block_nnz(), 2 * p.edge_count() + 25);
        prop_assert_eq!(p.smvp_flops(), 18 * p.block_nnz() as u64);
    }

    /// Delaunay on arbitrary (jittered) point sets: every tet positively
    /// oriented, every input point used, total volume bounded by the
    /// bounding box.
    #[test]
    fn delaunay_structural_invariants(
        pts in prop::collection::vec(
            (0.0..4.0f64, 0.0..4.0f64, 0.0..4.0f64), 8..40),
        jitter_seed in 0u64..1000,
    ) {
        use quake_mesh::delaunay::delaunay;
        use quake_mesh::geometry::{orient3d, Aabb, Tetra};
        // Jitter deterministically to avoid exact degeneracies the f64
        // predicates cannot resolve.
        let points: Vec<Vec3> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z))| {
                let h = (i as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(jitter_seed);
                let j = |k: u64| ((h >> (k * 16)) & 0xffff) as f64 / 65536.0 * 1e-3;
                Vec3::new(x + j(0), y + j(1), z + j(2))
            })
            .collect();
        let tri = delaunay(&points).expect("jittered input triangulates");
        let mut used = vec![false; tri.points.len()];
        let mut volume = 0.0;
        for tet in &tri.tets {
            let [a, b, c, d] = tet.map(|i| tri.points[i]);
            prop_assert!(orient3d(a, b, c, d) > 0.0, "negative tet");
            volume += Tetra::new(a, b, c, d).volume();
            for &v in tet {
                used[v] = true;
            }
        }
        prop_assert!(used.iter().all(|&u| u), "unused input point");
        let bbox = Aabb::from_points(&tri.points).expect("non-empty");
        prop_assert!(volume <= bbox.volume() * (1.0 + 1e-9));
    }

    /// Mesh text and binary IO round-trip arbitrary valid meshes.
    #[test]
    fn mesh_io_round_trips(
        coords in prop::collection::vec(
            (-100.0..100.0f64, -100.0..100.0f64, -100.0..100.0f64), 4..20),
        picks in prop::collection::vec((0usize..1000, 0usize..1000, 0usize..1000, 0usize..1000), 1..12),
    ) {
        use quake_mesh::io;
        use quake_mesh::mesh::TetMesh;
        let n = coords.len();
        let nodes: Vec<Vec3> = coords.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        // Build elements with 4 distinct in-range node indices.
        let elements: Vec<[usize; 4]> = picks
            .iter()
            .filter_map(|&(a, b, c, d)| {
                let e = [a % n, b % n, c % n, d % n];
                let distinct = (0..4).all(|i| (i + 1..4).all(|j| e[i] != e[j]));
                distinct.then_some(e)
            })
            .collect();
        let mesh = TetMesh::new(nodes, elements).expect("validated above");
        // Text round trip.
        let mut buf = Vec::new();
        io::write_text(&mesh, &mut buf).expect("write");
        let text_back = io::read_text(std::io::BufReader::new(&buf[..])).expect("read");
        prop_assert_eq!(&text_back, &mesh);
        // Binary round trip.
        let bin_back = io::from_bytes(io::to_bytes(&mesh)).expect("decode");
        prop_assert_eq!(&bin_back, &mesh);
    }
}
