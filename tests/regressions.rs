//! Pinned regression cases.
//!
//! The vendored proptest stand-in does not read
//! `tests/properties.proptest-regressions`, so cases recorded there (and any
//! future failing inputs printed by a property) are replayed here as plain
//! deterministic tests. Convention: one test per pinned case, named after
//! the property, with the inputs spelled out literally.

use quake_netsim::simulate::{simulate_comm_phase, SimOptions};
use quake_netsim::workload::Workload;

/// Replays `netsim_respects_lower_bound` with the shrunk case recorded in
/// `tests/properties.proptest-regressions`:
/// `p = 4, words = 1, degree = 1, seed = 27`.
#[test]
fn netsim_lower_bound_p4_words1_degree1_seed27() {
    let (p, words, degree, seed) = (4usize, 1u64, 1usize, 27u64);
    let w = Workload::random_sparse(p, 1_000, words, degree.min(p - 1), seed);
    let t_l = 1e-6;
    let t_w = 10e-9;
    let sim = simulate_comm_phase(
        &w,
        &quake_core::machine::Network {
            name: "prop",
            t_l,
            t_w,
        },
        SimOptions::default(),
    );
    let per_pe = |(c, b): &(u64, u64)| *b as f64 * t_l + *c as f64 * t_w;
    let lower = w.pe_loads().iter().map(per_pe).fold(0.0, f64::max);
    let total: f64 = w.pe_loads().iter().map(per_pe).sum();
    assert!(
        sim >= lower * (1.0 - 1e-12),
        "simulated {sim} beats the busiest-PE lower bound {lower}"
    );
    assert!(
        sim <= total + 1e-12,
        "simulated {sim} exceeds the serialized upper bound {total}"
    );
}
