//! Offline stand-in for the slice of the `parking_lot` API this workspace
//! uses (`Mutex`, `RwLock`, `Condvar`), layered over `std::sync`.
//!
//! The semantic difference that matters to callers: `lock()` returns the
//! guard directly (no `Result` poisoning dance). A poisoned inner lock means
//! another thread panicked while holding it; we propagate that panic rather
//! than silently continuing with possibly-torn state.

use std::sync::{self, TryLockError};

/// Mutual exclusion lock with panic-propagating, non-`Result` `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => panic!("mutex poisoned: {poisoned}"),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: Some(g) },
            Err(poisoned) => panic!("mutex poisoned: {poisoned}"),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(poisoned)) => panic!("mutex poisoned: {poisoned}"),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => panic!("mutex poisoned: {poisoned}"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard alive")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard alive")
    }
}

/// Reader-writer lock with non-`Result` accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => panic!("rwlock poisoned: {poisoned}"),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => panic!("rwlock poisoned: {poisoned}"),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => panic!("rwlock poisoned: {poisoned}"),
        }
    }
}

/// Condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard alive");
        match self.inner.wait(inner) {
            Ok(g) => guard.inner = Some(g),
            Err(poisoned) => panic!("mutex poisoned: {poisoned}"),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn condvar_signals_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }
}
