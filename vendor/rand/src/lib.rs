//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen`]/[`Rng::gen_range`]/[`Rng::gen_bool`] methods.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! this minimal implementation (see `vendor/README.md`). The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! statistically solid for test-data generation, and *not* a reimplementation
//! of upstream `StdRng` (its streams differ; all tests in this repository
//! seed explicitly and assert properties, not exact stream values).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-length byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (the convention used by every
    /// test and example in this workspace).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T` (see [`Standard`]).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range. Panics on an empty range.
    ///
    /// The output type parameter comes first (as upstream) so the expected
    /// type at the call site drives integer-literal inference in the range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// The uniform "whole type" distribution (what `rng.gen()` samples).
pub struct Standard;

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type [`Rng::gen_range`] can sample uniformly from a range of.
pub trait SampleUniform: Sized {
    /// Samples from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// A range that [`Rng::gen_range`] can sample values of type `T` from.
///
/// The single blanket impl per range shape (mirroring upstream) is what
/// lets an integer literal's type in `gen_range(0..n)` unify with the
/// expected output type at the call site.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let span =
                    (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as u128 {
                    // Only reachable for (near-)full 64-bit inclusive domains.
                    return rng.next_u64() as $t;
                }
                // Modulo with a 64-bit source: bias is negligible for the
                // test-sized spans this workspace samples.
                ((lo as i128) + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u: f64 = Standard.sample(rng);
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.5f64);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let sum: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
