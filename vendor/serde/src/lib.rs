//! Offline stand-in for `serde`. The workspace only *derives*
//! `Serialize`/`Deserialize` as forward-looking annotations — nothing
//! serializes through serde yet (the mesh codec in `quake-mesh` is
//! hand-rolled) — so the traits are empty markers and the derives (in
//! `serde_derive`) expand to nothing. When a real serialization consumer
//! lands, this crate is the seam to swap for upstream serde.

/// Marker for types annotated `#[derive(Serialize)]`.
pub trait Serialize {}

/// Marker for types annotated `#[derive(Deserialize)]`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
