//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The derives accept (and ignore) `#[serde(...)]` attributes so existing
//! annotations keep compiling, and emit empty marker-trait impls without
//! pulling in `syn`/`quote` — the only parsing needed is extracting the
//! type's identifier and generics, done with a small hand-rolled scanner.

use proc_macro::{TokenStream, TokenTree};

/// Derives the empty `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Some(item) => item.impl_block("::serde::Serialize", ""),
        None => TokenStream::new(),
    }
}

/// Derives the empty `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Some(item) => item.impl_block("::serde::Deserialize<'de>", "'de"),
        None => TokenStream::new(),
    }
}

struct Item {
    name: String,
    /// Generic parameter names (e.g. `T`), without bounds.
    generics: Vec<String>,
}

impl Item {
    fn impl_block(&self, trait_path: &str, extra_lifetime: &str) -> TokenStream {
        let mut params: Vec<String> = Vec::new();
        if !extra_lifetime.is_empty() {
            params.push(extra_lifetime.to_string());
        }
        params.extend(self.generics.iter().cloned());
        let impl_generics = if params.is_empty() {
            String::new()
        } else {
            format!("<{}>", params.join(", "))
        };
        let ty_generics = if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        };
        format!(
            "#[automatically_derived] impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}",
            name = self.name
        )
        .parse()
        .expect("generated impl parses")
    }
}

/// Extracts the type name and generic parameter names from a
/// struct/enum/union definition token stream.
fn parse_item(input: TokenStream) -> Option<Item> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, visibility, and leading keywords until the
    // struct/enum/union keyword, whose next ident is the type name.
    let mut name = None;
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(id) = &tok {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name?;

    // Collect generic parameter names from `<...>` if present, keeping only
    // top-level parameter identifiers/lifetimes (bounds are dropped — the
    // marker traits need none).
    let mut generics = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        let mut pending_lifetime = false;
        for tok in tokens {
            match &tok {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => expect_param = true,
                    '\'' if depth == 1 && expect_param => pending_lifetime = true,
                    ':' if depth == 1 => expect_param = false,
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && expect_param => {
                    let prefix = if pending_lifetime { "'" } else { "" };
                    // `const N: usize` params: skip the `const` keyword.
                    if id.to_string() == "const" {
                        continue;
                    }
                    generics.push(format!("{prefix}{id}"));
                    pending_lifetime = false;
                    expect_param = false;
                }
                _ => {}
            }
        }
    }
    Some(Item { name, generics })
}
