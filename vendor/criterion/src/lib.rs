//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! It keeps the upstream call shape (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `criterion_group!`/`criterion_main!`)
//! but replaces the statistical engine with a fixed warmup + median-of-N
//! timing loop printed as one line per benchmark. That keeps `cargo bench`
//! useful for relative comparisons (pooled vs. spawn-per-call, natural vs.
//! RCM order) without upstream's plotting/analysis dependency tree, and
//! keeps bench binaries fast enough to smoke-test in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measured samples per benchmark (medians are reported).
const DEFAULT_SAMPLES: usize = 7;

/// Target wall-clock spent measuring one benchmark.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(350);

/// Entry point handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), DEFAULT_SAMPLES, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (kept ≤ 16 here; the stub needs no more).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(3, 16);
        self
    }

    /// Declares work per iteration so results print as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.samples, self.throughput, &mut f);
        self
    }

    /// Times `f` with an explicit input under a parameterized id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.samples, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark id.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. flops) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: one untimed iteration, then pick an iteration count that
    // fits the target measure time across all samples.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = TARGET_MEASURE_TIME / samples as u32;
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>10.1} Melem/s", n as f64 / median / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("  {id:<40} {:>12}{rate}", format_time(median));
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Bundles benchmark functions into one runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("stub");
            group.sample_size(3);
            group.throughput(Throughput::Elements(10));
            group.bench_function("noop", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &p| {
                b.iter(|| std::hint::black_box(p * 2))
            });
            group.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting_spans_units() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-5).ends_with("µs"));
        assert!(format_time(5e-2).ends_with("ms"));
        assert!(format_time(2.0).ends_with(" s"));
    }
}
