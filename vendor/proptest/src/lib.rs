//! Offline stand-in for the slice of `proptest` this workspace uses:
//! the [`proptest!`] macro, range/tuple/vec/map strategies, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, by design (see `vendor/README.md`):
//!
//! - **Deterministic by construction.** Each test's RNG is seeded from a
//!   hash of its name, so every run explores the same cases in the same
//!   order. There is no persistence file; a failing case is pinned by
//!   copying its printed inputs into a plain `#[test]` (see
//!   `tests/regressions.rs`).
//! - **No shrinking.** On failure the *unshrunk* inputs are printed.
//!   Case counts here are small and inputs are readable enough to debug
//!   directly.

use std::fmt;

pub mod strategy {
    //! Value-generation strategies.

    use super::fmt;
    use rand::Rng;

    /// The RNG handed to strategies — the workspace's deterministic
    /// [`rand::rngs::StdRng`].
    pub type TestRng = rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value: fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategies compose by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Number of elements a [`vec`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runtime support for the [`proptest!`](crate::proptest) macro.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A property-body failure (from `prop_assert!`/`prop_assert_eq!`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG: FNV-1a of the test name, so every run
    /// of a given property explores the identical case sequence.
    pub fn deterministic_rng(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the upstream `prop` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times with a
/// deterministic per-test RNG, printing the failing inputs on error.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::deterministic_rng(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let values = ($($crate::strategy::Strategy::sample(&($strat), &mut rng),)+);
                let shown = format!("{:#?}", values);
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ($($arg,)+) = values;
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case, config.cases, e, shown,
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "property {} panicked at case {}/{}\ninputs: {}",
                            stringify!($name), case, config.cases, shown,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports the failing proptest inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports the failing proptest inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// `assert_ne!` that reports the failing proptest inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::deterministic_rng("x");
        let mut b = crate::test_runner::deterministic_rng("x");
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::deterministic_rng("sizes");
        let strat = prop::collection::vec(0usize..5, 3..7);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = prop::collection::vec(0u64..9, 12);
        assert_eq!(exact.sample(&mut rng).len(), 12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro plumbing itself: tuples, maps, and assertions.
        #[test]
        fn macro_generates_and_asserts(
            (a, b) in (0u64..100, 1u64..100),
            v in prop::collection::vec(-1.0..1.0f64, 0..10),
            c in Just(7usize),
        ) {
            prop_assert!(a < 100 && b >= 1);
            prop_assert_eq!(c, 7);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)), "out of range");
        }

        /// prop_map composes.
        #[test]
        fn mapped_strategy(x in (0u64..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(x % 3, 0);
            prop_assert!(x < 30);
        }
    }
}
