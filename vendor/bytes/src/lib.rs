//! Offline stand-in for the slice of the `bytes` crate this workspace uses:
//! [`Bytes`], [`BytesMut`], and the little-endian [`Buf`]/[`BufMut`]
//! accessors consumed by `quake-mesh`'s binary mesh codec.
//!
//! `Bytes` here is a plain owned buffer with a cursor rather than a
//! reference-counted slice view — the mesh codec only ever reads a buffer
//! front to back once, so zero-copy sharing buys nothing.

/// Read access to a contiguous buffer with an advancing cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread portion of the buffer.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Append access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            data: Vec::new(),
            pos: 0,
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length of the buffer.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread portion into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Returns a new buffer over `range` of the unread portion.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn little_endian_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(u64::MAX - 7);
        buf.put_f64_le(-1.5e300);
        buf.put_u8(9);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 4 + 8 + 8 + 1);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 7);
        assert_eq!(b.get_f64_le(), -1.5e300);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn cursor_tracks_reads() {
        let mut b = Bytes::from(vec![1u8, 0, 0, 0, 2]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.to_vec(), vec![2]);
    }

    #[test]
    fn slice_is_relative_to_unread() {
        let mut b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(b.slice(1..3).to_vec(), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_static(&[1, 2, 3]);
        b.advance(4);
    }
}
