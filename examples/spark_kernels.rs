//! Spark98-style kernel demo: run the sequential, lock-based,
//! reduction-based, and row-parallel SMVP kernels on the same stiffness
//! matrix, verify they agree, and print rough throughput.
//!
//! Run with: `cargo run --release --example spark_kernels`

use quake_app::family::{AppConfig, QuakeApp};
use quake_app::report::Table;
use quake_fem::assembly::{assemble, GroundMaterial};
use quake_spark::kernels::{lmv, pmv, rmv, smv};
use quake_sparse::sym::SymCsr;
use std::time::Instant;

fn time_mflops<F: FnMut() -> Vec<f64>>(flops: u64, reps: u32, mut f: F) -> (Vec<f64>, f64) {
    let mut result = f(); // warm-up
    let start = Instant::now();
    for _ in 0..reps {
        result = f();
    }
    let dt = start.elapsed().as_secs_f64() / reps as f64;
    (result, flops as f64 / dt / 1e6)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0))?;
    let system = assemble(&app.mesh, &GroundMaterial(&app.ground))?;
    let full = system.stiffness.to_scalar_csr();
    // The stiffness values are huge (Pa·m); scale the symmetry tolerance.
    let tol = 1e-9 * full.values().iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let sym = SymCsr::from_csr(&full, tol)?;
    let n = full.rows();
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
        .collect();
    let flops = full.smvp_flops();
    println!(
        "matrix: {} x {}, {} nonzeros, {} flops per SMVP\n",
        n,
        n,
        full.nnz(),
        flops
    );

    let reps = 20;
    let (reference, base_mflops) = time_mflops(flops, reps, || smv(&sym, &x));
    let mut t = Table::new(vec!["kernel", "threads", "MFLOPS", "max rel diff"]);
    t.row(vec![
        "smv (sequential)".into(),
        "1".into(),
        format!("{base_mflops:.0}"),
        "0".into(),
    ]);
    let scale = reference.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let check_row = |name: &str, threads: usize, result: &[f64], mflops: f64, t: &mut Table| {
        let diff = reference
            .iter()
            .zip(result)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max)
            / scale;
        t.row(vec![
            name.into(),
            threads.to_string(),
            format!("{mflops:.0}"),
            format!("{diff:.2e}"),
        ]);
    };
    for threads in [2usize, 4] {
        let (r, m) = time_mflops(flops, reps, || lmv(&sym, &x, threads));
        check_row("lmv (locks)", threads, &r, m, &mut t);
        let (r, m) = time_mflops(flops, reps, || rmv(&sym, &x, threads));
        check_row("rmv (reduction)", threads, &r, m, &mut t);
        let (r, m) = time_mflops(flops, reps, || pmv(&full, &x, threads));
        check_row("pmv (row-parallel)", threads, &r, m, &mut t);
    }
    println!("{}", t.render());
    println!(
        "All kernels compute the same y = Kx. The lock-based kernel pays per-update\n\
         synchronization; the reduction kernel trades it for O(threads·n) buffer\n\
         memory; the row-parallel kernel streams the full matrix (twice the bytes of\n\
         symmetric storage) but needs no synchronization at all."
    );
    Ok(())
}
