//! The parallel SMVP of §2.3, executed: partition the mesh, build local
//! subdomain matrices with replicated shared nodes, run the
//! compute/exchange/sum cycle, and verify the result against the sequential
//! product — then show the message structure the paper characterizes.
//!
//! Run with: `cargo run --release --example distributed_smvp`

use quake_app::distributed::DistributedSystem;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::report::Table;
use quake_fem::assembly::{assemble, GroundMaterial};
use quake_partition::comm::CommAnalysis;
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_sparse::dense::Vec3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parts = 8;
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0))?;
    let partition = RecursiveBisection::inertial().partition(&app.mesh, parts)?;
    println!(
        "mesh: {} nodes, {} elements; partitioned into {} subdomains",
        app.mesh.node_count(),
        app.mesh.element_count(),
        parts
    );
    println!(
        "shared nodes: {} ({:.1}% of all nodes), replication factor {:.3}\n",
        partition.shared_node_count(),
        100.0 * partition.shared_node_count() as f64 / app.mesh.node_count() as f64,
        partition.replication_factor()
    );

    let field = GroundMaterial(&app.ground);
    let distributed = DistributedSystem::build(&app.mesh, &partition, &field)?;
    let global = assemble(&app.mesh, &field)?;

    // A deterministic pseudo-random displacement field.
    let x: Vec<Vec3> = (0..app.mesh.node_count())
        .map(|i| {
            let f = i as f64;
            Vec3::new((f * 0.37).sin(), (f * 0.11).cos(), (f * 0.53).sin())
        })
        .collect();
    let sequential = global.stiffness.spmv_alloc(&x)?;
    let parallel = distributed.smvp(&x);
    let scale = sequential.iter().map(|v| v.norm()).fold(0.0, f64::max);
    let max_err = sequential
        .iter()
        .zip(&parallel)
        .map(|(a, b)| (*a - *b).norm())
        .fold(0.0, f64::max);
    println!(
        "distributed SMVP vs sequential: max abs error {:.3e} (scale {:.3e})",
        max_err, scale
    );
    assert!(
        max_err <= 1e-9 * (1.0 + scale),
        "distributed product must match"
    );
    println!("=> exchange-and-sum reproduces the global product exactly\n");

    // Per-PE structure: the quantities of the paper's model.
    let analysis = CommAnalysis::new(&app.mesh, &partition);
    let mut t = Table::new(vec![
        "PE",
        "local nodes",
        "F_i (flops)",
        "C_i (words)",
        "B_i (blocks)",
    ]);
    for (q, sd) in distributed.subdomains().iter().enumerate() {
        let load = analysis.per_pe()[q];
        t.row(vec![
            q.to_string(),
            sd.node_count().to_string(),
            load.flops.to_string(),
            load.words.to_string(),
            load.blocks.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "F = {}, C_max = {}, B_max = {}, M_avg = {:.0} words, beta = {:.2}",
        analysis.f_max(),
        analysis.c_max(),
        analysis.b_max(),
        analysis.m_avg(),
        analysis.beta()
    );
    Ok(())
}
