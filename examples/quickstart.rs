//! Quickstart: generate a synthetic Quake mesh, partition it, characterize
//! the SMVP, and ask the paper's question — what network does this workload
//! need?
//!
//! Run with: `cargo run --release --example quickstart`

use quake_app::characterize::AnalyzedInstance;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::report::{fmt_mb_per_s, fmt_seconds};
use quake_core::machine::{BlockRegime, Processor};
use quake_core::model::eq1::{required_sustained_bandwidth, required_tc};
use quake_core::model::eq2::half_bandwidth_point;
use quake_partition::geometric::RecursiveBisection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small synthetic earthquake mesh: the San-Fernando-like
    //    basin resolving 10-second waves, domain shrunk 8x for speed.
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0))?;
    let stats = app.size_stats();
    println!("mesh: {stats}");
    println!(
        "avg node degree: {:.1} (paper: ~14), est. runtime memory: {:.1} MB",
        app.mesh.avg_node_degree(),
        app.mesh.estimated_runtime_bytes() as f64 / 1e6
    );

    // 2. Partition onto 16 PEs with recursive inertial bisection and
    //    extract the paper's Figure 7 quantities.
    let analyzed =
        AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::inertial(), 16)?;
    let inst = &analyzed.instance;
    println!("\ncharacterization: {inst}");
    println!(
        "beta bound: {:.2} (Eq. 2 is near-exact when close to 1)",
        analyzed.beta
    );

    // 3. Apply Equation (1): what sustained per-PE bandwidth does 90%
    //    efficiency demand on a 200-MFLOP PE?
    let pe = Processor::hypothetical_200mflops();
    let bw = required_sustained_bandwidth(inst, 0.9, &pe);
    println!(
        "\nEq. (1): sustained per-PE bandwidth for E=0.9 on {}: {} MB/s",
        pe.name,
        fmt_mb_per_s(bw)
    );

    // 4. Apply Equation (2): the half-bandwidth design point.
    let t_c = required_tc(inst, 0.9, pe.t_f);
    let design = half_bandwidth_point(inst, t_c, BlockRegime::Maximal);
    println!(
        "Eq. (2): half-bandwidth design -> burst {} MB/s with block latency {}",
        fmt_mb_per_s(design.burst_bandwidth_bytes()),
        fmt_seconds(design.t_l)
    );
    Ok(())
}
