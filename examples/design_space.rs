//! Design-space exploration: the paper's §4 question as a tool. Given a
//! target machine (sustained MFLOPS per PE) and efficiency, sweep the Quake
//! family (paper's published characterization) and report what the
//! communication system must deliver — sustained bandwidth, burst
//! bandwidth, and block latency under both block regimes — then check a
//! concrete network (the measured Cray T3E) against the requirement.
//!
//! Run with: `cargo run --release --example design_space -- [mflops] [efficiency]`

use quake_app::report::{fmt_mb_per_s, fmt_seconds, Table};
use quake_core::machine::{BlockRegime, Network, Processor};
use quake_core::model::eq1::{achieved_efficiency, required_tc};
use quake_core::model::eq2::{delivered_tc, half_bandwidth_point};
use quake_core::paperdata;

fn main() {
    let mut args = std::env::args().skip(1);
    let mflops: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200.0);
    let efficiency: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .filter(|e| (0.0..1.0).contains(e) && *e > 0.0)
        .unwrap_or(0.9);
    let pe = Processor::from_mflops("target PE", mflops);
    println!("== Communication requirements for {mflops:.0}-MFLOP PEs at E = {efficiency} ==\n");
    let mut t = Table::new(vec![
        "instance",
        "F/C_max",
        "sustained (MB/s)",
        "burst@half (MB/s)",
        "T_l@half (maximal)",
        "T_l@half (4-word)",
    ]);
    let mut hardest: Option<(String, f64)> = None;
    for inst in paperdata::figure7() {
        let t_c = required_tc(&inst, efficiency, pe.t_f);
        let maximal = half_bandwidth_point(&inst, t_c, BlockRegime::Maximal);
        let fixed = half_bandwidth_point(&inst, t_c, BlockRegime::CACHE_LINE);
        t.row(vec![
            inst.label(),
            format!("{:.0}", inst.comp_comm_ratio()),
            fmt_mb_per_s(8.0 / t_c),
            fmt_mb_per_s(maximal.burst_bandwidth_bytes()),
            fmt_seconds(maximal.t_l),
            fmt_seconds(fixed.t_l),
        ]);
        if hardest
            .as_ref()
            .map(|(_, l)| maximal.t_l < *l)
            .unwrap_or(true)
        {
            hardest = Some((inst.label(), maximal.t_l));
        }
    }
    println!("{}", t.render());
    let (label, latency) = hardest.expect("instances exist");
    println!(
        "binding instance: {label} -> block latency budget {}\n",
        fmt_seconds(latency)
    );

    // Check the measured T3E network against every instance.
    let t3e = Network::cray_t3e();
    println!(
        "== What the measured {} network (T_l = {}, T_w = {}) actually delivers ==\n",
        t3e.name,
        fmt_seconds(t3e.t_l),
        fmt_seconds(t3e.t_w)
    );
    let mut t = Table::new(vec![
        "instance",
        "delivered T_c",
        "required T_c",
        "achieved E",
    ]);
    for inst in paperdata::figure7_app("sf2") {
        let delivered = delivered_tc(&inst, &t3e, BlockRegime::Maximal);
        let required = required_tc(&inst, efficiency, pe.t_f);
        let achieved = achieved_efficiency(&inst, delivered, pe.t_f);
        t.row(vec![
            inst.label(),
            fmt_seconds(delivered),
            fmt_seconds(required),
            format!("{achieved:.3}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: wherever delivered T_c exceeds required T_c, the {}-class network\n\
         cannot hold E = {efficiency} once PEs sustain {mflops:.0} MFLOPS — the paper's\n\
         argument that latency, not bisection bandwidth, is the engineering problem.",
        t3e.name
    );
}
