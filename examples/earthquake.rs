//! End-to-end earthquake simulation: the workload the paper's intro
//! motivates. Generates the basin mesh, assembles the elastic system,
//! injects a Ricker-wavelet source at depth under the basin, time-steps the
//! wave equation, and prints ASCII seismograms at a basin receiver and a
//! rock receiver — showing the basin amplification that makes soft-soil
//! valleys dangerous.
//!
//! Run with: `cargo run --release --example earthquake`

#![allow(clippy::needless_range_loop)] // indexed loops are clearer here

use quake_app::family::{AppConfig, QuakeApp};
use quake_fem::assembly::{assemble, GroundMaterial};
use quake_fem::source::{PointSource, Ricker};
use quake_fem::timestep::Simulation;
use quake_sparse::dense::Vec3;

fn ascii_trace(samples: &[f64], width: usize, height: usize) -> String {
    let peak = samples
        .iter()
        .cloned()
        .fold(0.0f64, |a, b| a.max(b.abs()))
        .max(1e-30);
    let mut rows = vec![vec![b' '; width]; height];
    for col in 0..width {
        let idx = col * samples.len() / width;
        let v = samples[idx] / peak; // -1..1
        let r = ((1.0 - v) * 0.5 * (height - 1) as f64).round() as usize;
        rows[r.min(height - 1)][col] = b'*';
    }
    rows.into_iter()
        .map(|r| String::from_utf8(r).expect("ascii"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0))?;
    println!(
        "mesh: {} nodes, {} elements",
        app.mesh.node_count(),
        app.mesh.element_count()
    );
    let system = assemble(&app.mesh, &GroundMaterial(&app.ground))?;

    // Stable explicit step for the stiffest (rock) elements.
    let max_vp = 3f64.sqrt() * app.ground.vs_rock;
    let dt = Simulation::stable_dt(&app.mesh, max_vp, 0.4);
    println!("time step: {dt:.4} s (CFL-limited by the smallest basin elements)");

    let mut sim = Simulation::new(system, dt)?;
    // A point source 2 km under the basin center, band-limited to the mesh
    // resolution (10-second waves).
    let epicenter = app.ground.basin_center_surface() + Vec3::new(0.0, 0.0, -2_000.0);
    let source = PointSource::nearest(
        &app.mesh,
        epicenter,
        Vec3::new(0.0, 0.0, 1e15),
        Ricker::new(0.1),
    );
    println!(
        "source at node {} ({})",
        source.node,
        app.mesh.nodes()[source.node]
    );
    sim.add_source(source);

    // Receivers: one on the soft basin surface, one on rock.
    let basin_rx = PointSource::nearest(
        &app.mesh,
        app.ground.basin_center_surface(),
        Vec3::ZERO,
        Ricker::new(1.0),
    )
    .node;
    let rock_rx = PointSource::nearest(
        &app.mesh,
        Vec3::new(
            app.ground.basin_cx - 0.45 * app.ground.size_x / 8.0 * 4.0,
            app.ground.basin_cy,
            0.0,
        ),
        Vec3::ZERO,
        Ricker::new(1.0),
    )
    .node;
    sim.add_receiver(basin_rx);
    sim.add_receiver(rock_rx);

    // The paper's applications run 6000 steps; a few hundred suffice to see
    // the arrivals at this scale.
    let steps = 600u64;
    sim.run(steps);
    println!(
        "simulated {:.1} s of ground motion in {} steps ({} SMVPs of {} flops each)\n",
        sim.time(),
        sim.step_count(),
        sim.step_count(),
        app.mesh.pattern().smvp_flops(),
    );

    let labels = ["basin surface (soft)", "rock site (hard)"];
    let mut peaks = Vec::new();
    for (s, label) in sim.seismograms().iter().zip(labels) {
        let z: Vec<f64> = s.samples.iter().map(|v| v.z).collect();
        println!("vertical displacement at {label} (node {}):", s.node);
        println!("{}\n", ascii_trace(&z, 72, 9));
        peaks.push(s.peak());
    }
    println!(
        "peak displacement: basin {:.3e} m vs rock {:.3e} m (amplification x{:.1})",
        peaks[0],
        peaks[1],
        peaks[0] / peaks[1].max(1e-30)
    );
    Ok(())
}
