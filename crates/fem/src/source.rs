//! Seismic sources: Ricker wavelets applied as point body forces.

use quake_mesh::mesh::TetMesh;
use quake_sparse::dense::Vec3;

/// A Ricker wavelet (the second derivative of a Gaussian), the standard
/// band-limited source pulse in seismic simulation. Its dominant frequency
/// `f0` corresponds to the shortest resolved period of the sfN family.
///
/// # Examples
///
/// ```
/// use quake_fem::source::Ricker;
/// let r = Ricker::new(1.0);
/// // Peak at the center time, decaying to ~0 away from it.
/// assert!(r.amplitude(r.t0()) == 1.0);
/// assert!(r.amplitude(r.t0() + 10.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ricker {
    f0: f64,
    t0: f64,
}

impl Ricker {
    /// A wavelet with dominant frequency `f0` (Hz), centered at
    /// `t0 = 1.2 / f0` so the pulse starts near zero amplitude.
    ///
    /// # Panics
    ///
    /// Panics unless `f0 > 0`.
    pub fn new(f0: f64) -> Self {
        assert!(f0 > 0.0, "dominant frequency must be positive");
        Ricker { f0, t0: 1.2 / f0 }
    }

    /// Dominant frequency (Hz).
    pub fn f0(&self) -> f64 {
        self.f0
    }

    /// Center time of the pulse (s).
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Amplitude at time `t` (unitless, peak 1 at `t0`).
    pub fn amplitude(&self, t: f64) -> f64 {
        let a = std::f64::consts::PI * self.f0 * (t - self.t0);
        let a2 = a * a;
        (1.0 - 2.0 * a2) * (-a2).exp()
    }
}

/// A point force source: a Ricker pulse with direction and magnitude applied
/// to the mesh node nearest a target location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSource {
    /// The node the force is applied to.
    pub node: usize,
    /// Force direction and magnitude (N).
    pub force: Vec3,
    /// Time envelope.
    pub wavelet: Ricker,
}

impl PointSource {
    /// Creates a source at the mesh node nearest `location`.
    ///
    /// # Panics
    ///
    /// Panics if the mesh has no nodes.
    pub fn nearest(mesh: &TetMesh, location: Vec3, force: Vec3, wavelet: Ricker) -> Self {
        assert!(mesh.node_count() > 0, "mesh has no nodes");
        let node = mesh
            .nodes()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (**a - location)
                    .norm_squared()
                    .partial_cmp(&(**b - location).norm_squared())
                    .expect("finite coordinates")
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        PointSource {
            node,
            force,
            wavelet,
        }
    }

    /// The force vector at time `t`.
    pub fn force_at(&self, t: f64) -> Vec3 {
        self.force * self.wavelet.amplitude(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ricker_shape() {
        let r = Ricker::new(2.0);
        assert_eq!(r.f0(), 2.0);
        assert!((r.t0() - 0.6).abs() < 1e-12);
        assert_eq!(r.amplitude(r.t0()), 1.0);
        // Symmetric about t0.
        assert!((r.amplitude(r.t0() + 0.1) - r.amplitude(r.t0() - 0.1)).abs() < 1e-12);
        // Negative side lobes exist.
        assert!(r.amplitude(r.t0() + 0.25) < 0.0);
    }

    #[test]
    fn ricker_integrates_to_near_zero() {
        // The Ricker wavelet has zero mean.
        let r = Ricker::new(1.0);
        let dt = 1e-3;
        let sum: f64 = (0..10_000).map(|i| r.amplitude(i as f64 * dt) * dt).sum();
        assert!(sum.abs() < 1e-6, "mean {sum}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = Ricker::new(0.0);
    }

    #[test]
    fn nearest_node_selection() {
        let mesh = TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 1, 2, 3]],
        )
        .unwrap();
        let src = PointSource::nearest(
            &mesh,
            Vec3::new(0.9, 0.1, 0.0),
            Vec3::new(0.0, 0.0, -1e6),
            Ricker::new(1.0),
        );
        assert_eq!(src.node, 1);
        let f = src.force_at(src.wavelet.t0());
        assert_eq!(f, Vec3::new(0.0, 0.0, -1e6));
    }
}
