//! Finite-element substrate: linear-elasticity assembly and explicit time
//! stepping for the Quake wave-propagation simulations.
//!
//! Each Quake application is a 3-D unstructured finite-element simulation of
//! seismic wave propagation: a `3n × 3n` stiffness matrix `K` is assembled
//! from per-tetrahedron linear-elasticity contributions, and 6000 explicit
//! central-difference time steps each execute one SMVP `y = Kx` — the
//! operation the whole paper characterizes.
//!
//! * [`elasticity`] — constant-strain tetrahedron stiffness and lumped mass;
//! * [`assembly`] — global block-CSR assembly over a mesh + material field;
//! * [`source`] — Ricker-wavelet point sources;
//! * [`timestep`] — the explicit integrator with seismogram recording.

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod assembly;
pub mod elasticity;
pub mod source;
pub mod timestep;

pub use assembly::{assemble, AssembledSystem, GroundMaterial, MaterialField, UniformMaterial};
pub use source::{PointSource, Ricker};
pub use timestep::{Seismogram, SimError, Simulation};
