//! Explicit central-difference time stepping.
//!
//! The Quake applications run 6000 explicit time steps, each dominated by
//! one SMVP `y = Kx` — the only parallel operation besides I/O. The update
//! is the standard central difference with a lumped (diagonal) mass matrix:
//!
//! `u⁺ = 2u − u⁻ + Δt²·M⁻¹·(f − K·u)`

use crate::assembly::AssembledSystem;
use crate::source::PointSource;
use quake_mesh::mesh::TetMesh;
use quake_spark::{bmv_pooled_into, WorkerPool};
use quake_sparse::dense::Vec3;
use std::error::Error;
use std::fmt;

/// Error produced by simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A node carries zero mass (an unassembled or detached node).
    ZeroMass(usize),
    /// The time step is not positive.
    BadTimeStep(f64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroMass(n) => write!(f, "node {n} has zero lumped mass"),
            SimError::BadTimeStep(dt) => write!(f, "time step {dt} must be positive"),
        }
    }
}

impl Error for SimError {}

/// A displacement recording at one receiver node.
#[derive(Debug, Clone, PartialEq)]
pub struct Seismogram {
    /// The recorded node.
    pub node: usize,
    /// One displacement sample per time step.
    pub samples: Vec<Vec3>,
}

impl Seismogram {
    /// Peak displacement magnitude over the recording.
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|s| s.norm()).fold(0.0, f64::max)
    }

    /// Index of the first sample whose magnitude exceeds `threshold`, or
    /// `None` if it never does — used to measure wave arrival times.
    pub fn first_arrival(&self, threshold: f64) -> Option<usize> {
        self.samples.iter().position(|s| s.norm() > threshold)
    }
}

/// A persistent worker pool driving the simulation's SMVP.
///
/// Wrapped so [`Simulation`] can keep deriving `Clone`/`Debug`: a clone
/// spawns a fresh pool of the same width (worker threads are not shareable
/// state), and `Debug` prints just the width.
struct PoolHandle(WorkerPool);

impl fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("PoolHandle")
            .field(&self.0.threads())
            .finish()
    }
}

impl Clone for PoolHandle {
    fn clone(&self) -> Self {
        PoolHandle(WorkerPool::new(self.0.threads()))
    }
}

/// An explicit central-difference wave-propagation simulation.
#[derive(Debug, Clone)]
pub struct Simulation {
    system: AssembledSystem,
    sources: Vec<PointSource>,
    receivers: Vec<usize>,
    dt: f64,
    time: f64,
    step: u64,
    /// Mass-proportional Rayleigh damping coefficient α (1/s); the damping
    /// force is `α·M·u̇`.
    damping: f64,
    /// Pooled workers for the per-step SMVP, or `None` for the serial path.
    pool: Option<PoolHandle>,
    u_prev: Vec<Vec3>,
    u_curr: Vec<Vec3>,
    scratch: Vec<Vec3>,
    records: Vec<Seismogram>,
}

impl Simulation {
    /// Creates a simulation with time step `dt` (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadTimeStep`] if `dt ≤ 0` or
    /// [`SimError::ZeroMass`] if any node has no mass.
    pub fn new(system: AssembledSystem, dt: f64) -> Result<Self, SimError> {
        if dt <= 0.0 || dt.is_nan() {
            return Err(SimError::BadTimeStep(dt));
        }
        if let Some(n) = system.mass.iter().position(|&m| m <= 0.0) {
            return Err(SimError::ZeroMass(n));
        }
        let n = system.stiffness.block_rows();
        Ok(Simulation {
            system,
            sources: Vec::new(),
            receivers: Vec::new(),
            dt,
            time: 0.0,
            step: 0,
            damping: 0.0,
            pool: None,
            u_prev: vec![Vec3::ZERO; n],
            u_curr: vec![Vec3::ZERO; n],
            scratch: vec![Vec3::ZERO; n],
            records: Vec::new(),
        })
    }

    /// Sets the mass-proportional Rayleigh damping coefficient `alpha`
    /// (1/s). Zero (the default) is the paper's undamped explicit scheme; a
    /// positive value attenuates motion, standing in for the absorbing
    /// boundaries of the production code.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative.
    pub fn set_damping(&mut self, alpha: f64) -> &mut Self {
        assert!(alpha >= 0.0, "damping must be non-negative");
        self.damping = alpha;
        self
    }

    /// Switches the per-step SMVP onto a persistent worker pool of `threads`
    /// workers (`threads <= 1` restores the serial path). The pool lives for
    /// the rest of the simulation, so the 6000-step loop pays thread spawn
    /// cost once instead of per step. Rows are visited in the same order as
    /// the serial kernel, so results are bitwise identical.
    pub fn set_parallel(&mut self, threads: usize) -> &mut Self {
        self.pool = if threads > 1 {
            Some(PoolHandle(WorkerPool::new(threads)))
        } else {
            None
        };
        self
    }

    /// Number of worker threads driving the SMVP (1 means serial).
    pub fn parallelism(&self) -> usize {
        self.pool.as_ref().map_or(1, |h| h.0.threads())
    }

    /// Adds a point source.
    pub fn add_source(&mut self, source: PointSource) -> &mut Self {
        self.sources.push(source);
        self
    }

    /// Adds a receiver recording the displacement of `node` each step.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn add_receiver(&mut self, node: usize) -> &mut Self {
        assert!(
            node < self.u_curr.len(),
            "receiver node {node} out of range"
        );
        self.receivers.push(node);
        self.records.push(Seismogram {
            node,
            samples: Vec::new(),
        });
        self
    }

    /// Current simulated time (seconds).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of completed steps.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Current displacement field.
    pub fn displacement(&self) -> &[Vec3] {
        &self.u_curr
    }

    /// The recorded seismograms so far.
    pub fn seismograms(&self) -> &[Seismogram] {
        &self.records
    }

    /// A conservative stable time step for the mesh/material combination:
    /// `dt = safety · min_e (min altitude / v_p)` (CFL-style bound).
    ///
    /// The bound uses each element's minimum *altitude* rather than its
    /// shortest edge: Delaunay meshes contain sliver elements whose edges
    /// are all moderate but whose height is tiny, and it is the altitude
    /// that controls the element's highest eigenfrequency under a lumped
    /// mass matrix. An edge-based bound admits time steps that blow up on
    /// such meshes.
    pub fn stable_dt(mesh: &TetMesh, max_vp: f64, safety: f64) -> f64 {
        let min_altitude = (0..mesh.element_count())
            .map(|e| mesh.tetra(e).min_altitude())
            .fold(f64::INFINITY, f64::min);
        safety * min_altitude / max_vp
    }

    /// Advances one time step (one SMVP plus vector updates — the paper's
    /// unit of work).
    pub fn advance(&mut self) {
        // scratch = K·u (the SMVP). Both paths write every entry of the
        // persistent scratch buffer in place, so the step allocates nothing.
        match &self.pool {
            Some(handle) => bmv_pooled_into(
                &self.system.stiffness,
                &self.u_curr,
                &handle.0,
                &mut self.scratch,
            ),
            None => self
                .system
                .stiffness
                .spmv(&self.u_curr, &mut self.scratch)
                .expect("dimensions fixed at construction"),
        }
        // Central difference with mass-proportional damping α:
        //   M·(u⁺−2u+u⁻)/Δt² + α·M·(u⁺−u⁻)/(2Δt) + K·u = f
        // solved per node for u⁺ (M is lumped/diagonal).
        let c1 = 1.0 / (self.dt * self.dt);
        let c2 = self.damping / (2.0 * self.dt);
        let denom = c1 + c2;
        // External forces at the current time.
        let t = self.time;
        for i in 0..self.u_curr.len() {
            let mut f = -self.scratch[i];
            for s in &self.sources {
                if s.node == i {
                    f += s.force_at(t);
                }
            }
            let rhs = f * (1.0 / self.system.mass[i])
                + (self.u_curr[i] * 2.0 - self.u_prev[i]) * c1
                + self.u_prev[i] * c2;
            let next = rhs * (1.0 / denom);
            self.u_prev[i] = self.u_curr[i];
            self.u_curr[i] = next;
        }
        self.step += 1;
        self.time += self.dt;
        for (r, &node) in self.receivers.iter().enumerate() {
            let sample = self.u_curr[node];
            self.records[r].samples.push(sample);
        }
    }

    /// Runs `steps` time steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.advance();
        }
    }

    /// Total displacement energy proxy `Σ m_i·|u_i|²` (bounded for a stable
    /// run, exploding for an unstable one).
    pub fn displacement_energy(&self) -> f64 {
        self.u_curr
            .iter()
            .zip(&self.system.mass)
            .map(|(u, &m)| m * u.norm_squared())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::{assemble, UniformMaterial};
    use crate::source::Ricker;
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::geometry::Aabb;
    use quake_mesh::ground::{Material, UniformSizing};

    fn small_system() -> (TetMesh, AssembledSystem) {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let mat = Material {
            vs: 1.0,
            vp: 2.0,
            rho: 1.0,
        };
        let sys = assemble(&mesh, &UniformMaterial(mat)).unwrap();
        (mesh, sys)
    }

    #[test]
    fn zero_initial_state_stays_zero_without_sources() {
        let (_, sys) = small_system();
        let mut sim = Simulation::new(sys, 1e-3).unwrap();
        sim.run(50);
        assert_eq!(sim.step_count(), 50);
        assert_eq!(sim.displacement_energy(), 0.0);
    }

    #[test]
    fn source_excites_waves_that_stay_bounded() {
        let (mesh, sys) = small_system();
        let dt = Simulation::stable_dt(&mesh, 2.0, 0.3);
        assert!(dt > 0.0);
        let mut sim = Simulation::new(sys, dt).unwrap();
        let src = PointSource::nearest(
            &mesh,
            Vec3::splat(2.0),
            Vec3::new(0.0, 0.0, 1.0),
            Ricker::new(0.5),
        );
        sim.add_source(src);
        sim.add_receiver(0);
        sim.run(300);
        let energy = sim.displacement_energy();
        assert!(energy > 0.0, "source should excite motion");
        assert!(
            energy.is_finite() && energy < 1e12,
            "unstable: energy = {energy}"
        );
        assert_eq!(sim.seismograms()[0].samples.len(), 300);
    }

    #[test]
    fn waves_arrive_later_at_distant_receivers() {
        let (mesh, sys) = small_system();
        let dt = Simulation::stable_dt(&mesh, 2.0, 0.3);
        let mut sim = Simulation::new(sys, dt).unwrap();
        let corner = Vec3::ZERO;
        let src = PointSource::nearest(&mesh, corner, Vec3::new(0.0, 0.0, 1e3), Ricker::new(0.8));
        let src_pos = mesh.nodes()[src.node];
        sim.add_source(src);
        // Near and far receivers.
        let near = PointSource::nearest(
            &mesh,
            src_pos + Vec3::splat(1.0),
            Vec3::ZERO,
            Ricker::new(1.0),
        )
        .node;
        let far = PointSource::nearest(
            &mesh,
            src_pos + Vec3::splat(3.5),
            Vec3::ZERO,
            Ricker::new(1.0),
        )
        .node;
        sim.add_receiver(near);
        sim.add_receiver(far);
        sim.run(800);
        let threshold = 1e-6 * sim.seismograms()[0].peak().max(sim.seismograms()[1].peak());
        let t_near = sim.seismograms()[0].first_arrival(threshold);
        let t_far = sim.seismograms()[1].first_arrival(threshold);
        let (t_near, t_far) = (t_near.expect("near arrival"), t_far.expect("far arrival"));
        assert!(
            t_near < t_far,
            "near receiver must hear the wave first: {t_near} vs {t_far}"
        );
    }

    #[test]
    fn construction_errors() {
        let (_, sys) = small_system();
        assert!(matches!(
            Simulation::new(sys.clone(), 0.0),
            Err(SimError::BadTimeStep(_))
        ));
        let mut bad = sys;
        bad.mass[3] = 0.0;
        assert!(matches!(
            Simulation::new(bad, 1e-3),
            Err(SimError::ZeroMass(3))
        ));
    }

    #[test]
    fn seismogram_helpers() {
        let s = Seismogram {
            node: 0,
            samples: vec![
                Vec3::ZERO,
                Vec3::new(0.5, 0.0, 0.0),
                Vec3::new(2.0, 0.0, 0.0),
            ],
        };
        assert_eq!(s.peak(), 2.0);
        assert_eq!(s.first_arrival(0.4), Some(1));
        assert_eq!(s.first_arrival(5.0), None);
    }

    #[test]
    fn damping_attenuates_motion() {
        let (mesh, sys) = small_system();
        let dt = Simulation::stable_dt(&mesh, 2.0, 0.3);
        // Compare at a fixed simulated time (not step count) so the test is
        // insensitive to how conservative stable_dt is: α·t is what sets the
        // attenuation, and 2.0 s at α = 2 /s damps energy by ≈ e⁻⁸.
        let steps = (2.0 / dt).ceil() as u64;
        let run = |alpha: f64| {
            let mut sim = Simulation::new(sys.clone(), dt).unwrap();
            sim.set_damping(alpha);
            let src = PointSource::nearest(
                &mesh,
                Vec3::splat(2.0),
                Vec3::new(0.0, 0.0, 1.0),
                Ricker::new(0.5),
            );
            sim.add_source(src);
            sim.run(steps);
            sim.displacement_energy()
        };
        let undamped = run(0.0);
        let damped = run(2.0);
        assert!(
            damped < 0.5 * undamped,
            "damped {damped} vs undamped {undamped}"
        );
        assert!(damped > 0.0);
    }

    #[test]
    fn zero_damping_matches_original_scheme() {
        let (mesh, sys) = small_system();
        let dt = Simulation::stable_dt(&mesh, 2.0, 0.3);
        let mut a = Simulation::new(sys.clone(), dt).unwrap();
        let mut b = Simulation::new(sys, dt).unwrap();
        b.set_damping(0.0);
        let src = PointSource::nearest(
            &mesh,
            Vec3::splat(2.0),
            Vec3::new(1.0, 0.0, 0.0),
            Ricker::new(0.5),
        );
        a.add_source(src);
        b.add_source(src);
        a.run(100);
        b.run(100);
        assert_eq!(a.displacement(), b.displacement());
    }

    #[test]
    fn parallel_smvp_matches_serial_bitwise() {
        let (mesh, sys) = small_system();
        let dt = Simulation::stable_dt(&mesh, 2.0, 0.3);
        let src = PointSource::nearest(
            &mesh,
            Vec3::splat(2.0),
            Vec3::new(1.0, 0.0, 0.0),
            Ricker::new(0.5),
        );
        let mut serial = Simulation::new(sys.clone(), dt).unwrap();
        serial.add_source(src);
        serial.run(100);
        for threads in [1, 2, 4] {
            let mut par = Simulation::new(sys.clone(), dt).unwrap();
            par.set_parallel(threads);
            assert_eq!(par.parallelism(), threads.max(1));
            par.add_source(src);
            par.run(100);
            // Row order matches the serial kernel, so the floating-point
            // operations are identical, not merely close.
            assert_eq!(serial.displacement(), par.displacement());
        }
        // Cloning a parallel simulation keeps the configured width.
        let mut par = Simulation::new(sys, dt).unwrap();
        par.set_parallel(3);
        assert_eq!(par.clone().parallelism(), 3);
        par.set_parallel(1);
        assert_eq!(par.parallelism(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_damping_panics() {
        let (_, sys) = small_system();
        let mut sim = Simulation::new(sys, 1e-3).unwrap();
        sim.set_damping(-0.1);
    }

    #[test]
    fn time_advances_by_dt() {
        let (_, sys) = small_system();
        let mut sim = Simulation::new(sys, 0.25).unwrap();
        sim.run(4);
        assert!((sim.time() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_receiver_panics() {
        let (_, sys) = small_system();
        let mut sim = Simulation::new(sys, 1e-3).unwrap();
        sim.add_receiver(usize::MAX);
    }

    #[test]
    fn error_display() {
        assert!(SimError::ZeroMass(5).to_string().contains("node 5"));
        assert!(SimError::BadTimeStep(-1.0).to_string().contains("positive"));
    }
}
