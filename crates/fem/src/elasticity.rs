//! Linear-elasticity element matrices for constant-strain tetrahedra.
//!
//! Each Quake element contributes a 12×12 stiffness block — here organized
//! as a 4×4 grid of [`Mat3`] node-pair blocks, which is exactly how the
//! global `3n × 3n` stiffness matrix `K` of the paper is assembled.

use quake_mesh::geometry::Tetra;
use quake_sparse::dense::{Mat3, Vec3};
use std::error::Error;
use std::fmt;

/// Error produced when an element is too degenerate to integrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegenerateElement {
    /// Signed volume of the offending element.
    pub signed_volume: f64,
}

impl fmt::Display for DegenerateElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "element volume {} too small to integrate",
            self.signed_volume
        )
    }
}

impl Error for DegenerateElement {}

/// The element stiffness of a linear (constant-strain) tetrahedron for an
/// isotropic material with Lamé parameters `lambda` and `mu`:
///
/// `K_ab = V·[ λ·(∇N_a)(∇N_b)ᵀ + µ·(∇N_b)(∇N_a)ᵀ + µ·(∇N_a·∇N_b)·I ]`
///
/// Returns the 4×4 grid of 3×3 node-pair blocks.
///
/// # Errors
///
/// Returns [`DegenerateElement`] if the element volume is numerically zero.
pub fn element_stiffness(
    tet: &Tetra,
    lambda: f64,
    mu: f64,
) -> Result<[[Mat3; 4]; 4], DegenerateElement> {
    let grads = shape_gradients(tet)?;
    let volume = tet.volume();
    let mut k = [[Mat3::ZERO; 4]; 4];
    for a in 0..4 {
        for b in 0..4 {
            let ga = grads[a];
            let gb = grads[b];
            let block = Mat3::outer(ga, gb) * lambda
                + Mat3::outer(gb, ga) * mu
                + Mat3::identity() * (mu * ga.dot(gb));
            k[a][b] = block * volume;
        }
    }
    Ok(k)
}

/// The constant shape-function gradients `∇N_a` of a linear tetrahedron.
///
/// # Errors
///
/// Returns [`DegenerateElement`] if the element is (near-)flat.
pub fn shape_gradients(tet: &Tetra) -> Result<[Vec3; 4], DegenerateElement> {
    let [x0, x1, x2, x3] = tet.v;
    let j = Mat3::new([
        (x1 - x0).to_array(),
        (x2 - x0).to_array(),
        (x3 - x0).to_array(),
    ]);
    let signed_volume = j.det() / 6.0;
    let inv = j.inverse().ok_or(DegenerateElement { signed_volume })?;
    // Gradients of N1..N3 are the columns of J⁻¹ (rows of J⁻ᵀ); N0 = 1-ξ-η-ζ.
    let inv_t = inv.transpose();
    let g1 = Vec3::new(inv_t.m[0][0], inv_t.m[0][1], inv_t.m[0][2]);
    let g2 = Vec3::new(inv_t.m[1][0], inv_t.m[1][1], inv_t.m[1][2]);
    let g3 = Vec3::new(inv_t.m[2][0], inv_t.m[2][1], inv_t.m[2][2]);
    let g0 = -(g1 + g2 + g3);
    Ok([g0, g1, g2, g3])
}

/// The lumped element mass: each node receives a quarter of the element's
/// mass `ρ·V`, identically on all three degrees of freedom.
pub fn lumped_element_mass(tet: &Tetra, rho: f64) -> f64 {
    rho * tet.volume() * 0.25
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tet() -> Tetra {
        Tetra::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        )
    }

    #[test]
    fn shape_gradients_sum_to_zero() {
        let g = shape_gradients(&unit_tet()).unwrap();
        let sum = g[0] + g[1] + g[2] + g[3];
        assert!(sum.norm() < 1e-14);
    }

    #[test]
    fn shape_gradients_interpolate_linearly() {
        // ∇N_a reproduces a linear field: Σ_a f(x_a)·∇N_a = ∇f for linear f.
        let tet = Tetra::new(
            Vec3::new(0.2, 0.1, 0.0),
            Vec3::new(1.3, 0.2, 0.1),
            Vec3::new(0.1, 1.4, 0.3),
            Vec3::new(0.4, 0.2, 1.2),
        );
        let g = shape_gradients(&tet).unwrap();
        // f(x) = 2x + 3y - z  →  ∇f = (2, 3, -1).
        let f = |p: Vec3| 2.0 * p.x + 3.0 * p.y - p.z;
        let grad_f = (0..4).fold(Vec3::ZERO, |acc, a| acc + g[a] * f(tet.v[a]));
        assert!((grad_f - Vec3::new(2.0, 3.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn degenerate_tet_errors() {
        let flat = Tetra::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        );
        assert!(shape_gradients(&flat).is_err());
        assert!(element_stiffness(&flat, 1.0, 1.0).is_err());
    }

    #[test]
    fn stiffness_is_symmetric() {
        let k = element_stiffness(&unit_tet(), 2.0, 1.5).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                let kab = k[a][b];
                let kba_t = k[b][a].transpose();
                for r in 0..3 {
                    for c in 0..3 {
                        assert!(
                            (kab.m[r][c] - kba_t.m[r][c]).abs() < 1e-12,
                            "K[{a}][{b}] != K[{b}][{a}]ᵀ"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rigid_translation_produces_no_force() {
        let k = element_stiffness(&unit_tet(), 2.0, 1.5).unwrap();
        // u_a = t for all nodes → f_a = Σ_b K_ab t must vanish.
        let t = Vec3::new(0.3, -0.7, 1.1);
        for a in 0..4 {
            let f = (0..4).fold(Vec3::ZERO, |acc, b| acc + k[a][b].mul_vec(t));
            assert!(f.norm() < 1e-12, "translation produced force {f}");
        }
    }

    #[test]
    fn rigid_rotation_produces_no_force() {
        // Infinitesimal rotation u(x) = ω × x is also in the null space.
        let tet = unit_tet();
        let k = element_stiffness(&tet, 2.0, 1.5).unwrap();
        let omega = Vec3::new(0.1, 0.2, -0.3);
        for a in 0..4 {
            let f = (0..4).fold(Vec3::ZERO, |acc, b| {
                acc + k[a][b].mul_vec(omega.cross(tet.v[b]))
            });
            assert!(f.norm() < 1e-12, "rotation produced force {f}");
        }
    }

    #[test]
    fn stiffness_is_positive_semidefinite() {
        let k = element_stiffness(&unit_tet(), 2.0, 1.5).unwrap();
        // Random-ish displacements: uᵀ K u ≥ 0.
        let us = [
            [
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::ZERO,
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::splat(0.5),
            ],
            [
                Vec3::new(-1.0, 0.5, 0.2),
                Vec3::new(0.3, 0.3, -0.9),
                Vec3::ZERO,
                Vec3::ZERO,
            ],
        ];
        for u in us {
            let mut energy = 0.0;
            for a in 0..4 {
                for b in 0..4 {
                    energy += u[a].dot(k[a][b].mul_vec(u[b]));
                }
            }
            assert!(energy >= -1e-12, "negative strain energy {energy}");
        }
    }

    #[test]
    fn uniaxial_stretch_energy_matches_continuum() {
        // u(x) = (εx, 0, 0): strain energy density = (λ/2 + µ)·ε².
        let tet = unit_tet();
        let (lambda, mu, eps) = (2.0, 1.5, 0.01);
        let k = element_stiffness(&tet, lambda, mu).unwrap();
        let u: Vec<Vec3> = tet
            .v
            .iter()
            .map(|p| Vec3::new(eps * p.x, 0.0, 0.0))
            .collect();
        let mut energy = 0.0;
        for a in 0..4 {
            for b in 0..4 {
                energy += u[a].dot(k[a][b].mul_vec(u[b]));
            }
        }
        energy *= 0.5;
        let expect = (lambda / 2.0 + mu) * eps * eps * tet.volume();
        assert!(
            (energy - expect).abs() < 1e-12,
            "energy {energy} vs continuum {expect}"
        );
    }

    #[test]
    fn lumped_mass_quarters_element_mass() {
        let m = lumped_element_mass(&unit_tet(), 2000.0);
        assert!((m - 2000.0 / 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = DegenerateElement { signed_volume: 0.0 };
        assert!(e.to_string().contains("volume"));
    }
}
