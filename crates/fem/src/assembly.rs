//! Global assembly: element stiffness and mass contributions summed into
//! the block-CSR stiffness matrix `K` and the lumped mass vector.

use crate::elasticity::{element_stiffness, lumped_element_mass, DegenerateElement};
use quake_mesh::ground::Material;
use quake_mesh::mesh::TetMesh;
use quake_sparse::bcsr::{Bcsr3, Bcsr3Builder};

/// A per-element material sampler. Implemented for closures taking the
/// element index and centroid-derived material.
pub trait MaterialField {
    /// Material of element `e` of `mesh`.
    fn material(&self, mesh: &TetMesh, e: usize) -> Material;
}

/// Uniform material everywhere (tests, microbenchmarks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformMaterial(pub Material);

impl MaterialField for UniformMaterial {
    fn material(&self, _mesh: &TetMesh, _e: usize) -> Material {
        self.0
    }
}

/// Samples the material of a [`quake_mesh::ground::BasinModel`] at each
/// element centroid.
#[derive(Debug, Clone, Copy)]
pub struct GroundMaterial<'a>(pub &'a quake_mesh::ground::BasinModel);

impl MaterialField for GroundMaterial<'_> {
    fn material(&self, mesh: &TetMesh, e: usize) -> Material {
        self.0.material_at(mesh.tetra(e).centroid())
    }
}

/// The assembled system: stiffness `K` (3×3-block CSR over nodes) and the
/// lumped mass per node (identical on all 3 degrees of freedom).
#[derive(Debug, Clone)]
pub struct AssembledSystem {
    /// Global stiffness matrix (`3n × 3n` as 3×3 blocks).
    pub stiffness: Bcsr3,
    /// Lumped nodal mass (kg), length `n`.
    pub mass: Vec<f64>,
}

/// Assembles the global stiffness matrix and lumped mass vector.
///
/// # Errors
///
/// Returns [`DegenerateElement`] if any element is too flat to integrate
/// (the mesh generator's quality filter prevents this for generated meshes).
///
/// # Examples
///
/// ```
/// use quake_fem::assembly::{assemble, UniformMaterial};
/// use quake_mesh::ground::Material;
/// use quake_mesh::mesh::TetMesh;
/// use quake_sparse::dense::Vec3;
/// let mesh = TetMesh::new(
///     vec![
///         Vec3::new(0.0, 0.0, 0.0),
///         Vec3::new(1.0, 0.0, 0.0),
///         Vec3::new(0.0, 1.0, 0.0),
///         Vec3::new(0.0, 0.0, 1.0),
///     ],
///     vec![[0, 1, 2, 3]],
/// ).unwrap();
/// let mat = Material { vs: 1000.0, vp: 2000.0, rho: 2000.0 };
/// let sys = assemble(&mesh, &UniformMaterial(mat))?;
/// assert_eq!(sys.stiffness.block_rows(), 4);
/// # Ok::<(), quake_fem::elasticity::DegenerateElement>(())
/// ```
pub fn assemble<F: MaterialField>(
    mesh: &TetMesh,
    field: &F,
) -> Result<AssembledSystem, DegenerateElement> {
    let n = mesh.node_count();
    let mut builder = Bcsr3Builder::new(n);
    let mut mass = vec![0.0; n];
    for e in 0..mesh.element_count() {
        let tet = mesh.tetra(e);
        let mat = field.material(mesh, e);
        let ke = element_stiffness(&tet, mat.lambda(), mat.mu())?;
        let me = lumped_element_mass(&tet, mat.rho);
        let conn = mesh.elements()[e];
        for (a, &ia) in conn.iter().enumerate() {
            mass[ia] += me;
            for (b, &ib) in conn.iter().enumerate() {
                builder.add_block(ia, ib, ke[a][b]);
            }
        }
    }
    Ok(AssembledSystem {
        stiffness: builder.build(),
        mass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::geometry::Aabb;
    use quake_mesh::ground::UniformSizing;
    use quake_sparse::dense::Vec3;

    fn mat() -> Material {
        Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        }
    }

    fn small_mesh() -> TetMesh {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(3.0));
        generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap()
    }

    #[test]
    fn stiffness_pattern_matches_mesh_adjacency() {
        let mesh = small_mesh();
        let sys = assemble(&mesh, &UniformMaterial(mat())).unwrap();
        let pattern = mesh.pattern();
        assert_eq!(sys.stiffness.block_nnz(), pattern.block_nnz());
        assert_eq!(sys.stiffness.block_rows(), mesh.node_count());
    }

    #[test]
    fn assembled_stiffness_is_symmetric() {
        let mesh = small_mesh();
        let sys = assemble(&mesh, &UniformMaterial(mat())).unwrap();
        assert!(sys.stiffness.is_symmetric(1e-6));
    }

    #[test]
    fn total_mass_matches_density_times_volume() {
        let mesh = small_mesh();
        let sys = assemble(&mesh, &UniformMaterial(mat())).unwrap();
        let total: f64 = sys.mass.iter().sum();
        let expect = 2000.0 * mesh.total_volume();
        assert!(
            (total - expect).abs() < 1e-6 * expect,
            "mass {total} vs ρV {expect}"
        );
        assert!(sys.mass.iter().all(|&m| m > 0.0), "every node carries mass");
    }

    #[test]
    fn rigid_translation_in_global_null_space() {
        let mesh = small_mesh();
        let sys = assemble(&mesh, &UniformMaterial(mat())).unwrap();
        let x = vec![Vec3::new(1.0, -2.0, 0.5); mesh.node_count()];
        let y = sys.stiffness.spmv_alloc(&x).unwrap();
        let scale = sys
            .stiffness
            .blocks()
            .iter()
            .map(|b| b.frobenius_norm())
            .sum::<f64>();
        let residual: f64 = y.iter().map(|v| v.norm()).sum();
        assert!(
            residual < 1e-9 * scale,
            "K·translation should vanish: {residual} vs scale {scale}"
        );
    }

    #[test]
    fn ground_material_field_samples_basin() {
        use quake_mesh::ground::BasinModel;
        let ground = BasinModel::san_fernando_like();
        // One tet at the basin center surface, one deep in rock.
        let mk = |c: Vec3| {
            TetMesh::new(
                vec![
                    c,
                    c + Vec3::new(10.0, 0.0, 0.0),
                    c + Vec3::new(0.0, 10.0, 0.0),
                    c + Vec3::new(0.0, 0.0, -10.0),
                ],
                vec![[0, 1, 2, 3]],
            )
            .unwrap()
        };
        let soft_mesh = mk(ground.basin_center_surface());
        let hard_mesh = mk(Vec3::new(1000.0, 1000.0, -8000.0));
        let field = GroundMaterial(&ground);
        let soft = field.material(&soft_mesh, 0);
        let hard = field.material(&hard_mesh, 0);
        assert!(soft.vs < hard.vs);
    }

    #[test]
    fn degenerate_element_propagates() {
        let mesh = TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(3.0, 1e-320, 0.0),
            ],
            vec![[0, 1, 2, 3]],
        )
        .unwrap();
        assert!(assemble(&mesh, &UniformMaterial(mat())).is_err());
    }
}
