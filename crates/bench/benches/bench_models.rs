//! Cost of the analytic models and of the discrete-event simulator — the
//! models are meant to be cheap enough to sweep design spaces with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quake_core::machine::{BlockRegime, Network, Processor};
use quake_core::model::beta::beta_bound;
use quake_core::paperdata;
use quake_core::requirements::{half_bandwidth_series, sustained_bandwidth_series, EFFICIENCIES};
use quake_netsim::simulate::{simulate_comm_phase, SimOptions};
use quake_netsim::workload::Workload;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let instances = paperdata::figure7();
    let processors = [
        Processor::hypothetical_100mflops(),
        Processor::hypothetical_200mflops(),
    ];
    let mut group = c.benchmark_group("models");
    group.bench_function("figure9_full_sweep", |b| {
        b.iter(|| {
            black_box(sustained_bandwidth_series(
                black_box(&instances),
                &processors,
                &EFFICIENCIES,
            ))
        })
    });
    group.bench_function("figure11_full_sweep", |b| {
        b.iter(|| {
            black_box(half_bandwidth_series(
                black_box(&instances),
                &processors,
                &EFFICIENCIES,
                &[BlockRegime::Maximal, BlockRegime::CACHE_LINE],
            ))
        })
    });
    let loads: Vec<(u64, u64)> = (0..128)
        .map(|i| (10_000 + 37 * i as u64, 20 + (i % 11) as u64))
        .collect();
    group.bench_function("beta_bound_128pe", |b| {
        b.iter(|| black_box(beta_bound(black_box(&loads))))
    });
    for p in [16usize, 64, 128] {
        let w = Workload::random_sparse(p, 1_000_000, 500, 10.min(p - 1), 42);
        group.bench_with_input(BenchmarkId::new("netsim_comm_phase", p), &w, |b, w| {
            b.iter(|| {
                black_box(simulate_comm_phase(
                    black_box(w),
                    &Network::cray_t3e(),
                    SimOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
