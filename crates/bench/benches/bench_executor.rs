//! Pooled vs spawn-per-call SMVP throughput.
//!
//! The paper's applications run thousands of SMVPs over one unchanging
//! matrix, so per-call thread-spawn overhead is pure loss. This bench
//! tracks three repeated-product strategies on the same sf10 stiffness
//! matrix: spawn-per-call kernels (`rmv`/`pmv`), their pooled variants over
//! a persistent [`WorkerPool`], and the full instrumented [`BspExecutor`]
//! (which adds exchange phases and counter bookkeeping on top).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quake_app::executor::BspExecutor;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::DistributedSystem;
use quake_fem::assembly::{assemble, UniformMaterial};
use quake_mesh::ground::Material;
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_spark::kernels::{pmv, pmv_pooled, rmv, rmv_pooled};
use quake_spark::WorkerPool;
use quake_sparse::dense::Vec3;
use quake_sparse::sym::SymCsr;
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let sys = assemble(&app.mesh, &UniformMaterial(mat)).expect("assembly");
    let full = sys.stiffness.to_scalar_csr();
    let sym = SymCsr::from_csr(&full, 1e-6 * 1e9).expect("symmetric");
    let n = full.rows();
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
    let flops = full.smvp_flops();

    let mut group = c.benchmark_group("pooled_vs_spawned");
    group.throughput(Throughput::Elements(flops));
    group.sample_size(15);
    for threads in [2usize, 4] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("rmv_spawned", threads),
            &threads,
            |b, &t| b.iter(|| black_box(rmv(&sym, black_box(&x), t))),
        );
        group.bench_with_input(BenchmarkId::new("rmv_pooled", threads), &threads, |b, _| {
            b.iter(|| black_box(rmv_pooled(&sym, black_box(&x), &pool)))
        });
        group.bench_with_input(
            BenchmarkId::new("pmv_spawned", threads),
            &threads,
            |b, &t| b.iter(|| black_box(pmv(&full, black_box(&x), t))),
        );
        group.bench_with_input(BenchmarkId::new("pmv_pooled", threads), &threads, |b, _| {
            b.iter(|| black_box(pmv_pooled(&full, black_box(&x), &pool)))
        });
    }
    group.finish();

    // The full bulk-synchronous executor: local products + exchange over a
    // 4-way partition, with instrumentation on.
    let partition = RecursiveBisection::inertial()
        .partition(&app.mesh, 4)
        .expect("partition");
    let dist = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
        .expect("distributed system");
    let xv: Vec<Vec3> = (0..app.mesh.node_count())
        .map(|i| {
            let s = i as f64;
            Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
        })
        .collect();
    let mut group = c.benchmark_group("bsp_executor");
    group.throughput(Throughput::Elements(
        dist.subdomains().iter().map(|s| s.smvp_flops()).sum(),
    ));
    group.sample_size(15);
    for threads in [2usize, 4] {
        let mut exec = BspExecutor::new(&dist, threads);
        group.bench_with_input(BenchmarkId::new("bsp_step", threads), &threads, |b, _| {
            b.iter(|| black_box(exec.step(black_box(&xv))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
