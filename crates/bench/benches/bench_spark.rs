//! Spark98-style kernel comparison: sequential vs lock-based vs
//! reduction-based vs row-parallel SMVP at several thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use quake_app::family::{AppConfig, QuakeApp};
use quake_fem::assembly::{assemble, UniformMaterial};
use quake_mesh::ground::Material;
use quake_spark::kernels::{lmv, pmv, rmv, smv};
use quake_sparse::sym::SymCsr;
use std::hint::black_box;

fn bench_spark(c: &mut Criterion) {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let sys = assemble(&app.mesh, &UniformMaterial(mat)).expect("assembly");
    let full = sys.stiffness.to_scalar_csr();
    let sym = SymCsr::from_csr(&full, 1e-6 * 1e9).expect("symmetric");
    let n = full.rows();
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
    let flops = full.smvp_flops();

    let mut group = c.benchmark_group("spark_kernels");
    group.throughput(Throughput::Elements(flops));
    group.sample_size(15);
    group.bench_function("smv_sequential", |b| {
        b.iter(|| black_box(smv(&sym, black_box(&x))))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("lmv_locks", threads), &threads, |b, &t| {
            b.iter(|| black_box(lmv(&sym, black_box(&x), t)))
        });
        group.bench_with_input(
            BenchmarkId::new("rmv_reduction", threads),
            &threads,
            |b, &t| b.iter(|| black_box(rmv(&sym, black_box(&x), t))),
        );
        group.bench_with_input(
            BenchmarkId::new("pmv_rowparallel", threads),
            &threads,
            |b, &t| b.iter(|| black_box(pmv(&full, black_box(&x), t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spark);
criterion_main!(benches);
