//! Ablation: node ordering and the SMVP. Wall-clock time of the real kernel
//! under natural vs reverse-Cuthill–McKee ordering of the same stiffness
//! pattern (the cache-simulated version of this ablation is
//! `tab_sustained_tf`).

#![allow(clippy::needless_range_loop)] // indexed loops are clearer here

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quake_app::family::{AppConfig, QuakeApp};
use quake_sparse::coo::Coo;
use quake_sparse::csr::Csr;
use quake_sparse::reorder::{identity_perm, permuted_bandwidth, rcm};
use std::hint::black_box;

fn build(perm: &[usize], pattern: &quake_sparse::pattern::Pattern) -> Csr {
    let n = pattern.node_count();
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(perm[i], perm[i], 4.0).expect("in range");
    }
    for (a, b) in pattern.edges() {
        coo.push(perm[a], perm[b], -1.0).expect("in range");
        coo.push(perm[b], perm[a], -1.0).expect("in range");
    }
    coo.to_csr()
}

fn bench_reorder(c: &mut Criterion) {
    let app = QuakeApp::generate(AppConfig::new("sf5", 5.0, 8.0)).expect("mesh");
    let pattern = app.mesh.pattern();
    let n = pattern.node_count();
    let natural = build(&identity_perm(n), &pattern);
    let perm = rcm(&pattern);
    let reordered = build(&perm, &pattern);
    eprintln!(
        "pattern bandwidth: natural = {}, rcm = {} ({} nodes)",
        permuted_bandwidth(&pattern, &identity_perm(n)),
        permuted_bandwidth(&pattern, &perm),
        n
    );
    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
    let mut y = vec![0.0; n];
    let mut group = c.benchmark_group("reorder");
    group.throughput(Throughput::Elements(natural.smvp_flops()));
    group.sample_size(30);
    group.bench_function("smvp_natural_order", |b| {
        b.iter(|| {
            natural.spmv(black_box(&x), &mut y).expect("dims");
            black_box(&y);
        })
    });
    group.bench_function("smvp_rcm_order", |b| {
        b.iter(|| {
            reordered.spmv(black_box(&x), &mut y).expect("dims");
            black_box(&y);
        })
    });
    group.bench_function("rcm_compute_cost", |b| {
        b.iter(|| black_box(rcm(black_box(&pattern))))
    });
    group.finish();

    // End-to-end ablation: the same distributed system stepped by the BSP
    // executor with and without the per-subdomain RCM pre-pass. The
    // pre-pass permutes each PE's stiffness and gather list once at
    // construction; steps then traverse a banded local matrix.
    bench_executor_rcm(c, &app);
}

fn bench_executor_rcm(c: &mut Criterion, app: &QuakeApp) {
    use quake_app::executor::BspExecutor;
    use quake_fem::assembly::UniformMaterial;
    use quake_mesh::ground::Material;
    use quake_partition::geometric::{Partitioner, RecursiveBisection};
    use quake_sparse::dense::Vec3;

    let partition = RecursiveBisection::inertial()
        .partition(&app.mesh, 4)
        .expect("partition");
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let system = quake_app::DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
        .expect("system");
    let n = app.mesh.node_count();
    let x: Vec<Vec3> = (0..n)
        .map(|i| {
            let s = i as f64;
            Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
        })
        .collect();
    let mut y = vec![Vec3::ZERO; n];

    let mut group = c.benchmark_group("executor_rcm");
    group.sample_size(20);
    let mut natural = BspExecutor::new(&system, 2);
    group.bench_function("bsp_step_natural_order", |b| {
        b.iter(|| {
            natural.step_into(black_box(&x), &mut y);
            black_box(&y);
        })
    });
    let mut renumbered = BspExecutor::with_rcm(&system, 2);
    group.bench_function("bsp_step_rcm_order", |b| {
        b.iter(|| {
            renumbered.step_into(black_box(&x), &mut y);
            black_box(&y);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reorder);
criterion_main!(benches);
