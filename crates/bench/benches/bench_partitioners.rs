//! Ablation: partitioner cost and quality — recursive coordinate bisection
//! vs inertial bisection vs the random/linear baselines. Quality (C_max,
//! B_max, shared nodes) is printed once; Criterion times the partitioning
//! itself.

use criterion::{criterion_group, criterion_main, Criterion};
use quake_app::family::{AppConfig, QuakeApp};
use quake_partition::geometric::{
    LinearPartition, Partitioner, RandomPartition, RecursiveBisection,
};
use quake_partition::metrics::PartitionQuality;
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let mesh = &app.mesh;
    let strategies: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("rcb", Box::new(RecursiveBisection::coordinate())),
        ("rib", Box::new(RecursiveBisection::inertial())),
        ("random", Box::new(RandomPartition { seed: 1 })),
        ("linear", Box::new(LinearPartition)),
    ];
    // Print the quality comparison once, so bench logs carry the ablation.
    eprintln!(
        "partition quality at p=16 (mesh: {} elements):",
        mesh.element_count()
    );
    for (name, strat) in &strategies {
        let part = strat.partition(mesh, 16).expect("partition");
        eprintln!("  {name:>7}: {}", PartitionQuality::measure(mesh, &part));
    }
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    for (name, strat) in &strategies {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(strat.partition(black_box(mesh), 16).expect("partition")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
