//! Ablation: SMVP kernel storage formats on the synthetic Quake stiffness
//! matrix — scalar CSR vs 3×3-block CSR vs symmetric (upper-triangle)
//! storage. The paper's `F = 2m` flop count is identical for all three; the
//! formats trade index overhead against scattered writes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quake_app::family::{AppConfig, QuakeApp};
use quake_fem::assembly::{assemble, UniformMaterial};
use quake_mesh::ground::Material;
use quake_sparse::dense::Vec3;
use quake_sparse::sym::SymCsr;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let sys = assemble(&app.mesh, &UniformMaterial(mat)).expect("assembly");
    let bcsr = sys.stiffness;
    let scalar = bcsr.to_scalar_csr();
    let sym = SymCsr::from_csr(&scalar, 1e-6 * 1e9).expect("symmetric");
    let n = bcsr.block_rows();
    let x_blocks: Vec<Vec3> = (0..n)
        .map(|i| Vec3::new(i as f64, (i % 7) as f64, 1.0))
        .collect();
    let x_flat: Vec<f64> = x_blocks.iter().flat_map(|v| v.to_array()).collect();
    let flops = bcsr.smvp_flops();

    let mut group = c.benchmark_group("smvp_kernels");
    group.throughput(Throughput::Elements(flops));
    group.sample_size(20);

    let mut y_blocks = vec![Vec3::ZERO; n];
    group.bench_function("bcsr3_block", |b| {
        b.iter(|| {
            bcsr.spmv(black_box(&x_blocks), &mut y_blocks)
                .expect("dims");
            black_box(&y_blocks);
        })
    });

    let mut y_flat = vec![0.0; 3 * n];
    group.bench_function("bcsr3_flat", |b| {
        b.iter(|| {
            bcsr.spmv_flat(black_box(&x_flat), &mut y_flat)
                .expect("dims");
            black_box(&y_flat);
        })
    });

    group.bench_function("scalar_csr", |b| {
        b.iter(|| {
            scalar.spmv(black_box(&x_flat), &mut y_flat).expect("dims");
            black_box(&y_flat);
        })
    });

    group.bench_function("symmetric_csr", |b| {
        b.iter(|| {
            sym.spmv(black_box(&x_flat), &mut y_flat).expect("dims");
            black_box(&y_flat);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
