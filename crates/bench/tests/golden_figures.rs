//! Golden/smoke tests for every experiment binary.
//!
//! Each `fig*`/`tab_*` binary in `src/bin/` is a printer over a
//! library-callable entry point (`quake_bench::figures` or the underlying
//! `quake_core`/`quake_netsim`/`quake_app` function). These tests
//! regenerate each figure's quantities at a reduced scale and assert the
//! *shapes* the paper's argument rests on — monotonicities, bounds, and
//! cross-figure orderings — rather than exact values, which depend on the
//! synthetic mesh scale.

use quake_app::family::{AppConfig, QuakeApp};
use quake_bench::figures;
use quake_core::machine::{BlockRegime, Network, Processor};
use quake_core::model::eq1::required_tc;
use quake_core::model::eq2::latency_at_infinite_burst;
use quake_core::model::scaling_law::ScalingLaw;
use quake_core::paperdata;
use quake_core::requirements::{
    bisection_series, half_bandwidth_series, sustained_bandwidth_series, tradeoff_curve,
    EFFICIENCIES,
};
use quake_netsim::simulate::SimOptions;
use quake_netsim::sweep::{efficiency_surface, log_space};
use std::sync::OnceLock;

/// Small test parts sweep (the binaries default to 4,8,16,32).
const PARTS: [usize; 2] = [2, 4];

fn sf10() -> &'static QuakeApp {
    static APP: OnceLock<QuakeApp> = OnceLock::new();
    APP.get_or_init(|| QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh"))
}

fn sf5() -> &'static QuakeApp {
    static APP: OnceLock<QuakeApp> = OnceLock::new();
    APP.get_or_init(|| QuakeApp::generate(AppConfig::new("sf5", 5.0, 10.0)).expect("mesh"))
}

fn sf10_analyzed() -> &'static Vec<quake_app::AnalyzedInstance> {
    static TAB: OnceLock<Vec<quake_app::AnalyzedInstance>> = OnceLock::new();
    TAB.get_or_init(|| figures::smvp_properties(sf10(), &PARTS))
}

// --- fig02_mesh_sizes ---

#[test]
fn fig02_paper_meshes_grow_roughly_8x_per_period_halving() {
    let rows = paperdata::figure2();
    assert_eq!(rows.len(), 4);
    for w in rows.windows(2) {
        let growth = w[1].nodes as f64 / w[0].nodes as f64;
        assert!(
            (4.0..16.0).contains(&growth),
            "{} -> {}: growth {growth:.1} far from the paper's ≈8x",
            w[0].app,
            w[1].app
        );
        assert!(w[1].elements > w[0].elements);
        assert!(w[1].edges > w[0].edges);
    }
}

#[test]
fn fig02_synthetic_family_preserves_growth_ordering() {
    // sf5 resolves half the period of sf10; even generated at a *smaller*
    // domain scale (10 vs 8) it must out-size sf10 per the n ~ period^-3 law.
    let rows = figures::mesh_size_rows(&[sf10().clone(), sf5().clone()]);
    assert_eq!(rows.len(), 2);
    let growth = figures::growth_factors(&rows);
    assert_eq!(growth.len(), 1);
    assert!(
        growth[0] > 1.0,
        "sf5 must out-size sf10, got growth {:.2}",
        growth[0]
    );
    for r in &rows {
        assert!(r.nodes > 0 && r.elements > 0 && r.edges > 0);
    }
}

// --- fig06_beta_bounds ---

#[test]
fn fig06_beta_stays_within_its_proved_interval() {
    for row in paperdata::FIGURE6_BETA {
        for b in row {
            assert!((1.0..=2.0).contains(&b), "paper beta {b} outside [1,2]");
        }
    }
    let tables = vec![sf10_analyzed().clone()];
    let matrix = figures::beta_matrix(&tables);
    assert_eq!(matrix.len(), PARTS.len());
    for row in &matrix {
        for &b in row {
            assert!(
                (1.0..=2.0 + 1e-12).contains(&b),
                "synthetic beta {b} outside [1,2]"
            );
        }
    }
}

// --- fig07_smvp_properties ---

#[test]
fn fig07_ratio_falls_and_counters_keep_their_invariants_as_p_grows() {
    let analyzed = sf10_analyzed();
    assert_eq!(analyzed.len(), PARTS.len());
    let mut prev_ratio = f64::INFINITY;
    for a in analyzed.iter() {
        let i = &a.instance;
        assert!(i.f > 0, "{}: empty busiest PE", i.label());
        // Words are 2·3·shared-nodes: always even and divisible by 3.
        assert_eq!(
            i.c_max % 6,
            0,
            "{}: C_max {} not divisible by 6",
            i.label(),
            i.c_max
        );
        let ratio = i.comp_comm_ratio();
        assert!(
            ratio < prev_ratio,
            "{}: F/C_max must fall as p grows ({ratio:.0} !< {prev_ratio:.0})",
            i.label()
        );
        prev_ratio = ratio;
    }
}

// --- fig08_bisection_bandwidth ---

#[test]
fn fig08_bisection_requirement_rises_with_efficiency_and_pe_speed() {
    let inputs = figures::bisection_inputs(sf10(), &PARTS);
    assert_eq!(inputs.len(), PARTS.len());
    for (_, v) in &inputs {
        assert!(*v > 0, "bisection volume must be positive");
    }
    let pes = [
        Processor::hypothetical_100mflops(),
        Processor::hypothetical_200mflops(),
    ];
    let series = bisection_series(&inputs, &pes, &EFFICIENCIES);
    // Chunks of |EFFICIENCIES| per (instance × processor), E ascending.
    for chunk in series.chunks(EFFICIENCIES.len()) {
        for w in chunk.windows(2) {
            assert!(
                w[1].bandwidth_bytes > w[0].bandwidth_bytes,
                "required bisection bandwidth must rise with E"
            );
        }
    }
    // Doubling PE speed doubles the requirement at matching (instance, E).
    let slow = bisection_series(&inputs, &[pes[0]], &EFFICIENCIES);
    let fast = bisection_series(&inputs, &[pes[1]], &EFFICIENCIES);
    for (s, f) in slow.iter().zip(&fast) {
        assert!(f.bandwidth_bytes > s.bandwidth_bytes);
    }
}

#[test]
fn fig08_bisection_stays_below_aggregate_per_pe_requirement() {
    // The paper's §4.2 conclusion: the bisection is not the constraint —
    // the aggregate per-PE requirement (p × Figure 9's value) dwarfs it.
    let inputs = figures::bisection_inputs(sf10(), &PARTS);
    let instances: Vec<_> = inputs.iter().map(|(i, _)| i.clone()).collect();
    let pe = [Processor::hypothetical_200mflops()];
    let bisect = bisection_series(&inputs, &pe, &[0.9]);
    let per_pe = sustained_bandwidth_series(&instances, &pe, &[0.9]);
    for (b, s) in bisect.iter().zip(&per_pe) {
        let aggregate = s.bandwidth_bytes * b.subdomains as f64;
        assert!(
            b.bandwidth_bytes < aggregate,
            "p={}: bisection {:.1e} must stay below aggregate per-PE {:.1e}",
            b.subdomains,
            b.bandwidth_bytes,
            aggregate
        );
    }
}

// --- fig09_pe_bandwidth ---

#[test]
fn fig09_required_tc_falls_as_efficiency_target_rises() {
    let pe = Processor::hypothetical_200mflops();
    for inst in paperdata::figure7_app("sf2") {
        let mut prev = f64::INFINITY;
        for &e in &EFFICIENCIES {
            let tc = required_tc(&inst, e, pe.t_f);
            assert!(
                tc < prev,
                "{}: higher E must tighten the per-word budget",
                inst.label()
            );
            prev = tc;
        }
    }
}

#[test]
fn fig09_synthetic_requirement_rises_with_p_and_matches_units() {
    let instances = figures::instances_of(sf10_analyzed());
    let pe = [Processor::hypothetical_200mflops()];
    let series = sustained_bandwidth_series(&instances, &pe, &[0.9]);
    assert_eq!(series.len(), instances.len());
    for w in series.windows(2) {
        assert!(
            w[1].bandwidth_bytes > w[0].bandwidth_bytes,
            "F/C_max falls with p, so required bandwidth must rise"
        );
    }
    for s in &series {
        assert!(s.bandwidth_bytes.is_finite() && s.bandwidth_bytes > 0.0);
    }
}

// --- fig10_tradeoff_curves ---

#[test]
fn fig10_latency_budget_grows_with_burst_bandwidth_and_shrinks_with_e() {
    let inst = paperdata::figure7_instance("sf2", 128).expect("paper row");
    let pe = Processor::hypothetical_200mflops();
    let bws: Vec<f64> = (0..=12).map(|i| 1e6 * 10f64.powf(i as f64 / 3.0)).collect();
    for regime in [BlockRegime::Maximal, BlockRegime::CACHE_LINE] {
        let lo = tradeoff_curve(&inst, 0.5, &pe, regime, &bws);
        let hi = tradeoff_curve(&inst, 0.9, &pe, regime, &bws);
        for w in hi.points.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "more burst bandwidth cannot shrink the T_l budget"
            );
        }
        for ((_, tl_lo), (_, tl_hi)) in lo.points.iter().zip(&hi.points) {
            assert!(
                tl_hi <= tl_lo,
                "E=0.9 must allow no more latency than E=0.5"
            );
        }
        // Every feasible point stays below the infinite-burst asymptote.
        let tc = required_tc(&inst, 0.9, pe.t_f);
        let ceiling = latency_at_infinite_burst(&inst, tc, regime);
        for &(_, tl) in &hi.points {
            assert!(tl <= ceiling * (1.0 + 1e-9));
        }
    }
}

#[test]
fn fig10_cache_line_blocks_demand_lower_latency_than_maximal() {
    let inst = paperdata::figure7_instance("sf2", 128).expect("paper row");
    let pe = Processor::hypothetical_200mflops();
    let bws = [1e9];
    let maximal = tradeoff_curve(&inst, 0.9, &pe, BlockRegime::Maximal, &bws);
    let fixed = tradeoff_curve(&inst, 0.9, &pe, BlockRegime::CACHE_LINE, &bws);
    match (maximal.points.first(), fixed.points.first()) {
        (Some(&(_, tl_max)), Some(&(_, tl_fix))) => assert!(
            tl_fix < tl_max,
            "4-word blocks ({tl_fix:.1e}) must demand lower latency than maximal ({tl_max:.1e})"
        ),
        _ => panic!("1 GB/s must be feasible for sf2/128 at E=0.9"),
    }
}

// --- fig11_half_bandwidth ---

#[test]
fn fig11_half_bandwidth_points_are_positive_and_regime_ordered() {
    let sf2 = paperdata::figure7_app("sf2");
    let pes = [Processor::hypothetical_200mflops()];
    let maximal = half_bandwidth_series(&sf2, &pes, &EFFICIENCIES, &[BlockRegime::Maximal]);
    let fixed = half_bandwidth_series(&sf2, &pes, &EFFICIENCIES, &[BlockRegime::CACHE_LINE]);
    assert_eq!(maximal.len(), sf2.len() * EFFICIENCIES.len());
    for (m, f) in maximal.iter().zip(&fixed) {
        assert!(m.point.t_l > 0.0 && m.point.burst_bandwidth_bytes() > 0.0);
        assert!(
            f.point.t_l < m.point.t_l,
            "{} E={}: fixed-block half-latency must be tighter",
            m.label,
            m.efficiency
        );
    }
}

// --- tab_efficiency_surface ---

#[test]
fn tab_efficiency_surface_degrades_with_latency() {
    let workload = sf10_analyzed().last().expect("rows").workload();
    let pe = Processor::hypothetical_200mflops();
    let latencies = log_space(1e-6, 1e-3, 3);
    let bursts = log_space(1e8, 1e9, 2);
    let cells = efficiency_surface(&workload, &pe, &latencies, &bursts, SimOptions::default());
    assert_eq!(cells.len(), latencies.len() * bursts.len());
    for c in &cells {
        assert!(
            (0.0..=1.0).contains(&c.efficiency),
            "E={} out of range",
            c.efficiency
        );
    }
    // At fixed burst bandwidth, growing block latency cannot help.
    for (bi, _) in bursts.iter().enumerate() {
        let col: Vec<f64> = latencies
            .iter()
            .enumerate()
            .map(|(li, _)| cells[li * bursts.len() + bi].efficiency)
            .collect();
        for w in col.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "efficiency rose with latency: {col:?}"
            );
        }
    }
}

// --- tab_exflow_comparison ---

#[test]
fn tab_exflow_derived_aggregates_reproduce_the_published_row() {
    let inst = paperdata::figure7_instance("sf2", 128).expect("paper row");
    let derived = figures::comm_summary_from_instance(&inst, paperdata::figure2()[2].nodes);
    let published = paperdata::QUAKE_SF2_128;
    // Memory per PE comes from the 1.2 KB/node rule of thumb while the
    // paper quotes its own measurement — only same order of magnitude.
    assert!(
        derived.data_mb_per_pe > 0.5 * published.data_mb_per_pe
            && derived.data_mb_per_pe < 4.0 * published.data_mb_per_pe,
        "data/PE: derived {:.2} vs published {:.2}",
        derived.data_mb_per_pe,
        published.data_mb_per_pe
    );
    // The communication aggregates are exact formulas over the Figure 7
    // row; they must land within 25% of the published values.
    for (got, want, what) in [
        (
            derived.comm_kb_per_mflop,
            published.comm_kb_per_mflop,
            "comm/MFLOP",
        ),
        (
            derived.messages_per_mflop,
            published.messages_per_mflop,
            "msgs/MFLOP",
        ),
        (derived.avg_message_kb, published.avg_message_kb, "avg msg"),
    ] {
        assert!(
            (got - want).abs() <= 0.25 * want,
            "{what}: derived {got:.2} vs published {want:.2}"
        );
    }
}

// --- tab_model_validation ---

#[test]
fn tab_model_validation_brackets_simulation_by_beta() {
    let a = sf10_analyzed().last().expect("rows");
    let pe = Processor::hypothetical_200mflops();
    let net = Network {
        name: "test",
        t_l: 2e-6,
        t_w: 13e-9,
    };
    let row = quake_netsim::validate::validate(&a.workload(), &pe, &net, SimOptions::default());
    assert!(row.sim_t_comm > 0.0);
    assert!(row.exact_t_comm > 0.0);
    assert!(
        row.model_t_comm >= row.exact_t_comm * (1.0 - 1e-12),
        "model below lower bound"
    );
    assert!(
        row.model_t_comm <= row.beta * row.exact_t_comm * (1.0 + 1e-9),
        "model {:.3e} exceeds beta x exact {:.3e}",
        row.model_t_comm,
        row.beta * row.exact_t_comm
    );
    assert!(row.sim_efficiency > 0.0 && row.sim_efficiency <= 1.0);
    assert!(row.model_efficiency > 0.0 && row.model_efficiency <= 1.0);
}

// --- tab_partitioner_ablation ---

#[test]
fn tab_ablation_geometric_partitioner_beats_random() {
    let strategies = figures::ablation_strategies();
    let subset: Vec<_> = strategies
        .into_iter()
        .filter(|(name, _)| *name == "rib" || *name == "random")
        .collect();
    let rows = figures::partitioner_ablation(
        &sf10().mesh,
        4,
        &subset,
        &Processor::hypothetical_200mflops(),
    );
    assert_eq!(rows.len(), 4, "two strategies x (plain, refined)");
    let rib = rows.iter().find(|r| r.label == "rib").expect("rib row");
    let random = rows
        .iter()
        .find(|r| r.label == "random")
        .expect("random row");
    assert!(
        rib.instance.c_max < random.instance.c_max,
        "geometric partitioner must cut C_max ({} !< {})",
        rib.instance.c_max,
        random.instance.c_max
    );
    assert!(rib.required_bandwidth < random.required_bandwidth);
    assert!(rib.shared_nodes < random.shared_nodes);
    for r in &rows {
        assert!(r.replication >= 1.0);
        assert!((1.0..=2.0 + 1e-12).contains(&r.beta));
    }
}

// --- tab_runtime_projection ---

#[test]
fn tab_runtime_projection_better_network_means_higher_efficiency() {
    let pe = Processor::cray_t3e();
    let slow = Network {
        name: "slow",
        t_l: 60e-6,
        t_w: 200e-9,
    };
    let fast = Network {
        name: "fast",
        t_l: 2e-6,
        t_w: 13.3e-9,
    };
    let analyzed = sf10_analyzed();
    let rows_slow = quake_app::scaling_study(analyzed, &pe, &slow, BlockRegime::Maximal);
    let rows_fast = quake_app::scaling_study(analyzed, &pe, &fast, BlockRegime::Maximal);
    assert_eq!(rows_slow.len(), analyzed.len());
    for (s, f) in rows_slow.iter().zip(&rows_fast) {
        assert!(s.run_seconds > 0.0 && f.run_seconds > 0.0);
        assert!((0.0..=1.0).contains(&s.efficiency));
        assert!(
            f.efficiency > s.efficiency,
            "p={}: faster network must raise E ({:.3} !> {:.3})",
            s.parts,
            f.efficiency,
            s.efficiency
        );
        assert!(f.run_seconds < s.run_seconds);
    }
}

// --- tab_scaling_law ---

#[test]
fn tab_scaling_law_fits_the_cube_root_growth() {
    fn paper_nodes(inst: &quake_core::characterize::SmvpInstance) -> u64 {
        paperdata::figure2()
            .iter()
            .find(|r| r.app == inst.app)
            .expect("known app")
            .nodes
    }
    let law = ScalingLaw::fit(&paperdata::figure7(), paper_nodes);
    assert!(law.a > 0.0 && law.b > 0.0);
    // 10x the nodes raises F/C_max by 10^(1/3) ≈ 2.15.
    let r1 = law.predict_ratio(378_747, 128);
    let r10 = law.predict_ratio(3_787_470, 128);
    let boost = r10 / r1;
    assert!(
        (1.9..=2.4).contains(&boost),
        "10x nodes raised ratio by {boost:.2}, expected ≈ 2.15"
    );
}

#[test]
fn tab_scaling_law_iso_efficiency_orders_machines_correctly() {
    fn paper_nodes(inst: &quake_core::characterize::SmvpInstance) -> u64 {
        paperdata::figure2()
            .iter()
            .find(|r| r.app == inst.app)
            .expect("known app")
            .nodes
    }
    let law = ScalingLaw::fit(&paperdata::figure7(), paper_nodes);
    let cases = [
        (Processor::hypothetical_100mflops(), 66.7e-9),
        (Processor::hypothetical_200mflops(), 66.7e-9),
        (Processor::hypothetical_200mflops(), 26.7e-9),
    ];
    let rows = figures::iso_efficiency_rows(&law, &cases, 0.9);
    assert_eq!(rows.len(), 3);
    // Faster PEs on the same network need more nodes per PE...
    assert!(rows[1].nodes_per_pe > rows[0].nodes_per_pe);
    // ...and a faster network relaxes the requirement.
    assert!(rows[2].nodes_per_pe < rows[1].nodes_per_pe);
    for r in &rows {
        assert!(r.required_ratio > 0.0 && r.nodes_per_pe > 0.0);
    }
}

// --- tab_sustained_tf ---

#[test]
fn tab_sustained_tf_rcm_reduces_bandwidth_and_never_slows_the_smvp() {
    let cycle = 1.0 / 300e6;
    let rows = figures::sustained_tf_rows(&sf10().mesh, cycle, &["natural", "rcm"]);
    assert_eq!(rows.len(), 2);
    let natural = &rows[0];
    let reordered = &rows[1];
    assert!(
        reordered.pattern_bandwidth < natural.pattern_bandwidth,
        "RCM must reduce pattern bandwidth ({} !< {})",
        reordered.pattern_bandwidth,
        natural.pattern_bandwidth
    );
    assert!(
        reordered.estimate.t_f <= natural.estimate.t_f * (1.0 + 1e-9),
        "RCM must not slow the SMVP"
    );
    for r in &rows {
        assert!(r.estimate.t_f >= cycle, "T_f cannot beat the raw flop time");
        assert!(r.estimate.mflops <= 300.0 + 1e-9, "cannot exceed peak");
        assert!((0.0..=1.0).contains(&r.estimate.memory_fraction));
    }
}
