//! Distributed-trace conformance: the merged multi-process trace a
//! `--transport proc` run emits must agree with the in-process
//! shared-memory trace on *logical* span structure per PE, align into one
//! coherent timeline, pair every cross-shard flow arrow, and feed a
//! profiler whose rows sum exactly to the measured step walls — and under
//! wire-stall chaos the profiler must name the stalled shard as the step
//! straggler from its victims' testimony alone.
//!
//! `harness = false`: the proc backend re-executes this binary as shard
//! children via `current_exe()`, and the shard hook must run before any
//! other code. A custom `main` routes children first, then runs the
//! sections sequentially.

use quake_app::executor::BspExecutor;
use quake_app::transport::run;
use quake_app::transport::wire::RunSpec;
use quake_app::transport::{proc, TransportKind};
use quake_bench::trace::{validate_chrome_trace, validate_prometheus};
use quake_core::telemetry::profile::{ProfileOptions, ProfileReport};
use quake_core::telemetry::{
    merged_chrome_trace, merged_telemetry, DriftConfig, PhaseId, TelemetryConfig,
};
use std::collections::BTreeMap;

const PARTS: usize = 5;
const STEPS: u64 = 4;

fn base_spec(case: u64, shards: usize) -> RunSpec {
    RunSpec {
        parts: PARTS,
        steps: STEPS,
        threads: 2,
        shards,
        trace: true,
        span_capacity: 8192,
        x_kind: "rng".to_string(),
        x_seed: 500 + case,
        ..RunSpec::default()
    }
}

/// Logical span structure: how many spans of each deterministic phase
/// each (step, PE) lane carries. Wait/barrier spans are timing-dependent
/// (emitted only when time was actually lost) and excluded; the
/// compute/exchange/post skeleton is schedule-determined and must be
/// identical across transports.
fn span_structure(
    spans: &[quake_core::telemetry::Span],
    pe_lo: u32,
    pe_hi: u32,
) -> BTreeMap<(u64, u32, &'static str), usize> {
    let mut out = BTreeMap::new();
    for s in spans {
        if !(pe_lo..pe_hi).contains(&s.pe) {
            continue;
        }
        let name = match s.phase {
            PhaseId::Compute | PhaseId::Exchange | PhaseId::Post => s.phase.name(),
            _ => continue,
        };
        *out.entry((s.step, s.pe, name)).or_insert(0) += 1;
    }
    out
}

/// One spec, three verdicts: structure parity with the shared transport,
/// a valid merged artifact pair, and exact profiler attribution.
fn merged_trace_conforms(shards: usize) {
    let spec = base_spec(shards as u64, shards);
    let label = format!("merged-trace (shards {shards})");
    let built = run::build(&spec).unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
    let out = run::run_with(TransportKind::Proc, &spec, &built)
        .unwrap_or_else(|e| panic!("{label}: proc run failed: {e}"));

    // Every shard delivered exactly one generation-0 snapshot, and the
    // owned PE ranges partition 0..parts.
    assert_eq!(out.shard_telemetry.len(), shards, "{label}: snapshots");
    let mut next_pe = 0u32;
    for (k, st) in out.shard_telemetry.iter().enumerate() {
        assert_eq!(st.snap.ctx.shard as usize, k, "{label}: shard order");
        assert_eq!(st.snap.pe_lo, next_pe, "{label}: PE ranges must tile");
        assert!(st.snap.pe_hi > st.snap.pe_lo);
        assert_eq!(st.snap.steps, STEPS);
        next_pe = st.snap.pe_hi;
    }
    assert_eq!(next_pe as usize, PARTS, "{label}: PE ranges cover all PEs");
    let run_id = out.shard_telemetry[0].snap.ctx.run_id;
    assert!(
        out.shard_telemetry
            .iter()
            .all(|s| s.snap.ctx.run_id == run_id),
        "{label}: one run id across the ensemble"
    );

    // The same problem traced in-process over the shared transport: the
    // logical span skeleton per (step, PE) must match the union of the
    // shard snapshots exactly.
    let mut exec = BspExecutor::new(&built.system, spec.threads);
    exec.enable_telemetry(TelemetryConfig {
        span_capacity: spec.span_capacity,
        drift: Some(DriftConfig {
            min_time_s: 1.0,
            ..DriftConfig::default()
        }),
        ..TelemetryConfig::default()
    });
    let y_shared = exec.run(&built.x, STEPS);
    assert!(
        y_shared.len() == out.y.len()
            && y_shared.iter().zip(&out.y).all(|(u, v)| (
                u.x.to_bits(),
                u.y.to_bits(),
                u.z.to_bits()
            ) == (
                v.x.to_bits(),
                v.y.to_bits(),
                v.z.to_bits()
            )),
        "{label}: traced proc output diverged from traced shared"
    );
    let telemetry = exec.telemetry().expect("telemetry armed");
    let reference: Vec<_> = telemetry.spans.iter().copied().collect();
    let shared_structure = span_structure(&reference, 0, PARTS as u32);
    let mut proc_structure = BTreeMap::new();
    for st in &out.shard_telemetry {
        proc_structure.extend(span_structure(&st.snap.spans, st.snap.pe_lo, st.snap.pe_hi));
    }
    assert_eq!(
        shared_structure, proc_structure,
        "{label}: logical span structure diverged between transports"
    );

    // Aligned timestamps are monotonic per track: within each shard's
    // clock, on every PE lane, step s+1 work starts after step s work.
    for st in &out.shard_telemetry {
        let mut first_start: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        for s in &st.snap.spans {
            let e = first_start.entry((s.pe, s.step)).or_insert(u64::MAX);
            *e = (*e).min(s.start_ns);
        }
        let mut prev: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for (&(pe, step), &start) in &first_start {
            if let Some(&(pstep, pstart)) = prev.get(&pe) {
                assert!(
                    step > pstep && start >= pstart,
                    "{label}: shard {} PE {pe}: step {step} starts at {start} \
                     before step {pstep} at {pstart}",
                    st.snap.ctx.shard
                );
            }
            prev.insert(pe, (step, start));
        }
    }

    // The merged Chrome trace validates, shows one process track per
    // shard, and pairs every flow arrow.
    let trace = merged_chrome_trace("distributed-trace", &out.shard_telemetry, &[]);
    let summary = validate_chrome_trace(&trace)
        .unwrap_or_else(|e| panic!("{label}: merged trace invalid: {e}"));
    assert!(
        summary.pids.len() >= shards,
        "{label}: expected ≥{shards} process tracks, saw {}",
        summary.pids.len()
    );
    assert!(
        summary.flow_starts > 0,
        "{label}: no cross-shard flow arrows in the merged trace"
    );
    assert_eq!(summary.flow_starts, summary.flow_finishes);
    assert!(summary.has_span("compute") && summary.has_span("exchange"));

    // The merged Prometheus exposition validates too.
    let metrics = merged_telemetry(&out.shard_telemetry).to_prometheus();
    validate_prometheus(&metrics)
        .unwrap_or_else(|e| panic!("{label}: merged exposition invalid: {e}"));

    // Profiler attribution: one row per step, each summing to its
    // measured step wall exactly, stragglers real PEs.
    let report = ProfileReport::build(
        &out.shard_telemetry,
        &ProfileOptions {
            loads: Vec::new(),
            link: Some((out.link.t_l, out.link.t_w)),
            overlap: false,
        },
    );
    assert_eq!(report.steps.len(), STEPS as usize, "{label}: profile rows");
    for row in &report.steps {
        assert_eq!(
            row.rungs.total_ns(),
            row.wall_ns,
            "{label}: step {} rungs do not sum to the wall",
            row.step
        );
        assert!((row.straggler_pe as usize) < PARTS);
    }
    let table = report.render_table();
    assert!(table.contains("critical-path attribution"), "{table}");
    println!(
        "{label}: structure parity, {} flows paired, {} process tracks, profile exact",
        summary.flow_starts,
        summary.pids.len()
    );
}

/// Under seeded wire chaos that injects a hung-peer stall, the profiler
/// must name the stalled shard as the straggler of the stalled step —
/// even though that shard's own span ring died with its killed process:
/// the victims' recorded acquire waits testify against it.
fn stall_chaos_blames_the_stalled_shard() {
    for seed in 0..8u64 {
        let mut spec = base_spec(40 + seed, 3);
        spec.steps = 5;
        spec.recovery = "restart".to_string();
        spec.conn_timeout = 1.0;
        spec.restart_budget = 5;
        spec.wire_fault_rate = 0.3;
        spec.wire_fault_seed = 7400 + seed;
        let built = run::build(&spec).expect("chaos fixture builds");
        let out = run::run_with(TransportKind::Proc, &spec, &built)
            .unwrap_or_else(|e| panic!("stall seed {seed}: proc run failed: {e}"));
        let stalled: Vec<usize> = out
            .incidents
            .iter()
            .filter(|i| i.kind == "wire-stall")
            .map(|i| i.shard)
            .collect();
        if stalled.is_empty() {
            continue; // this seed drew no stall; try the next
        }
        let report = ProfileReport::build(&out.shard_telemetry, &ProfileOptions::default());
        let worst = report
            .steps
            .iter()
            .max_by_key(|r| r.wall_ns)
            .expect("profiled steps");
        assert!(
            stalled.contains(&(worst.straggler_shard as usize)),
            "stall seed {seed}: stalled shards {stalled:?}, but step {} (wall {} ns) \
             blames shard {}\n{}",
            worst.step,
            worst.wall_ns,
            worst.straggler_shard,
            report.render_table()
        );
        // The blame came from observed wait, which dwarfs any busy time.
        assert!(
            worst.straggler_busy_ns > 100_000_000,
            "stall seed {seed}: blamed wait {} ns is too small for a stall",
            worst.straggler_busy_ns
        );
        println!(
            "stall chaos: seed {seed} stalled shard(s) {stalled:?}, profiler blamed shard {} \
             with {} ns observed wait",
            worst.straggler_shard, worst.straggler_busy_ns
        );
        return;
    }
    panic!("no seed in the scan produced a wire stall; widen the scan");
}

fn main() {
    proc::shard_host_hook();
    merged_trace_conforms(2);
    merged_trace_conforms(3);
    stall_chaos_blames_the_stalled_shard();
    println!("distributed trace: all sections passed");
}
