//! Library-callable entry points for the experiment binaries.
//!
//! Each `fig*`/`tab_*` binary is a thin printer over one of these
//! functions, so the quantities behind every figure and table can be
//! regenerated — and shape-checked — from tests without spawning
//! processes or parsing stdout. All entry points are parameterized by
//! scale/parts explicitly; only the binaries read `QUAKE_SCALE` /
//! `QUAKE_PARTS` (via [`crate::scale`] / [`crate::subdomain_counts`]).

use quake_app::characterize::AnalyzedInstance;
use quake_app::family::QuakeApp;
use quake_core::characterize::{AppCommSummary, SmvpInstance};
use quake_core::machine::Processor;
use quake_core::model::eq1::required_sustained_bandwidth;
use quake_memsim::hierarchy::Hierarchy;
use quake_memsim::trace::{estimate_tf, TfEstimate};
use quake_mesh::mesh::TetMesh;
use quake_partition::comm::CommAnalysis;
use quake_partition::geometric::{
    LinearPartition, Partitioner, RandomPartition, RecursiveBisection,
};
use quake_partition::refine::{refine, RefineOptions};
use quake_partition::sfc::MortonPartition;
use quake_partition::spectral::SpectralBisection;
use quake_sparse::coo::Coo;
use quake_sparse::csr::Csr;
use quake_sparse::reorder::{identity_perm, permuted_bandwidth, rcm};

/// One mesh-size row of Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshSizeRow {
    /// Application name.
    pub name: String,
    /// Resolved period in seconds.
    pub period_s: f64,
    /// Node count.
    pub nodes: u64,
    /// Element count.
    pub elements: u64,
    /// Edge count.
    pub edges: u64,
}

/// Figure 2 (synthetic half): sizes of the generated family.
pub fn mesh_size_rows(apps: &[QuakeApp]) -> Vec<MeshSizeRow> {
    apps.iter()
        .map(|app| {
            let s = app.size_stats();
            MeshSizeRow {
                name: app.config.name.clone(),
                period_s: app.config.period_s,
                nodes: s.nodes as u64,
                elements: s.elements as u64,
                edges: s.edges as u64,
            }
        })
        .collect()
}

/// Node-growth factor between consecutive rows (the paper's ≈ 8× per
/// period halving). `rows[i]` maps to `factors[i-1]`.
pub fn growth_factors(rows: &[MeshSizeRow]) -> Vec<f64> {
    rows.windows(2)
        .map(|w| w[1].nodes as f64 / w[0].nodes as f64)
        .collect()
}

/// Figures 6/7 (synthetic half): characterizes `app` across `parts` with
/// the inertial geometric partitioner.
pub fn smvp_properties(app: &QuakeApp, parts: &[usize]) -> Vec<AnalyzedInstance> {
    quake_app::characterize::figure7_table(
        &app.config.name,
        &app.mesh,
        &RecursiveBisection::inertial(),
        parts,
    )
}

/// Figure 6: the β matrix, `beta_matrix[part_index][app_index]`, from
/// per-app characterization tables (each indexed the same way by parts).
pub fn beta_matrix(tables: &[Vec<AnalyzedInstance>]) -> Vec<Vec<f64>> {
    if tables.is_empty() {
        return Vec::new();
    }
    (0..tables[0].len())
        .map(|pi| tables.iter().map(|t| t[pi].beta).collect())
        .collect()
}

/// Figure 8 input: each instance paired with its bisection volume in
/// words, ready for [`quake_core::requirements::bisection_series`].
pub fn bisection_inputs(app: &QuakeApp, parts: &[usize]) -> Vec<(SmvpInstance, u64)> {
    smvp_properties(app, parts)
        .into_iter()
        .map(|a| (a.instance.clone(), a.bisection_words))
        .collect()
}

/// Figure 9 input: the bare instances for
/// [`quake_core::requirements::sustained_bandwidth_series`].
pub fn instances_of(analyzed: &[AnalyzedInstance]) -> Vec<SmvpInstance> {
    analyzed.iter().map(|a| a.instance.clone()).collect()
}

/// §1 table: the EXFLOW-style aggregates derived from a Figure 7 row by
/// the paper's formulas (`C_max·8 B` per `F/10⁶` flops, `B_max` messages
/// per MFLOP, `M_avg·8 B` per message).
pub fn comm_summary_from_instance(inst: &SmvpInstance, total_nodes: u64) -> AppCommSummary {
    let mflops = inst.f as f64 / 1e6;
    AppCommSummary {
        data_mb_per_pe: total_nodes as f64 * 1200.0 / inst.subdomains as f64 / 1e6,
        comm_kb_per_mflop: inst.c_max as f64 * 8.0 / 1e3 / mflops,
        messages_per_mflop: inst.b_max as f64 / mflops,
        avg_message_kb: inst.m_avg * 8.0 / 1e3,
    }
}

/// One partitioner-ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Strategy label (`"rib"`, `"rib+refine"`, …).
    pub label: String,
    /// Shared (replicated) node count.
    pub shared_nodes: usize,
    /// Node replication factor.
    pub replication: f64,
    /// The characterized instance.
    pub instance: SmvpInstance,
    /// The β bound.
    pub beta: f64,
    /// Required sustained bandwidth at E = 0.9 (bytes/s).
    pub required_bandwidth: f64,
}

/// The partitioner strategies the ablation compares, by name.
pub fn ablation_strategies() -> Vec<(&'static str, Box<dyn Partitioner>)> {
    vec![
        ("rib", Box::new(RecursiveBisection::inertial())),
        ("rcb", Box::new(RecursiveBisection::coordinate())),
        ("spectral", Box::new(SpectralBisection::default())),
        ("morton", Box::new(MortonPartition)),
        ("linear", Box::new(LinearPartition)),
        ("random", Box::new(RandomPartition { seed: 1 })),
    ]
}

/// Partitioner-ablation table: every strategy in `strategies`, with and
/// without greedy refinement, characterized on `mesh` at `parts`
/// subdomains for `processor` at E = 0.9.
pub fn partitioner_ablation(
    mesh: &TetMesh,
    parts: usize,
    strategies: &[(&str, Box<dyn Partitioner>)],
    processor: &Processor,
) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (name, strat) in strategies {
        for refined in [false, true] {
            let base = strat.partition(mesh, parts).expect("partition");
            let (partition, label) = if refined {
                let (p, _) = refine(mesh, &base, RefineOptions::default()).expect("refine");
                (p, format!("{name}+refine"))
            } else {
                (base, (*name).to_string())
            };
            let analysis = CommAnalysis::new(mesh, &partition);
            let instance = SmvpInstance::new(
                "ablation",
                parts,
                analysis.f_max(),
                analysis.c_max(),
                analysis.b_max(),
                analysis.m_avg(),
            );
            rows.push(AblationRow {
                label,
                shared_nodes: partition.shared_node_count(),
                replication: partition.replication_factor(),
                beta: analysis.beta(),
                required_bandwidth: required_sustained_bandwidth(&instance, 0.9, processor),
                instance,
            });
        }
    }
    rows
}

/// One sustained-`T_f` row (§3.1 table).
#[derive(Debug, Clone, PartialEq)]
pub struct SustainedTfRow {
    /// Matrix ordering (`"natural"` or `"rcm"`).
    pub ordering: String,
    /// Pattern bandwidth under that ordering.
    pub pattern_bandwidth: usize,
    /// The cache-simulated estimate.
    pub estimate: TfEstimate,
}

/// Builds the mesh's scalar graph Laplacian under the given ordering and
/// returns it with the permuted pattern bandwidth.
pub fn ordered_mesh_matrix(mesh: &TetMesh, ordering: &str) -> (Csr, usize) {
    let pattern = mesh.pattern();
    let n = pattern.node_count();
    let perm = match ordering {
        "natural" => identity_perm(n),
        "rcm" => rcm(&pattern),
        other => panic!("unknown ordering {other}"),
    };
    let bw = permuted_bandwidth(&pattern, &perm);
    let mut coo = Coo::new(n, n);
    for &p in &perm {
        coo.push(p, p, 4.0).expect("in range");
    }
    for (a, b) in pattern.edges() {
        coo.push(perm[a], perm[b], -1.0).expect("in range");
        coo.push(perm[b], perm[a], -1.0).expect("in range");
    }
    (coo.to_csr(), bw)
}

/// §3.1 table: the sustained-`T_f` estimate for each ordering on an
/// Alpha-21164-like node with raw `flop_time` seconds per flop.
pub fn sustained_tf_rows(
    mesh: &TetMesh,
    flop_time: f64,
    orderings: &[&str],
) -> Vec<SustainedTfRow> {
    orderings
        .iter()
        .map(|&ordering| {
            let (matrix, bw) = ordered_mesh_matrix(mesh, ordering);
            let mut h = Hierarchy::alpha_21164_like();
            SustainedTfRow {
                ordering: ordering.to_string(),
                pattern_bandwidth: bw,
                estimate: estimate_tf(&matrix, &mut h, flop_time, 1),
            }
        })
        .collect()
}

/// §4.1 iso-efficiency row: nodes/PE a machine needs for a target
/// efficiency.
#[derive(Debug, Clone, PartialEq)]
pub struct IsoEfficiencyRow {
    /// Processor name.
    pub processor: String,
    /// Network per-word time in seconds.
    pub t_c: f64,
    /// The `F/C_max` ratio Eq. (1) demands.
    pub required_ratio: f64,
    /// Nodes per PE attaining that ratio under the fitted law.
    pub nodes_per_pe: f64,
}

/// Inverts Eq. (1): the `F/C_max` a machine `(t_f, t_c)` needs for
/// efficiency `e`.
pub fn required_ratio_for_efficiency(t_c: f64, e: f64, t_f: f64) -> f64 {
    assert!(e > 0.0 && e < 1.0, "efficiency must be in (0, 1)");
    t_c / (((1.0 - e) / e) * t_f)
}

/// §4.1 iso-efficiency table over `(processor, t_c seconds/word)` cases at
/// target efficiency `e`, under the fitted scaling law.
pub fn iso_efficiency_rows(
    law: &quake_core::model::scaling_law::ScalingLaw,
    cases: &[(Processor, f64)],
    e: f64,
) -> Vec<IsoEfficiencyRow> {
    cases
        .iter()
        .map(|(pe, t_c)| {
            let required_ratio = required_ratio_for_efficiency(*t_c, e, pe.t_f);
            IsoEfficiencyRow {
                processor: pe.name.to_string(),
                t_c: *t_c,
                required_ratio,
                nodes_per_pe: law.nodes_per_pe_for_ratio(required_ratio),
            }
        })
        .collect()
}
