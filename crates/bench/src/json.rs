//! Minimal JSON writer/parser for the benchmark artifacts.
//!
//! The workspace's serde stand-in is a no-op, so the `BENCH_*.json`
//! artifacts are emitted and re-validated with this hand-rolled module.
//! It supports exactly the JSON subset the artifacts use: objects, arrays,
//! strings (with `\"`, `\\`, `\n`, `\t`, and `\u` escapes), finite numbers,
//! booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    /// Object keys are sorted (BTreeMap) so output is deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(x) => {
                // JSON has no NaN/Inf; the writer refuses them up front.
                debug_assert!(x.is_finite(), "non-finite number in JSON output");
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Convenience constructors for building artifact documents.
impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    pub fn num(x: f64) -> Json {
        assert!(x.is_finite(), "non-finite number in JSON output: {x}");
        Json::Number(x)
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the artifacts.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_documents() {
        let doc = Json::obj(vec![
            ("schema", Json::str("quake-bench/smvp-v1")),
            ("quick", Json::Bool(true)),
            ("scale", Json::num(6.5)),
            (
                "entries",
                Json::Array(vec![Json::obj(vec![
                    ("kernel", Json::str("rmv")),
                    ("threads", Json::num(4.0)),
                    ("gflops", Json::num(1.25)),
                    ("note", Json::str("line1\nline2 \"quoted\"")),
                ])]),
            ),
            ("none", Json::Null),
        ]);
        let text = doc.to_string();
        let back = parse(&text).expect("parse");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("quake-bench/smvp-v1")
        );
        assert_eq!(
            back.get("entries")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Json::num(12000.0).to_string(), "12000");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
        assert_eq!(Json::num(-3.0).to_string(), "-3");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01abc",
            "{} trailing",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_nested_structures_and_escapes() {
        let v = parse("  {\"a\": [1, 2.5, -3e2, true, null], \"b\": {\"c\": \"x\\u0041\\n\"}} ")
            .expect("parse");
        let a = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("xA\n")
        );
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn writer_rejects_nan() {
        let _ = Json::num(f64::NAN);
    }
}
