//! Shared scaffolding for the experiment binaries: scale selection, the
//! synthetic family at that scale, and common partition sweeps.
//!
//! Every binary honors two environment variables:
//!
//! * `QUAKE_SCALE` — linear domain shrink factor (default 6.0; 1.0 is the
//!   paper-sized domain and takes minutes);
//! * `QUAKE_PARTS` — comma-separated subdomain counts (default
//!   `4,8,16,32`; the paper sweeps to 128, which needs the bigger meshes to
//!   be meaningful).

use quake_app::characterize::AnalyzedInstance;
use quake_app::family::{AppConfig, QuakeApp};

pub mod figures;
pub mod json;
pub mod trace;

/// The scale factor for this run (`QUAKE_SCALE`, default 6).
pub fn scale() -> f64 {
    std::env::var("QUAKE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6.0)
}

/// The subdomain counts for this run (`QUAKE_PARTS`, default `4,8,16,32`).
pub fn subdomain_counts() -> Vec<usize> {
    std::env::var("QUAKE_PARTS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&p| p > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4, 8, 16, 32])
}

/// Generates the synthetic family at the configured scale, printing
/// progress to stderr.
pub fn generate_family() -> Vec<QuakeApp> {
    let scale = scale();
    quake_app::family::standard_family(scale)
        .into_iter()
        .map(|config| {
            eprintln!(
                "generating {} (period {} s, scale {})...",
                config.name, config.period_s, scale
            );
            QuakeApp::generate(config).expect("mesh generation failed")
        })
        .collect()
}

/// Generates a single member of the family at the configured scale.
pub fn generate_app(name: &str, period_s: f64) -> QuakeApp {
    QuakeApp::generate(AppConfig::new(name, period_s, scale())).expect("mesh generation failed")
}

/// Characterizes `app` across the configured subdomain counts with the
/// inertial geometric partitioner (the reproduction's Archimedes stand-in).
pub fn characterize_app(app: &QuakeApp) -> Vec<AnalyzedInstance> {
    figures::smvp_properties(app, &subdomain_counts())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let parts = subdomain_counts();
        assert!(!parts.is_empty());
        assert!(parts.iter().all(|&p| p > 0));
        assert!(scale() > 0.0);
    }
}
