//! Figure 10 — burst-bandwidth / block-latency tradeoff for sf2/128 on
//! 200-MFLOP PEs, under (a) maximal blocks and (b) fixed 4-word blocks.
//!
//! A pure evaluation of Equations (1)+(2) over the paper's published
//! sf2/128 row: each curve gives the block latency permitted at a given
//! burst bandwidth if the SMVP is to hit the target efficiency.

use quake_app::report::{fmt_seconds, Table};
use quake_core::machine::{BlockRegime, Processor};
use quake_core::paperdata;
use quake_core::requirements::{tradeoff_curve, EFFICIENCIES};

fn main() {
    let inst = paperdata::figure7_instance("sf2", 128).expect("paper row");
    let pe = Processor::hypothetical_200mflops();
    // Log-spaced burst bandwidths, 1 MB/s to 10 GB/s.
    let bws: Vec<f64> = (0..=40)
        .map(|i| 1e6 * 10f64.powf(i as f64 / 10.0))
        .collect();
    for (regime, label) in [
        (
            BlockRegime::Maximal,
            "(a) arbitrarily large blocks (message passing)",
        ),
        (
            BlockRegime::CACHE_LINE,
            "(b) four-word blocks (cache-line shared memory)",
        ),
    ] {
        println!("== Figure 10{label}: sf2/128 on {} ==\n", pe.name);
        let curves: Vec<_> = EFFICIENCIES
            .iter()
            .map(|&e| (e, tradeoff_curve(&inst, e, &pe, regime, &bws)))
            .collect();
        let mut t = Table::new(vec![
            "burst BW (MB/s)",
            "T_l @ E=0.5",
            "T_l @ E=0.8",
            "T_l @ E=0.9",
        ]);
        for &bw in bws.iter().step_by(5) {
            let mut cells = vec![format!("{:.1}", bw / 1e6)];
            for (_, curve) in &curves {
                let cell = curve
                    .points
                    .iter()
                    .find(|(b, _)| (*b - bw).abs() < 1e-3)
                    .map(|&(_, t_l)| fmt_seconds(t_l))
                    .unwrap_or_else(|| "infeasible".into());
                cells.push(cell);
            }
            t.row(cells);
        }
        println!("{}", t.render());
        // The latency asymptote at infinite burst bandwidth.
        use quake_core::model::eq1::required_tc;
        use quake_core::model::eq2::latency_at_infinite_burst;
        for &e in &EFFICIENCIES {
            let tc = required_tc(&inst, e, pe.t_f);
            let bound = latency_at_infinite_burst(&inst, tc, regime);
            println!(
                "  latency ceiling at infinite burst bandwidth, E={e}: {}",
                fmt_seconds(bound)
            );
        }
        println!();
    }
    println!(
        "Paper conclusion (§4.4): latency matters. Even with unlimited burst\n\
         bandwidth, maximal-block latency must stay in the microseconds and\n\
         cache-line-block latency near 100 ns to sustain 90% efficiency."
    );
}
