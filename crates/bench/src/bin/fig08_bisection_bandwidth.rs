//! Figure 8 — required sustained bisection bandwidth for sf2.
//!
//! The bisection volume `V` depends on the partitioned mesh (it was never
//! published as a table), so this figure is regenerated from the synthetic
//! sf2-analog: `V` words cross the canonical bisection per SMVP, which must
//! complete within `C_max·T_c` seconds.

use quake_app::report::{fmt_mb_per_s, Table};
use quake_core::machine::Processor;
use quake_core::requirements::{bisection_series, EFFICIENCIES};

fn main() {
    let app = quake_bench::generate_app("sf2", 2.0);
    let with_v = quake_bench::figures::bisection_inputs(&app, &quake_bench::subdomain_counts());
    let processors = [
        Processor::hypothetical_100mflops(),
        Processor::hypothetical_200mflops(),
    ];
    println!(
        "== Figure 8 (synthetic sf2-analog, scale {}): required sustained bisection bandwidth ==\n",
        quake_bench::scale()
    );
    for pe in &processors {
        println!("-- {} ({} sustained MFLOPS) --", pe.name, pe.mflops());
        let mut t = Table::new(vec![
            "subdomains",
            "V (words)",
            "E=0.5 (MB/s)",
            "E=0.8 (MB/s)",
            "E=0.9 (MB/s)",
        ]);
        let series = bisection_series(&with_v, &[*pe], &EFFICIENCIES);
        for chunk in series.chunks(EFFICIENCIES.len()) {
            t.row(vec![
                chunk[0].subdomains.to_string(),
                chunk[0].v_words.to_string(),
                fmt_mb_per_s(chunk[0].bandwidth_bytes),
                fmt_mb_per_s(chunk[1].bandwidth_bytes),
                fmt_mb_per_s(chunk[2].bandwidth_bytes),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Paper conclusion (§4.2): the worst case — E = 0.9 on 200-MFLOP PEs — is\n\
         ≈ 700 MB/s, 'on the order of the bandwidth of a couple of links in a\n\
         modern system'. Bisection bandwidth is not the constraint for irregular\n\
         finite-element codes; per-PE bandwidth is (Figure 9)."
    );
}
