//! Scaling law — §4.1's O(n^{1/3}) argument fitted and extrapolated: how
//! big must a mesh be for a given machine to run efficiently, and why
//! "we cannot rely on simply increasing the problem size".

use quake_app::report::Table;
use quake_core::characterize::SmvpInstance;
use quake_core::machine::Processor;
use quake_core::model::scaling_law::ScalingLaw;
use quake_core::paperdata;

fn paper_nodes(inst: &SmvpInstance) -> u64 {
    paperdata::figure2()
        .iter()
        .find(|r| r.app == inst.app)
        .expect("known app")
        .nodes
}

fn main() {
    let instances = paperdata::figure7();
    let law = ScalingLaw::fit(&instances, paper_nodes);
    println!("== §4.1 scaling law, fitted to the paper's Figure 7 ==\n");
    println!(
        "F = {:.0} flops/node (volume term), C_max = {:.1} * (n/p)^(2/3) words (surface term)\n",
        law.a, law.b
    );
    println!("fit check (F/C_max, paper vs law):\n");
    let mut t = Table::new(vec!["instance", "nodes/PE", "paper", "law", "rel err"]);
    for inst in instances
        .iter()
        .filter(|i| i.subdomains == 16 || i.subdomains == 128)
    {
        let n = paper_nodes(inst);
        let predicted = law.predict_ratio(n, inst.subdomains);
        t.row(vec![
            inst.label(),
            format!("{}", n / inst.subdomains as u64),
            format!("{:.0}", inst.comp_comm_ratio()),
            format!("{predicted:.0}"),
            format!("{:.0}%", 100.0 * law.ratio_error(inst, paper_nodes)),
        ]);
    }
    println!("{}", t.render());

    // The paper's observation: 10x nodes -> ~2x ratio.
    let r1 = law.predict_ratio(378_747, 128);
    let r10 = law.predict_ratio(3_787_470, 128);
    println!(
        "10x the nodes raises F/C_max by {:.2}x (10^(1/3) = 2.15): growing the\n\
         problem buys efficiency slowly.\n",
        r10 / r1
    );

    // Iso-efficiency: nodes per PE needed for E = 0.9 at various machines.
    println!("nodes per PE required for E = 0.9, by machine and network quality:\n");
    let mut t = Table::new(vec![
        "PE",
        "network T_c (ns/word)",
        "required F/C_max",
        "nodes per PE",
        "memory per PE",
    ]);
    let cases = [
        (Processor::hypothetical_100mflops(), 66.7e-9), // 120 MB/s sustained
        (Processor::hypothetical_200mflops(), 66.7e-9),
        (Processor::hypothetical_200mflops(), 26.7e-9), // 300 MB/s sustained
    ];
    for r in quake_bench::figures::iso_efficiency_rows(&law, &cases, 0.9) {
        t.row(vec![
            r.processor.clone(),
            format!("{:.1}", r.t_c * 1e9),
            format!("{:.0}", r.required_ratio),
            format!("{:.0}", r.nodes_per_pe),
            format!("{:.1} MB", r.nodes_per_pe * 1200.0 / 1e6),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: doubling the PE speed at fixed network quality demands 8x the\n\
         nodes per PE (the cube of the ratio increase) to hold efficiency — the\n\
         quantitative form of the paper's 'we cannot rely on increasing problem\n\
         size'; networks must improve with processors."
    );
}
