//! SMVP hot-path throughput artifact (`BENCH_smvp.json`).
//!
//! Measures kernel × threads × mesh GFLOP/s for the Spark98 kernel family,
//! comparing the allocating kernels and boxed per-task pool dispatch (the
//! state of the tree before the zero-allocation rework, reimplemented here
//! verbatim as frozen baselines) against the in-place `_into` kernels over
//! reusable workspaces and the pool's closure-broadcast fast path.
//!
//! Usage:
//!
//! ```text
//! bench_smvp [--quick] [--out PATH]   # run benchmarks, write JSON artifact
//! bench_smvp --validate PATH          # schema-check an existing artifact
//! ```
//!
//! `--quick` runs a single tiny mesh with few repetitions — enough for CI to
//! exercise the full code path and validate the artifact schema, not enough
//! for stable numbers. Honors `QUAKE_SCALE` in full mode.

use quake_app::family::{standard_family, AppConfig, QuakeApp};
use quake_bench::json::{parse, Json};
use quake_fem::assembly::{assemble, UniformMaterial};
use quake_mesh::ground::Material;
use quake_spark::pool::Task;
use quake_spark::{
    bmv, bmv_pooled_into, lmv, lmv_into, pmv_pooled_into, rmv, rmv_into, rmv_pooled_into, smv,
    smv_into, KernelWorkspace, WorkerPool,
};
use quake_sparse::bcsr::Bcsr3;
use quake_sparse::csr::Csr;
use quake_sparse::dense::Vec3;
use quake_sparse::sym::SymCsr;
use std::time::Instant;

const SCHEMA: &str = "quake-bench/smvp-v1";

// ---------------------------------------------------------------------------
// Frozen PR-1 baselines.
//
// These reproduce the pooled kernels as they stood before this rework: one
// boxed closure per chunk submitted through `WorkerPool::execute`, fresh
// reduction buffers allocated and zeroed on every call, and a serial fold.
// They exist only as the comparison baseline for the artifact.
// ---------------------------------------------------------------------------

fn row_chunks_pr1(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    (0..threads)
        .map(|t| (n * t / threads)..(n * (t + 1) / threads))
        .collect()
}

fn rmv_pooled_pr1(matrix: &SymCsr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    let n = matrix.dim();
    let full = matrix.parts();
    let chunks = row_chunks_pr1(n, pool.threads());
    let mut buffers: Vec<Vec<f64>> = vec![vec![0.0; n]; chunks.len()];
    let tasks: Vec<Task> = buffers
        .iter_mut()
        .zip(&chunks)
        .map(|(buf, range)| {
            let range = range.clone();
            let full = &full;
            Box::new(move || {
                for r in range {
                    let mut local = full.diag[r] * x[r];
                    for k in full.row_ptr[r]..full.row_ptr[r + 1] {
                        let c = full.col_idx[k];
                        let v = full.values[k];
                        local += v * x[c];
                        buf[c] += v * x[r];
                    }
                    buf[r] += local;
                }
            }) as Task
        })
        .collect();
    pool.execute(tasks);
    let mut y = vec![0.0; n];
    for buf in buffers {
        for (yi, bi) in y.iter_mut().zip(buf) {
            *yi += bi;
        }
    }
    y
}

fn pmv_pooled_pr1(matrix: &Csr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    let n = matrix.rows();
    let mut y = vec![0.0; n];
    let chunks = row_chunks_pr1(n, pool.threads());
    let mut tasks: Vec<Task> = Vec::with_capacity(chunks.len());
    let mut rest: &mut [f64] = &mut y;
    for range in &chunks {
        let (mine, tail) = rest.split_at_mut(range.len());
        rest = tail;
        let range = range.clone();
        tasks.push(Box::new(move || {
            for (slot, r) in mine.iter_mut().zip(range) {
                let mut sum = 0.0;
                for (c, v) in matrix.row(r).pairs() {
                    sum += v * x[c];
                }
                *slot = sum;
            }
        }) as Task);
    }
    pool.execute(tasks);
    y
}

// ---------------------------------------------------------------------------
// Measurement harness.
// ---------------------------------------------------------------------------

struct Case {
    mesh: String,
    nodes: usize,
    sym: SymCsr,
    csr: Csr,
    bcsr: Bcsr3,
    /// Useful flops of one product, the paper's `F = 2m` over full storage.
    flops: f64,
}

fn build_case(app: &QuakeApp) -> Case {
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let sys = assemble(&app.mesh, &UniformMaterial(mat)).expect("assembly");
    let bcsr = sys.stiffness;
    let csr = bcsr.to_scalar_csr();
    let sym = SymCsr::from_csr(&csr, 1e-6 * 1e9).expect("symmetric stiffness");
    let flops = 2.0 * csr.nnz() as f64;
    Case {
        mesh: app.config.name.clone(),
        nodes: bcsr.block_rows(),
        sym,
        csr,
        bcsr,
        flops,
    }
}

/// Measurement plan: several short blocks whose fastest block is kept.
/// The minimum filters out interference from other load on the machine,
/// which a single long average would fold into the result.
fn plan(quick: bool, f: &mut impl FnMut()) -> (usize, usize) {
    f(); // warmup (also grows workspaces to their high-water mark)
    if quick {
        (2, 2)
    } else {
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().as_secs_f64().max(1e-7);
        (6, ((0.05 / once) as usize).clamp(2, 2_000))
    }
}

fn best_block(best: &mut f64, per_block: usize, f: &mut impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..per_block {
        f();
    }
    *best = best.min(t0.elapsed().as_secs_f64() / per_block as f64);
}

/// Times a baseline/candidate pair with interleaved blocks (B C B C …), so
/// machine-load drift hits both sides equally and their ratio stays fair.
fn time_pair(quick: bool, mut f: impl FnMut(), mut g: impl FnMut()) -> [(f64, usize); 2] {
    let (blocks, per_block) = plan(quick, &mut f);
    g(); // warm the candidate too
    let (mut bf, mut bg) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..blocks {
        best_block(&mut bf, per_block, &mut f);
        best_block(&mut bg, per_block, &mut g);
    }
    [(bf, blocks * per_block), (bg, blocks * per_block)]
}

struct Recorder {
    quick: bool,
    entries: Vec<Json>,
    /// (mesh, kernel, dispatch, variant, threads) → secs/op for comparisons.
    timings: Vec<(String, &'static str, &'static str, &'static str, usize, f64)>,
}

impl Recorder {
    /// Records a baseline/candidate pair measured with interleaved blocks.
    #[allow(clippy::too_many_arguments)]
    fn record_pair(
        &mut self,
        case: &Case,
        kernel: &'static str,
        base: (&'static str, &'static str),
        cand: (&'static str, &'static str),
        threads: usize,
        f: impl FnMut(),
        g: impl FnMut(),
    ) {
        let [(bs, br), (cs, cr)] = time_pair(self.quick, f, g);
        self.push(case, kernel, base.0, base.1, threads, bs, br);
        self.push(case, kernel, cand.0, cand.1, threads, cs, cr);
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        case: &Case,
        kernel: &'static str,
        dispatch: &'static str,
        variant: &'static str,
        threads: usize,
        secs: f64,
        reps: usize,
    ) {
        let gflops = case.flops / secs / 1e9;
        eprintln!(
            "  {kernel:>4} {dispatch:<12} {variant:<11} t={threads}  {:>10.2} us/op  {gflops:>7.3} GFLOP/s",
            secs * 1e6
        );
        self.entries.push(Json::obj(vec![
            ("mesh", Json::str(&case.mesh)),
            ("nodes", Json::num(case.nodes as f64)),
            ("scalar_nnz", Json::num(case.csr.nnz() as f64)),
            ("kernel", Json::str(kernel)),
            ("dispatch", Json::str(dispatch)),
            ("variant", Json::str(variant)),
            ("threads", Json::num(threads as f64)),
            ("reps", Json::num(reps as f64)),
            ("secs_per_op", Json::num(secs)),
            ("gflops", Json::num(gflops)),
        ]));
        self.timings
            .push((case.mesh.clone(), kernel, dispatch, variant, threads, secs));
    }

    fn lookup(
        &self,
        mesh: &str,
        kernel: &str,
        dispatch: &str,
        variant: &str,
        threads: usize,
    ) -> Option<f64> {
        self.timings
            .iter()
            .find(|(m, k, d, v, t, _)| {
                m == mesh && *k == kernel && *d == dispatch && *v == variant && *t == threads
            })
            .map(|&(_, _, _, _, _, secs)| secs)
    }
}

fn run_case(rec: &mut Recorder, case: &Case, thread_counts: &[usize]) {
    eprintln!(
        "mesh {} ({} nodes, {} scalar nnz):",
        case.mesh,
        case.nodes,
        case.csr.nnz()
    );
    let n = case.sym.dim();
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
    let xb: Vec<Vec3> = (0..case.bcsr.block_rows())
        .map(|i| Vec3::new(i as f64, (i % 7) as f64, 1.0))
        .collect();
    let mut y = vec![0.0; n];
    let mut yb = vec![Vec3::ZERO; case.bcsr.block_rows()];
    let mut ws = KernelWorkspace::new();

    // Serial baseline: allocating vs in-place.
    rec.record_pair(
        case,
        "smv",
        ("serial", "alloc"),
        ("serial", "in_place"),
        1,
        || {
            std::hint::black_box(smv(&case.sym, &x));
        },
        || {
            smv_into(&case.sym, &x, &mut y);
            std::hint::black_box(&y);
        },
    );

    for &threads in thread_counts {
        let pool = WorkerPool::new(threads);

        // Spawn-per-call kernels: allocating vs in-place twins.
        rec.record_pair(
            case,
            "rmv",
            ("spawn", "alloc"),
            ("spawn", "in_place"),
            threads,
            || {
                std::hint::black_box(rmv(&case.sym, &x, threads));
            },
            || {
                rmv_into(&case.sym, &x, threads, &mut y, &mut ws);
                std::hint::black_box(&y);
            },
        );
        rec.record_pair(
            case,
            "lmv",
            ("spawn", "alloc"),
            ("spawn", "in_place"),
            threads,
            || {
                std::hint::black_box(lmv(&case.sym, &x, threads));
            },
            || {
                lmv_into(&case.sym, &x, threads, &mut y, &mut ws);
                std::hint::black_box(&y);
            },
        );

        // Pooled: frozen PR-1 dispatch (boxed tasks, allocating buffers,
        // serial fold) vs the broadcast + workspace fast path.
        rec.record_pair(
            case,
            "rmv",
            ("pooled_boxed", "alloc"),
            ("pooled", "in_place"),
            threads,
            || {
                std::hint::black_box(rmv_pooled_pr1(&case.sym, &x, &pool));
            },
            || {
                rmv_pooled_into(&case.sym, &x, &pool, &mut y, &mut ws);
                std::hint::black_box(&y);
            },
        );
        rec.record_pair(
            case,
            "pmv",
            ("pooled_boxed", "alloc"),
            ("pooled", "in_place"),
            threads,
            || {
                std::hint::black_box(pmv_pooled_pr1(&case.csr, &x, &pool));
            },
            || {
                pmv_pooled_into(&case.csr, &x, &pool, &mut y);
                std::hint::black_box(&y);
            },
        );

        // Block kernels: spawn-allocating vs pooled in-place.
        rec.record_pair(
            case,
            "bmv",
            ("spawn", "alloc"),
            ("pooled", "in_place"),
            threads,
            || {
                std::hint::black_box(bmv(&case.bcsr, &xb, threads));
            },
            || {
                bmv_pooled_into(&case.bcsr, &xb, &pool, &mut yb);
                std::hint::black_box(&yb);
            },
        );
    }
}

fn comparisons(rec: &Recorder, largest_mesh: &str, thread_counts: &[usize]) -> Vec<Json> {
    let meshes: Vec<String> = {
        let mut seen = Vec::new();
        for (m, ..) in &rec.timings {
            if !seen.contains(m) {
                seen.push(m.clone());
            }
        }
        seen
    };
    let mut out = Vec::new();
    for mesh in &meshes {
        for &threads in thread_counts {
            for (kernel, base_dispatch) in [("rmv", "pooled_boxed"), ("pmv", "pooled_boxed")] {
                let base = rec.lookup(mesh, kernel, base_dispatch, "alloc", threads);
                let cand = rec.lookup(mesh, kernel, "pooled", "in_place", threads);
                if let (Some(b), Some(c)) = (base, cand) {
                    out.push(Json::obj(vec![
                        ("mesh", Json::str(mesh)),
                        ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                        ("threads", Json::num(threads as f64)),
                        ("kernel", Json::str(kernel)),
                        (
                            "baseline",
                            Json::str(format!("{kernel}_{base_dispatch}_alloc")),
                        ),
                        ("candidate", Json::str(format!("{kernel}_pooled_in_place"))),
                        ("speedup", Json::num(b / c)),
                    ]));
                }
            }
            // Allocating spawn kernel vs its in-place twin.
            let base = rec.lookup(mesh, "rmv", "spawn", "alloc", threads);
            let cand = rec.lookup(mesh, "rmv", "spawn", "in_place", threads);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(threads as f64)),
                    ("kernel", Json::str("rmv")),
                    ("baseline", Json::str("rmv_spawn_alloc")),
                    ("candidate", Json::str("rmv_spawn_in_place")),
                    ("speedup", Json::num(b / c)),
                ]));
            }
        }
    }
    out
}

fn render(doc_fields: Vec<(&str, Json)>, entries: &[Json], comps: &[Json]) -> String {
    // Valid JSON, formatted one entry per line so the committed artifact
    // diffs readably.
    let mut out = String::from("{\n");
    for (k, v) in &doc_fields {
        out.push_str(&format!("  \"{k}\": {v},\n"));
    }
    let list = |items: &[Json]| {
        items
            .iter()
            .map(|e| format!("    {e}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    out.push_str("  \"entries\": [\n");
    out.push_str(&list(entries));
    out.push_str("\n  ],\n  \"comparisons\": [\n");
    out.push_str(&list(comps));
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Schema validation (`--validate`).
// ---------------------------------------------------------------------------

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| e.to_string())?;
    let need_str = |v: &Json, key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    let need_num = |v: &Json, key: &str| -> Result<f64, String> {
        let x = v
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        if !x.is_finite() {
            return Err(format!("field {key:?} is not finite"));
        }
        Ok(x)
    };

    if need_str(&doc, "schema")? != SCHEMA {
        return Err(format!("schema is not {SCHEMA:?}"));
    }
    need_num(&doc, "scale")?;
    doc.get("quick")
        .filter(|v| matches!(v, Json::Bool(_)))
        .ok_or("missing boolean field \"quick\"")?;

    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("missing array field \"entries\"")?;
    if entries.is_empty() {
        return Err("\"entries\" is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        let ctx = |err: String| format!("entries[{i}]: {err}");
        for key in ["mesh", "kernel", "dispatch", "variant"] {
            need_str(e, key).map_err(ctx)?;
        }
        for key in ["nodes", "scalar_nnz", "threads", "reps"] {
            let x = need_num(e, key).map_err(ctx)?;
            if x < 1.0 || x.fract() != 0.0 {
                return Err(ctx(format!("field {key:?} must be a positive integer")));
            }
        }
        for key in ["secs_per_op", "gflops"] {
            if need_num(e, key).map_err(ctx)? <= 0.0 {
                return Err(ctx(format!("field {key:?} must be positive")));
            }
        }
    }

    let comps = doc
        .get("comparisons")
        .and_then(Json::as_array)
        .ok_or("missing array field \"comparisons\"")?;
    for (i, c) in comps.iter().enumerate() {
        let ctx = |err: String| format!("comparisons[{i}]: {err}");
        for key in ["mesh", "baseline", "candidate", "kernel"] {
            need_str(c, key).map_err(ctx)?;
        }
        if need_num(c, "speedup").map_err(ctx)? <= 0.0 {
            return Err(ctx("field \"speedup\" must be positive".into()));
        }
    }
    if !comps
        .iter()
        .any(|c| c.get("candidate").and_then(Json::as_str) == Some("rmv_pooled_in_place"))
    {
        return Err("no comparison covers the pooled in-place rmv path".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_smvp.json");
        match validate(path) {
            Ok(()) => {
                println!("{path}: schema OK");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_smvp.json".to_string());

    let (scale, configs, thread_counts): (f64, Vec<AppConfig>, Vec<usize>) = if quick {
        (12.0, vec![AppConfig::new("sf10", 10.0, 12.0)], vec![2])
    } else {
        let scale = quake_bench::scale();
        (scale, standard_family(scale), vec![1, 2, 4])
    };

    let mut rec = Recorder {
        quick,
        entries: Vec::new(),
        timings: Vec::new(),
    };
    let mut largest: Option<(usize, String)> = None;
    for config in configs {
        eprintln!("generating {} (scale {scale})...", config.name);
        let app = QuakeApp::generate(config).expect("mesh generation failed");
        let case = build_case(&app);
        if largest.as_ref().is_none_or(|(n, _)| case.nodes > *n) {
            largest = Some((case.nodes, case.mesh.clone()));
        }
        run_case(&mut rec, &case, &thread_counts);
    }
    let largest_mesh = largest.expect("at least one mesh").1;
    let comps = comparisons(&rec, &largest_mesh, &thread_counts);

    let doc = render(
        vec![
            ("schema", Json::str(SCHEMA)),
            ("quick", Json::Bool(quick)),
            ("scale", Json::num(scale)),
            ("largest_mesh", Json::str(&largest_mesh)),
        ],
        &rec.entries,
        &comps,
    );
    parse(&doc).expect("emitted artifact must parse");
    std::fs::write(&out_path, &doc).expect("write artifact");
    eprintln!("wrote {out_path}");

    // Headline: the acceptance comparison on the largest seed mesh.
    for c in &comps {
        if c.get("largest_mesh") == Some(&Json::Bool(true))
            && c.get("candidate").and_then(Json::as_str) == Some("rmv_pooled_in_place")
        {
            let t = c.get("threads").and_then(Json::as_f64).unwrap_or(0.0);
            let s = c.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
            println!("{largest_mesh} t={t}: pooled in-place rmv is {s:.2}x the PR-1 pooled path");
        }
    }
}
