//! SMVP hot-path throughput artifact (`BENCH_smvp.json`).
//!
//! Measures kernel × threads × mesh GFLOP/s for the Spark98 kernel family,
//! comparing the allocating kernels and boxed per-task pool dispatch (the
//! state of the tree before the zero-allocation rework, reimplemented here
//! verbatim as frozen baselines) against the in-place `_into` kernels over
//! reusable workspaces and the pool's closure-broadcast fast path.
//!
//! Usage:
//!
//! ```text
//! bench_smvp [--quick] [--with-lmv] [--out PATH]   # run, write JSON artifact
//! bench_smvp --validate PATH                       # schema-check an artifact
//! ```
//!
//! `--quick` runs a single tiny mesh with few repetitions — enough for CI to
//! exercise the full code path and validate the artifact schema, not enough
//! for stable numbers. Honors `QUAKE_SCALE` in full mode.
//!
//! `--with-lmv` opts the per-entry-mutex `lmv` kernel back into the sweep.
//! It is excluded by default: its ~0.2 GFLOP/s is a structural property of
//! taking one lock per matrix entry (confirmed flat across thread counts
//! 1–8, not a tuning artifact or contention knee), so re-measuring it every
//! run adds minutes of wall time without information. See EXPERIMENTS.md.

use quake_app::executor::BspExecutor;
use quake_app::family::{standard_family, AppConfig, QuakeApp};
use quake_app::transport::run as transport_run;
use quake_app::transport::wire::RunSpec;
use quake_app::transport::{LinkParams, TransportKind};
use quake_app::DistributedSystem;
use quake_bench::json::{parse, Json};
use quake_fem::assembly::{assemble, UniformMaterial};
use quake_memsim::hierarchy::Hierarchy;
use quake_mesh::ground::Material;
use quake_partition::comm::MaxRateAnalysis;
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_spark::pool::Task;
use quake_spark::{
    bmv, bmv_pooled_into, bmv_range_into, bmv_tiles_banded_into, bmv_tiles_range_into, lmv,
    lmv_into, pmv_pooled_into, rmv, rmv_into, rmv_pooled_into, simd_active, smv, smv_into,
    KernelWorkspace, WorkerPool,
};
use quake_sparse::bcsr::Bcsr3;
use quake_sparse::csr::Csr;
use quake_sparse::dense::{Mat3, Vec3};
use quake_sparse::sym::SymCsr;
use quake_sparse::tiles::{BandPlan, Bcsr3Tiles};
use std::time::Instant;

const SCHEMA: &str = "quake-bench/smvp-v1";

// ---------------------------------------------------------------------------
// Frozen PR-1 baselines.
//
// These reproduce the pooled kernels as they stood before this rework: one
// boxed closure per chunk submitted through `WorkerPool::execute`, fresh
// reduction buffers allocated and zeroed on every call, and a serial fold.
// They exist only as the comparison baseline for the artifact.
// ---------------------------------------------------------------------------

fn row_chunks_pr1(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    (0..threads)
        .map(|t| (n * t / threads)..(n * (t + 1) / threads))
        .collect()
}

fn rmv_pooled_pr1(matrix: &SymCsr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    let n = matrix.dim();
    let full = matrix.parts();
    let chunks = row_chunks_pr1(n, pool.threads());
    let mut buffers: Vec<Vec<f64>> = vec![vec![0.0; n]; chunks.len()];
    let tasks: Vec<Task> = buffers
        .iter_mut()
        .zip(&chunks)
        .map(|(buf, range)| {
            let range = range.clone();
            let full = &full;
            Box::new(move || {
                for r in range {
                    let mut local = full.diag[r] * x[r];
                    for k in full.row_ptr[r]..full.row_ptr[r + 1] {
                        let c = full.col_idx[k];
                        let v = full.values[k];
                        local += v * x[c];
                        buf[c] += v * x[r];
                    }
                    buf[r] += local;
                }
            }) as Task
        })
        .collect();
    pool.execute(tasks);
    let mut y = vec![0.0; n];
    for buf in buffers {
        for (yi, bi) in y.iter_mut().zip(buf) {
            *yi += bi;
        }
    }
    y
}

fn pmv_pooled_pr1(matrix: &Csr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    let n = matrix.rows();
    let mut y = vec![0.0; n];
    let chunks = row_chunks_pr1(n, pool.threads());
    let mut tasks: Vec<Task> = Vec::with_capacity(chunks.len());
    let mut rest: &mut [f64] = &mut y;
    for range in &chunks {
        let (mine, tail) = rest.split_at_mut(range.len());
        rest = tail;
        let range = range.clone();
        tasks.push(Box::new(move || {
            for (slot, r) in mine.iter_mut().zip(range) {
                let mut sum = 0.0;
                for (c, v) in matrix.row(r).pairs() {
                    sum += v * x[c];
                }
                *slot = sum;
            }
        }) as Task);
    }
    pool.execute(tasks);
    y
}

/// The pooled block kernel's inner loop as it stood before the
/// register-blocked microkernel: safe indexing, one `Mat3::mul_vec` per
/// block, a `Vec3` accumulator. Frozen here as the comparison baseline for
/// the `bmv_range_into` register-blocked 3×3 microkernel (bitwise-equal
/// output, so the pair isolates pure code-generation gains).
fn bmv_serial_mulvec(matrix: &Bcsr3, x: &[Vec3], y: &mut [Vec3]) {
    let row_ptr = matrix.row_ptr();
    let col_idx = matrix.col_idx();
    let blocks: &[Mat3] = matrix.blocks();
    for (r, slot) in y.iter_mut().enumerate() {
        let mut sum = Vec3::ZERO;
        for k in row_ptr[r]..row_ptr[r + 1] {
            sum += blocks[k].mul_vec(x[col_idx[k]]);
        }
        *slot = sum;
    }
}

// ---------------------------------------------------------------------------
// Measurement harness.
// ---------------------------------------------------------------------------

/// Subdomain count for the executor schedule rows: enough PEs that the
/// exchange is real on every thread count the sweep uses.
const EXEC_PARTS: usize = 4;

struct Case {
    mesh: String,
    nodes: usize,
    sym: SymCsr,
    csr: Csr,
    bcsr: Bcsr3,
    /// The same stiffness sharded over [`EXEC_PARTS`] PEs, for the
    /// barrier-vs-overlap executor schedule rows.
    system: DistributedSystem,
    /// Useful flops of one product, the paper's `F = 2m` over full storage.
    flops: f64,
}

fn build_case(app: &QuakeApp) -> Case {
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let sys = assemble(&app.mesh, &UniformMaterial(mat)).expect("assembly");
    let bcsr = sys.stiffness;
    let csr = bcsr.to_scalar_csr();
    let sym = SymCsr::from_csr(&csr, 1e-6 * 1e9).expect("symmetric stiffness");
    let flops = 2.0 * csr.nnz() as f64;
    let partition = RecursiveBisection::inertial()
        .partition(&app.mesh, EXEC_PARTS)
        .expect("bench partition");
    let system = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
        .expect("bench distributed system");
    Case {
        mesh: app.config.name.clone(),
        nodes: bcsr.block_rows(),
        sym,
        csr,
        bcsr,
        system,
        flops,
    }
}

/// Measurement plan: several short blocks whose fastest block is kept.
/// The minimum filters out interference from other load on the machine,
/// which a single long average would fold into the result.
///
/// Fast ops are grouped into ~50 ms blocks so the `Instant` overhead
/// amortizes away. Ops that already cost a millisecond alternate
/// *per call* instead: this shared host's load drifts on a seconds
/// scale, and 50 ms same-side blocks alias that drift into the pair's
/// ratio (measured swinging 0.8–1.1× between repeats), while per-call
/// interleaving pins both sides to the same load within microseconds
/// and the ratio stabilizes. Those per-call samples are summarized by
/// the median rather than the minimum (see `time_pair`).
fn plan(quick: bool, f: &mut impl FnMut()) -> (usize, usize) {
    f(); // warmup (also grows workspaces to their high-water mark)
    if quick {
        (2, 2)
    } else {
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().as_secs_f64().max(1e-7);
        if once >= 1e-3 {
            (96, 1)
        } else {
            (6, ((0.05 / once) as usize).clamp(2, 2_000))
        }
    }
}

fn best_block(best: &mut f64, per_block: usize, f: &mut impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..per_block {
        f();
    }
    *best = best.min(t0.elapsed().as_secs_f64() / per_block as f64);
}

/// Times a baseline/candidate pair with interleaved blocks (B C B C …), so
/// machine-load drift hits both sides equally and their ratio stays fair.
fn time_pair(quick: bool, mut f: impl FnMut(), mut g: impl FnMut()) -> [(f64, usize); 2] {
    let (blocks, per_block) = plan(quick, &mut f);
    g(); // warm the candidate too
    if per_block == 1 {
        // Fine mode: per-call interleaving, per-side median. This host's
        // load wanders in multi-second waves with 2–4× amplitude;
        // adjacent f/g calls see near-identical load, so the two medians
        // ride the same wave and their ratio is drift-free, where
        // per-side minima would each cherry-pick a different load dip.
        let (mut sf, mut sg) = (Vec::new(), Vec::new());
        for _ in 0..blocks {
            let t0 = Instant::now();
            f();
            sf.push(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            g();
            sg.push(t0.elapsed().as_secs_f64());
        }
        let median = |s: &mut Vec<f64>| {
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        return [(median(&mut sf), blocks), (median(&mut sg), blocks)];
    }
    let (mut bf, mut bg) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..blocks {
        best_block(&mut bf, per_block, &mut f);
        best_block(&mut bg, per_block, &mut g);
    }
    [(bf, blocks * per_block), (bg, blocks * per_block)]
}

struct Recorder {
    quick: bool,
    entries: Vec<Json>,
    /// (mesh, kernel, dispatch, variant, threads) → secs/op for comparisons.
    timings: Vec<(String, &'static str, &'static str, &'static str, usize, f64)>,
}

impl Recorder {
    /// Records a baseline/candidate pair measured with interleaved blocks.
    #[allow(clippy::too_many_arguments)]
    fn record_pair(
        &mut self,
        case: &Case,
        kernel: &'static str,
        base: (&'static str, &'static str),
        cand: (&'static str, &'static str),
        threads: usize,
        f: impl FnMut(),
        g: impl FnMut(),
    ) {
        let [(bs, br), (cs, cr)] = time_pair(self.quick, f, g);
        self.push(case, kernel, base.0, base.1, threads, bs, br);
        self.push(case, kernel, cand.0, cand.1, threads, cs, cr);
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        case: &Case,
        kernel: &'static str,
        dispatch: &'static str,
        variant: &'static str,
        threads: usize,
        secs: f64,
        reps: usize,
    ) {
        let gflops = case.flops / secs / 1e9;
        eprintln!(
            "  {kernel:>4} {dispatch:<12} {variant:<11} t={threads}  {:>10.2} us/op  {gflops:>7.3} GFLOP/s",
            secs * 1e6
        );
        self.entries.push(Json::obj(vec![
            ("mesh", Json::str(&case.mesh)),
            ("nodes", Json::num(case.nodes as f64)),
            ("scalar_nnz", Json::num(case.csr.nnz() as f64)),
            ("kernel", Json::str(kernel)),
            ("dispatch", Json::str(dispatch)),
            ("variant", Json::str(variant)),
            ("threads", Json::num(threads as f64)),
            ("reps", Json::num(reps as f64)),
            ("secs_per_op", Json::num(secs)),
            ("gflops", Json::num(gflops)),
        ]));
        self.timings
            .push((case.mesh.clone(), kernel, dispatch, variant, threads, secs));
    }

    fn lookup(
        &self,
        mesh: &str,
        kernel: &str,
        dispatch: &str,
        variant: &str,
        threads: usize,
    ) -> Option<f64> {
        self.timings
            .iter()
            .find(|(m, k, d, v, t, _)| {
                m == mesh && *k == kernel && *d == dispatch && *v == variant && *t == threads
            })
            .map(|&(_, _, _, _, _, secs)| secs)
    }
}

fn run_case(rec: &mut Recorder, case: &Case, thread_counts: &[usize], with_lmv: bool) {
    eprintln!(
        "mesh {} ({} nodes, {} scalar nnz):",
        case.mesh,
        case.nodes,
        case.csr.nnz()
    );
    let n = case.sym.dim();
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
    let xb: Vec<Vec3> = (0..case.bcsr.block_rows())
        .map(|i| Vec3::new(i as f64, (i % 7) as f64, 1.0))
        .collect();
    let mut y = vec![0.0; n];
    let mut yb = vec![Vec3::ZERO; case.bcsr.block_rows()];
    let mut ws = KernelWorkspace::new();

    // Serial baseline: allocating vs in-place.
    rec.record_pair(
        case,
        "smv",
        ("serial", "alloc"),
        ("serial", "in_place"),
        1,
        || {
            std::hint::black_box(smv(&case.sym, &x));
        },
        || {
            smv_into(&case.sym, &x, &mut y);
            std::hint::black_box(&y);
        },
    );

    // Block microkernel pair: the frozen per-block `Mat3::mul_vec` loop vs
    // the register-blocked 3×3 microkernel. Same dispatch
    // (serial, in place), bitwise-equal output — the ratio is pure codegen.
    {
        let mut yb2 = vec![Vec3::ZERO; case.bcsr.block_rows()];
        let rows = 0..case.bcsr.block_rows();
        rec.record_pair(
            case,
            "bmv",
            ("serial", "mulvec"),
            ("serial", "micro"),
            1,
            || {
                bmv_serial_mulvec(&case.bcsr, &xb, &mut yb);
                std::hint::black_box(&yb);
            },
            || {
                bmv_range_into(&case.bcsr, &xb, rows.clone(), &mut yb2);
                std::hint::black_box(&yb2);
            },
        );
    }

    // SIMD tile-kernel pairs over the flat BCSR tile layout. Two interleaved
    // pairs so each headline ratio comes from one drift-cancelled pair: the
    // scalar 3×3 microkernel is re-measured as `micro_ref` against the AVX
    // tile kernel (layout + vectorization + prefetch), then the flat tile
    // sweep against the memsim-sized row-band blocked sweep (pure blocking).
    // All three outputs are asserted bitwise-equal to the scalar kernel —
    // the ratios are layout and code generation, never arithmetic.
    {
        let tiles = Bcsr3Tiles::from_bcsr(&case.bcsr);
        let window = (Hierarchy::modern_core_like().l2().capacity_bytes() / 2) as usize;
        let plan = BandPlan::for_tiles(&tiles, window);
        let nb = case.bcsr.block_rows();
        let mut y_ref = vec![Vec3::ZERO; nb];
        let mut y_simd = vec![Vec3::ZERO; nb];
        let mut y_band = vec![Vec3::ZERO; nb];
        rec.record_pair(
            case,
            "bmv",
            ("serial", "micro_ref"),
            ("serial", "micro_simd"),
            1,
            || {
                bmv_range_into(&case.bcsr, &xb, 0..nb, &mut y_ref);
                std::hint::black_box(&y_ref);
            },
            || {
                bmv_tiles_range_into(&tiles, &xb, 0..nb, &mut y_simd);
                std::hint::black_box(&y_simd);
            },
        );
        rec.record_pair(
            case,
            "bmv",
            ("serial", "micro_simd_flat"),
            ("serial", "micro_simd_banded"),
            1,
            || {
                bmv_tiles_range_into(&tiles, &xb, 0..nb, &mut y_simd);
                std::hint::black_box(&y_simd);
            },
            || {
                bmv_tiles_banded_into(&tiles, &plan, &xb, 0..nb, &mut y_band);
                std::hint::black_box(&y_band);
            },
        );
        let bits = |v: &[Vec3]| -> Vec<(u64, u64, u64)> {
            v.iter()
                .map(|u| (u.x.to_bits(), u.y.to_bits(), u.z.to_bits()))
                .collect()
        };
        assert_eq!(
            bits(&y_ref),
            bits(&y_simd),
            "tile kernel diverged from the scalar microkernel in the bench harness"
        );
        assert_eq!(
            bits(&y_simd),
            bits(&y_band),
            "banded tile sweep diverged from the flat sweep in the bench harness"
        );
    }

    for &threads in thread_counts {
        let pool = WorkerPool::new(threads);

        // Spawn-per-call kernels: allocating vs in-place twins.
        rec.record_pair(
            case,
            "rmv",
            ("spawn", "alloc"),
            ("spawn", "in_place"),
            threads,
            || {
                std::hint::black_box(rmv(&case.sym, &x, threads));
            },
            || {
                rmv_into(&case.sym, &x, threads, &mut y, &mut ws);
                std::hint::black_box(&y);
            },
        );
        // The mutex-per-entry lmv kernel is opt-in (see module docs): its
        // throughput is pinned by lock traffic, a structural property that
        // never moves between runs.
        if with_lmv {
            rec.record_pair(
                case,
                "lmv",
                ("spawn", "alloc"),
                ("spawn", "in_place"),
                threads,
                || {
                    std::hint::black_box(lmv(&case.sym, &x, threads));
                },
                || {
                    lmv_into(&case.sym, &x, threads, &mut y, &mut ws);
                    std::hint::black_box(&y);
                },
            );
        }

        // Pooled: frozen PR-1 dispatch (boxed tasks, allocating buffers,
        // serial fold) vs the broadcast + workspace fast path.
        rec.record_pair(
            case,
            "rmv",
            ("pooled_boxed", "alloc"),
            ("pooled", "in_place"),
            threads,
            || {
                std::hint::black_box(rmv_pooled_pr1(&case.sym, &x, &pool));
            },
            || {
                rmv_pooled_into(&case.sym, &x, &pool, &mut y, &mut ws);
                std::hint::black_box(&y);
            },
        );
        rec.record_pair(
            case,
            "pmv",
            ("pooled_boxed", "alloc"),
            ("pooled", "in_place"),
            threads,
            || {
                std::hint::black_box(pmv_pooled_pr1(&case.csr, &x, &pool));
            },
            || {
                pmv_pooled_into(&case.csr, &x, &pool, &mut y);
                std::hint::black_box(&y);
            },
        );

        // Block kernels: spawn-allocating vs pooled in-place.
        rec.record_pair(
            case,
            "bmv",
            ("spawn", "alloc"),
            ("pooled", "in_place"),
            threads,
            || {
                std::hint::black_box(bmv(&case.bcsr, &xb, threads));
            },
            || {
                bmv_pooled_into(&case.bcsr, &xb, &pool, &mut yb);
                std::hint::black_box(&yb);
            },
        );

        // Executor schedules: the strict-barrier BSP step vs the
        // latency-hiding overlap step, same product sharded over
        // EXEC_PARTS PEs. Outputs are bitwise-equal; the ratio is pure
        // schedule (one fewer barrier, exchange hidden behind interior
        // rows). GFLOP/s is reported over full-storage flops, so the
        // executor rows read slightly low (replicated boundary rows do
        // extra work) but the two sides stay directly comparable.
        {
            let nodes = case.system.global_nodes();
            let xg: Vec<Vec3> = (0..nodes)
                .map(|i| Vec3::new(i as f64, (i % 7) as f64, 1.0))
                .collect();
            let mut y_barrier = vec![Vec3::ZERO; nodes];
            let mut y_overlap = vec![Vec3::ZERO; nodes];
            let mut exec_barrier = BspExecutor::with_options(&case.system, threads, false, false);
            let mut exec_overlap = BspExecutor::with_options(&case.system, threads, false, true);
            rec.record_pair(
                case,
                "exec",
                ("barrier", "in_place"),
                ("overlap", "in_place"),
                threads,
                || {
                    exec_barrier.step_into(&xg, &mut y_barrier);
                    std::hint::black_box(&y_barrier);
                },
                || {
                    exec_overlap.step_into(&xg, &mut y_overlap);
                    std::hint::black_box(&y_overlap);
                },
            );
            assert!(
                y_barrier.iter().zip(&y_overlap).all(|(a, b)| (
                    a.x.to_bits(),
                    a.y.to_bits(),
                    a.z.to_bits()
                ) == (
                    b.x.to_bits(),
                    b.y.to_bits(),
                    b.z.to_bits()
                )),
                "overlap schedule diverged from barrier schedule in the bench harness"
            );
        }
    }
}

/// Shared-memory vs multi-process transport over whole instrumented runs.
///
/// One op is one BSP step of a full `steps`-step run through the
/// spec-driven runner. For `proc` that amortizes in the ensemble's real
/// startup cost — forking the shard processes, the children's problem
/// rebuild and the socket microbenchmark — which is the honest unit a
/// user pays for `--transport proc`. Runs are interleaved shared/proc so
/// host-load drift cancels in the ratio, and the folded products are
/// checked bitwise-equal every repetition. Returns the socket link
/// parameters measured by the proc ensemble (Eq. (2)'s T_l/T_w on this
/// host's Unix-domain sockets).
fn transport_pair(rec: &mut Recorder, case: &Case, period: f64, scale: f64) -> LinkParams {
    let steps: u64 = if rec.quick { 3 } else { 10 };
    let reps = if rec.quick { 2 } else { 5 };
    let spec = RunSpec {
        period,
        scale,
        parts: EXEC_PARTS,
        threads: 2,
        steps,
        shards: 2,
        ..RunSpec::default()
    };
    let built = transport_run::build(&spec).expect("transport-pair build");
    let bitwise = |a: &[Vec3], b: &[Vec3]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(u, v)| {
                (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                    == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
            })
    };
    // Warm both paths (first proc run also pages in the child binary).
    transport_run::run_with(TransportKind::Shared, &spec, &built).expect("shared warmup");
    transport_run::run_with(TransportKind::Proc, &spec, &built).expect("proc warmup");
    let (mut s_shared, mut s_proc) = (Vec::new(), Vec::new());
    let mut link = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let a = transport_run::run_with(TransportKind::Shared, &spec, &built)
            .expect("shared transport run");
        s_shared.push(t0.elapsed().as_secs_f64() / steps as f64);
        let t0 = Instant::now();
        let b = transport_run::run_with(TransportKind::Proc, &spec, &built)
            .expect("proc transport run");
        s_proc.push(t0.elapsed().as_secs_f64() / steps as f64);
        assert!(
            bitwise(&a.y, &b.y),
            "proc transport diverged from shared in the bench harness"
        );
        assert!(b.link.measured, "proc link must be microbenchmarked");
        link = Some(b.link);
    }
    let median = |s: &mut Vec<f64>| {
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let n = reps * steps as usize;
    rec.push(
        case,
        "exec",
        "shared",
        "transport",
        2,
        median(&mut s_shared),
        n,
    );
    rec.push(case, "exec", "proc", "transport", 2, median(&mut s_proc), n);
    link.expect("at least one proc repetition ran")
}

/// Per-shard respawn vs whole-ensemble retry: the wall-clock price of
/// recovering one killed shard.
///
/// One op is one complete recovered run: shard 1 is killed once at a fixed
/// step by the deterministic kill plan and the supervisor must bring the
/// run home. The candidate arm leaves the restart budget open so the
/// recovery ladder stops at the shard-respawn rung; the baseline arm sets
/// the budget to zero so the identical kill falls through to the
/// whole-ensemble retry. Both arms are checked bitwise-equal against a
/// fault-free shared-memory run, and each arm's fault report must prove
/// the intended rung fired — otherwise the ratio would compare two
/// different failures instead of the two recovery paths.
fn recovery_pair(rec: &mut Recorder, case: &Case, period: f64, scale: f64) {
    let steps: u64 = if rec.quick { 4 } else { 8 };
    let reps = if rec.quick { 2 } else { 3 };
    let mk_spec = |restart_budget: u64| RunSpec {
        period,
        scale,
        parts: EXEC_PARTS,
        threads: 2,
        steps,
        shards: 2,
        recovery: "restart".to_string(),
        conn_timeout: 5.0,
        restart_budget,
        ..RunSpec::default()
    };
    let spec_respawn = mk_spec(2);
    let spec_ensemble = mk_spec(0);
    let built = transport_run::build(&spec_respawn).expect("recovery-pair build");
    let reference = transport_run::run_with(TransportKind::Shared, &spec_respawn, &built)
        .expect("shared reference");
    let bitwise = |a: &[Vec3], b: &[Vec3]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(u, v)| {
                (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                    == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
            })
    };
    // Returns (whole-run seconds, shard respawns, ensemble restarts).
    let recovered_run = |spec: &RunSpec, arm: &str, rep: usize| -> (f64, u64, u64) {
        let marker = std::env::temp_dir().join(format!(
            "quake-bench-kill-{}-{arm}-{rep}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&marker);
        std::env::set_var("QUAKE_PROC_KILL", "1:2");
        std::env::set_var("QUAKE_PROC_KILL_ONCE", &marker);
        let t0 = Instant::now();
        let result = transport_run::run_with(TransportKind::Proc, spec, &built);
        let secs = t0.elapsed().as_secs_f64();
        std::env::remove_var("QUAKE_PROC_KILL");
        std::env::remove_var("QUAKE_PROC_KILL_ONCE");
        assert!(marker.exists(), "the kill plan must have armed ({arm})");
        let _ = std::fs::remove_file(&marker);
        let out = result.expect("a recovery run must come home");
        assert!(
            bitwise(&reference.y, &out.y),
            "recovered {arm} output diverged from the shared transport"
        );
        let fr = out
            .report
            .fault
            .expect("a recovery run carries a fault report");
        (secs, fr.respawned_shards, fr.ensemble_restarts)
    };
    let (mut s_respawn, mut s_ensemble) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        let (secs, respawned, ensembles) = recovered_run(&spec_respawn, "respawn", rep);
        assert!(
            respawned >= 1 && ensembles == 0,
            "candidate arm must recover at the shard-respawn rung \
             (got {respawned} respawns, {ensembles} ensemble restarts)"
        );
        s_respawn.push(secs);
        let (secs, respawned, ensembles) = recovered_run(&spec_ensemble, "ensemble", rep);
        assert!(
            respawned == 0 && ensembles == 1,
            "baseline arm must recover via the whole-ensemble retry \
             (got {respawned} respawns, {ensembles} ensemble restarts)"
        );
        s_ensemble.push(secs);
    }
    let median = |s: &mut Vec<f64>| {
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    rec.push(
        case,
        "exec",
        "ensemble",
        "recovery",
        2,
        median(&mut s_ensemble),
        reps,
    );
    rec.push(
        case,
        "exec",
        "respawn",
        "recovery",
        2,
        median(&mut s_respawn),
        reps,
    );
}

/// Flat vs node-aggregated proc exchange under an emulated inter-node
/// link, plus both communication models scored against the measured
/// aggregated exchange.
///
/// One op is one BSP step's *exchange wall* (the instrumented
/// `phases.exchange` of a full proc run, divided by steps) — startup
/// and compute are identical across the arms by construction, and the
/// whole point of aggregation is what it does to the exchange. Both
/// arms place 16 PEs / 4 shard processes on the same 2-node topology
/// with a 5 ms netem-style emulated inter-node latency (on a single
/// host the intra- and inter-node legs are otherwise the same ~3 us
/// socket, which no message-count optimisation can tell apart; 5 ms
/// also clears the full-mode mesh's compute-skew floor, so the walls
/// compare latency terms, not noise). The
/// baseline arm sets `aggregate = false`: same placement, same slow
/// link, but every boundary frame crosses it individually. The
/// candidate aggregates: boundary partials gather intra-node over the
/// raw socket and exactly one merged block per (node, node) pair pays
/// the emulated latency. Runs are interleaved so host-load drift
/// cancels, and the folded products are checked bitwise-equal every
/// repetition — aggregation is transport-level and must not perturb
/// arithmetic.
///
/// Returns `(maxrate_rel_error, eq2_rel_error)`: the relative error of
/// the max-rate model (Bienz, Gropp & Olson — busiest node's injection
/// port over the slow link plus the intra-node gather leg) and of the
/// paper's Eq. (2) postal model, both against the aggregated run's
/// measured per-step exchange wall. Both models price the slow leg at
/// `T_l + wire_latency`; Eq. (2) charges it for every flat boundary
/// message, which is exactly the overprediction the max-rate model
/// exists to fix once the transport aggregates.
fn node_pair(rec: &mut Recorder, case: &Case, period: f64, scale: f64) -> (f64, f64) {
    const NODE_PARTS: usize = 16;
    const NODE_SHARDS: usize = 4;
    const NODES: usize = 2;
    const WIRE_LATENCY: f64 = 5e-3;
    let steps: u64 = if rec.quick { 3 } else { 12 };
    let reps = if rec.quick { 2 } else { 5 };
    let mk_spec = |aggregate: bool| RunSpec {
        period,
        scale,
        parts: NODE_PARTS,
        threads: 2,
        steps,
        shards: NODE_SHARDS,
        nodes: NODES,
        aggregate,
        wire_latency: WIRE_LATENCY,
        ..RunSpec::default()
    };
    let spec_flat = mk_spec(false);
    let spec_node = mk_spec(true);
    let built = transport_run::build(&spec_flat).expect("node-pair build");
    let bitwise = |a: &[Vec3], b: &[Vec3]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(u, v)| {
                (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                    == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
            })
    };
    // The emulated link stretches each ensemble's lifetime well past the
    // other pairs', so a transient host-load spike killing one shard
    // (the supervisor's ladder already retried) surfaces here first;
    // one re-run of the whole rep keeps the pair robust without
    // polluting the timings — only the successful run is recorded.
    let run = |spec: &RunSpec| {
        transport_run::run_with(TransportKind::Proc, spec, &built)
            .or_else(|_| transport_run::run_with(TransportKind::Proc, spec, &built))
    };
    run(&spec_flat).expect("flat warmup");
    run(&spec_node).expect("aggregated warmup");
    let (mut s_flat, mut s_node) = (Vec::new(), Vec::new());
    let mut exchange_and_link = None;
    for _ in 0..reps {
        let a = run(&spec_flat).expect("flat proc run");
        s_flat.push(a.report.phases.exchange / steps as f64);
        let b = run(&spec_node).expect("aggregated proc run");
        s_node.push(b.report.phases.exchange / steps as f64);
        assert!(
            bitwise(&a.y, &b.y),
            "node-aggregated exchange diverged from flat in the bench harness"
        );
        assert!(b.link.measured, "proc link must be microbenchmarked");
        exchange_and_link = Some((b.report.phases.exchange, b.link));
    }
    let median = |s: &mut Vec<f64>| {
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let n = reps * steps as usize;
    rec.push(case, "exec", "flat", "exchange", 2, median(&mut s_flat), n);
    rec.push(case, "exec", "node2", "exchange", 2, median(&mut s_node), n);

    // Score both models against the last aggregated run's exchange wall.
    // The emulated inter-node hold is part of the link both must price,
    // so it folds into the slow leg's latency term; the intra-node
    // gather leg rides the raw measured socket.
    let (exchange, link) = exchange_and_link.expect("at least one aggregated repetition ran");
    let measured = (exchange / steps as f64).max(f64::MIN_POSITIVE);
    let mr = MaxRateAnalysis::new(&built.app.mesh, &built.partition, NODES);
    let comm = mr.comm();
    let t_l_eff = link.t_l + WIRE_LATENCY;
    let eq2 = comm.b_max() as f64 * t_l_eff + comm.c_max() as f64 * link.t_w;
    let mr_pred = mr.predicted_with_local(t_l_eff, link.t_w, link.t_l, link.t_w);
    (
        (measured - mr_pred).abs() / measured,
        (measured - eq2).abs() / measured,
    )
}

/// ROADMAP item 4: the AVX tile kernel under RCM renumbering, end to end
/// through the spec-driven runner.
///
/// PR 7's kernel pairs measure `micro-simd` at natural ordering, where
/// the mesh's scattered column windows keep the band planner's blocks
/// short. This pair runs whole instrumented shared-transport runs with
/// `rcm = true` on both arms — RCM shrinks the column windows, so the
/// tile sweep sees the locality the memsim planner was sized for — and
/// flips only the kernel. Outputs are checked bitwise-equal every
/// repetition (the SIMD kernel's contract across every schedule).
fn simd_rcm_pair(rec: &mut Recorder, case: &Case, period: f64, scale: f64) {
    let steps: u64 = if rec.quick { 3 } else { 12 };
    let reps = if rec.quick { 2 } else { 5 };
    let mk_spec = |kernel: &str| RunSpec {
        period,
        scale,
        parts: EXEC_PARTS,
        threads: 2,
        steps,
        rcm: true,
        kernel: kernel.to_string(),
        ..RunSpec::default()
    };
    let spec_scalar = mk_spec("micro");
    let spec_simd = mk_spec("micro-simd");
    let built = transport_run::build(&spec_scalar).expect("simd-rcm-pair build");
    let bitwise = |a: &[Vec3], b: &[Vec3]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(u, v)| {
                (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                    == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
            })
    };
    transport_run::run_with(TransportKind::Shared, &spec_scalar, &built).expect("scalar warmup");
    transport_run::run_with(TransportKind::Shared, &spec_simd, &built).expect("simd warmup");
    let (mut s_scalar, mut s_simd) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let t0 = Instant::now();
        let a = transport_run::run_with(TransportKind::Shared, &spec_scalar, &built)
            .expect("scalar rcm run");
        s_scalar.push(t0.elapsed().as_secs_f64() / steps as f64);
        let t0 = Instant::now();
        let b = transport_run::run_with(TransportKind::Shared, &spec_simd, &built)
            .expect("simd rcm run");
        s_simd.push(t0.elapsed().as_secs_f64() / steps as f64);
        assert!(
            bitwise(&a.y, &b.y),
            "micro-simd under RCM diverged from the scalar microkernel in the bench harness"
        );
    }
    let median = |s: &mut Vec<f64>| {
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let n = reps * steps as usize;
    rec.push(case, "exec", "micro", "rcm", 2, median(&mut s_scalar), n);
    rec.push(case, "exec", "micro_simd", "rcm", 2, median(&mut s_simd), n);
}

fn comparisons(rec: &Recorder, largest_mesh: &str, thread_counts: &[usize]) -> Vec<Json> {
    let meshes: Vec<String> = {
        let mut seen = Vec::new();
        for (m, ..) in &rec.timings {
            if !seen.contains(m) {
                seen.push(m.clone());
            }
        }
        seen
    };
    let mut out = Vec::new();
    for mesh in &meshes {
        for &threads in thread_counts {
            for (kernel, base_dispatch) in [("rmv", "pooled_boxed"), ("pmv", "pooled_boxed")] {
                let base = rec.lookup(mesh, kernel, base_dispatch, "alloc", threads);
                let cand = rec.lookup(mesh, kernel, "pooled", "in_place", threads);
                if let (Some(b), Some(c)) = (base, cand) {
                    out.push(Json::obj(vec![
                        ("mesh", Json::str(mesh)),
                        ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                        ("threads", Json::num(threads as f64)),
                        ("kernel", Json::str(kernel)),
                        (
                            "baseline",
                            Json::str(format!("{kernel}_{base_dispatch}_alloc")),
                        ),
                        ("candidate", Json::str(format!("{kernel}_pooled_in_place"))),
                        ("speedup", Json::num(b / c)),
                    ]));
                }
            }
            // Allocating spawn kernel vs its in-place twin.
            let base = rec.lookup(mesh, "rmv", "spawn", "alloc", threads);
            let cand = rec.lookup(mesh, "rmv", "spawn", "in_place", threads);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(threads as f64)),
                    ("kernel", Json::str("rmv")),
                    ("baseline", Json::str("rmv_spawn_alloc")),
                    ("candidate", Json::str("rmv_spawn_in_place")),
                    ("speedup", Json::num(b / c)),
                ]));
            }
            // Barrier vs latency-hiding executor schedule.
            let base = rec.lookup(mesh, "exec", "barrier", "in_place", threads);
            let cand = rec.lookup(mesh, "exec", "overlap", "in_place", threads);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(threads as f64)),
                    ("kernel", Json::str("exec")),
                    ("baseline", Json::str("exec_barrier_in_place")),
                    ("candidate", Json::str("exec_overlap_in_place")),
                    ("speedup", Json::num(b / c)),
                ]));
            }
            // Shared-memory vs multi-process transport (only recorded at
            // the transport pair's fixed thread count).
            let base = rec.lookup(mesh, "exec", "shared", "transport", threads);
            let cand = rec.lookup(mesh, "exec", "proc", "transport", threads);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(threads as f64)),
                    ("kernel", Json::str("exec")),
                    ("baseline", Json::str("exec_shared_transport")),
                    ("candidate", Json::str("exec_proc_transport")),
                    ("speedup", Json::num(b / c)),
                ]));
            }
            // Flat vs node-aggregated proc exchange (only recorded at the
            // node pair's fixed thread count).
            let base = rec.lookup(mesh, "exec", "flat", "exchange", threads);
            let cand = rec.lookup(mesh, "exec", "node2", "exchange", threads);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(threads as f64)),
                    ("kernel", Json::str("exec")),
                    ("baseline", Json::str("exec_flat_exchange")),
                    ("candidate", Json::str("exec_node2_exchange")),
                    ("speedup", Json::num(b / c)),
                ]));
            }
            // Scalar vs AVX tile kernel under RCM, end to end (only
            // recorded at the simd+rcm pair's thread count).
            let base = rec.lookup(mesh, "exec", "micro", "rcm", threads);
            let cand = rec.lookup(mesh, "exec", "micro_simd", "rcm", threads);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(threads as f64)),
                    ("kernel", Json::str("exec")),
                    ("baseline", Json::str("exec_micro_rcm")),
                    ("candidate", Json::str("exec_micro_simd_rcm")),
                    ("speedup", Json::num(b / c)),
                ]));
            }
            // Shard-level respawn vs whole-ensemble retry after a mid-run
            // kill (only recorded at the recovery pair's thread count).
            let base = rec.lookup(mesh, "exec", "ensemble", "recovery", threads);
            let cand = rec.lookup(mesh, "exec", "respawn", "recovery", threads);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(threads as f64)),
                    ("kernel", Json::str("exec")),
                    ("baseline", Json::str("exec_ensemble_recovery")),
                    ("candidate", Json::str("exec_respawn_recovery")),
                    ("speedup", Json::num(b / c)),
                ]));
            }
        }
        // Frozen Mat3::mul_vec loop vs the 3×3 register-blocked microkernel
        // (serial pair, measured once per mesh).
        let base = rec.lookup(mesh, "bmv", "serial", "mulvec", 1);
        let cand = rec.lookup(mesh, "bmv", "serial", "micro", 1);
        if let (Some(b), Some(c)) = (base, cand) {
            out.push(Json::obj(vec![
                ("mesh", Json::str(mesh)),
                ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                ("threads", Json::num(1.0)),
                ("kernel", Json::str("bmv")),
                ("baseline", Json::str("bmv_serial_mulvec")),
                ("candidate", Json::str("bmv_serial_micro")),
                ("speedup", Json::num(b / c)),
            ]));
        }
        // Scalar microkernel vs the AVX tile kernel, and flat tile sweep vs
        // the row-band blocked sweep (serial pairs, measured once per mesh;
        // each ratio comes from one interleaved pair).
        for (base_variant, cand_variant) in [
            ("micro_ref", "micro_simd"),
            ("micro_simd_flat", "micro_simd_banded"),
        ] {
            let base = rec.lookup(mesh, "bmv", "serial", base_variant, 1);
            let cand = rec.lookup(mesh, "bmv", "serial", cand_variant, 1);
            if let (Some(b), Some(c)) = (base, cand) {
                out.push(Json::obj(vec![
                    ("mesh", Json::str(mesh)),
                    ("largest_mesh", Json::Bool(mesh == largest_mesh)),
                    ("threads", Json::num(1.0)),
                    ("kernel", Json::str("bmv")),
                    ("baseline", Json::str(format!("bmv_serial_{base_variant}"))),
                    ("candidate", Json::str(format!("bmv_serial_{cand_variant}"))),
                    ("speedup", Json::num(b / c)),
                ]));
            }
        }
    }
    out
}

fn render(doc_fields: Vec<(&str, Json)>, entries: &[Json], comps: &[Json]) -> String {
    // Valid JSON, formatted one entry per line so the committed artifact
    // diffs readably.
    let mut out = String::from("{\n");
    for (k, v) in &doc_fields {
        out.push_str(&format!("  \"{k}\": {v},\n"));
    }
    let list = |items: &[Json]| {
        items
            .iter()
            .map(|e| format!("    {e}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    out.push_str("  \"entries\": [\n");
    out.push_str(&list(entries));
    out.push_str("\n  ],\n  \"comparisons\": [\n");
    out.push_str(&list(comps));
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Schema validation (`--validate`).
// ---------------------------------------------------------------------------

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| e.to_string())?;
    let need_str = |v: &Json, key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    let need_num = |v: &Json, key: &str| -> Result<f64, String> {
        let x = v
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
        if !x.is_finite() {
            return Err(format!("field {key:?} is not finite"));
        }
        Ok(x)
    };

    if need_str(&doc, "schema")? != SCHEMA {
        return Err(format!("schema is not {SCHEMA:?}"));
    }
    need_num(&doc, "scale")?;
    // Eq. (2) link parameters measured on this host's Unix-domain sockets
    // by the proc-transport pair.
    for key in ["socket_t_l", "socket_t_w"] {
        if need_num(&doc, key)? <= 0.0 {
            return Err(format!("field {key:?} must be positive"));
        }
    }
    let quick = match doc.get("quick") {
        Some(&Json::Bool(b)) => b,
        _ => return Err("missing boolean field \"quick\"".into()),
    };
    // Predicted-vs-measured relative errors for the aggregated exchange,
    // both models scored by the node pair against the same measured wall.
    for key in ["maxrate_rel_error", "eq2_rel_error"] {
        if need_num(&doc, key)? < 0.0 {
            return Err(format!("field {key:?} must be non-negative"));
        }
    }

    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("missing array field \"entries\"")?;
    if entries.is_empty() {
        return Err("\"entries\" is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        let ctx = |err: String| format!("entries[{i}]: {err}");
        for key in ["mesh", "kernel", "dispatch", "variant"] {
            need_str(e, key).map_err(ctx)?;
        }
        for key in ["nodes", "scalar_nnz", "threads", "reps"] {
            let x = need_num(e, key).map_err(ctx)?;
            if x < 1.0 || x.fract() != 0.0 {
                return Err(ctx(format!("field {key:?} must be a positive integer")));
            }
        }
        for key in ["secs_per_op", "gflops"] {
            if need_num(e, key).map_err(ctx)? <= 0.0 {
                return Err(ctx(format!("field {key:?} must be positive")));
            }
        }
    }

    let comps = doc
        .get("comparisons")
        .and_then(Json::as_array)
        .ok_or("missing array field \"comparisons\"")?;
    for (i, c) in comps.iter().enumerate() {
        let ctx = |err: String| format!("comparisons[{i}]: {err}");
        for key in ["mesh", "baseline", "candidate", "kernel"] {
            need_str(c, key).map_err(ctx)?;
        }
        if need_num(c, "speedup").map_err(ctx)? <= 0.0 {
            return Err(ctx("field \"speedup\" must be positive".into()));
        }
    }
    for (candidate, what) in [
        ("rmv_pooled_in_place", "the pooled in-place rmv path"),
        (
            "exec_overlap_in_place",
            "the latency-hiding executor schedule",
        ),
        ("bmv_serial_micro", "the 3x3 register-blocked microkernel"),
        ("bmv_serial_micro_simd", "the AVX tile kernel"),
        (
            "bmv_serial_micro_simd_banded",
            "the row-band blocked tile sweep",
        ),
        ("exec_proc_transport", "the multi-process socket transport"),
        (
            "exec_respawn_recovery",
            "the per-shard respawn recovery rung",
        ),
        (
            "exec_node2_exchange",
            "the node-aggregated two-level exchange",
        ),
        (
            "exec_micro_simd_rcm",
            "the AVX tile kernel under RCM end to end",
        ),
    ] {
        if !comps
            .iter()
            .any(|c| c.get("candidate").and_then(Json::as_str) == Some(candidate))
        {
            return Err(format!("no comparison covers {what}"));
        }
    }
    // Full-mode acceptance gates (quick artifacts only prove the schema):
    // the two-level exchange must beat the flat one, and the max-rate
    // model must score closer to the measured exchange than Eq. (2).
    if !quick {
        let mr = need_num(&doc, "maxrate_rel_error")?;
        let e2 = need_num(&doc, "eq2_rel_error")?;
        if mr >= e2 {
            return Err(format!(
                "max-rate model rel error ({mr:.4}) must be below Eq. (2)'s ({e2:.4})"
            ));
        }
        let node_speedup = comps
            .iter()
            .find(|c| c.get("candidate").and_then(Json::as_str) == Some("exec_node2_exchange"))
            .and_then(|c| c.get("speedup").and_then(Json::as_f64))
            .ok_or("the node-aggregation comparison lost its speedup")?;
        if node_speedup <= 1.0 {
            return Err(format!(
                "the node-aggregated exchange must beat the flat exchange \
                 (speedup {node_speedup:.4})"
            ));
        }
    }
    Ok(())
}

fn main() {
    // The proc transport re-executes this binary as shard children; the
    // hook must route them before any argument parsing.
    quake_app::transport::proc::shard_host_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_smvp.json");
        match validate(path) {
            Ok(()) => {
                println!("{path}: schema OK");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    let quick = args.iter().any(|a| a == "--quick");
    let with_lmv = args.iter().any(|a| a == "--with-lmv");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_smvp.json".to_string());

    let (scale, configs, thread_counts): (f64, Vec<AppConfig>, Vec<usize>) = if quick {
        (12.0, vec![AppConfig::new("sf10", 10.0, 12.0)], vec![2])
    } else {
        let scale = quake_bench::scale();
        (scale, standard_family(scale), vec![1, 2, 4])
    };

    let mut rec = Recorder {
        quick,
        entries: Vec::new(),
        timings: Vec::new(),
    };
    let mut largest: Option<(usize, String)> = None;
    // The shared-vs-proc transport pair runs on sf5 (the largest full-mode
    // mesh); quick mode only generates sf10.
    let transport_mesh = if quick { "sf10" } else { "sf5" };
    let mut socket_link: Option<LinkParams> = None;
    let mut model_errors: Option<(f64, f64)> = None;
    for config in configs {
        eprintln!("generating {} (scale {scale})...", config.name);
        let period = config.period_s;
        let app = QuakeApp::generate(config).expect("mesh generation failed");
        let case = build_case(&app);
        if largest.as_ref().is_none_or(|(n, _)| case.nodes > *n) {
            largest = Some((case.nodes, case.mesh.clone()));
        }
        run_case(&mut rec, &case, &thread_counts, with_lmv);
        if case.mesh == transport_mesh {
            eprintln!("  transport pair: shared vs proc (2 shards), whole runs...");
            socket_link = Some(transport_pair(&mut rec, &case, period, scale));
            eprintln!("  recovery pair: shard respawn vs ensemble retry (one kill per run)...");
            recovery_pair(&mut rec, &case, period, scale);
            eprintln!(
                "  node pair: flat vs 2-node aggregated exchange \
                 (16 PEs, 4 shards, 5 ms emulated inter-node link)..."
            );
            model_errors = Some(node_pair(&mut rec, &case, period, scale));
            eprintln!("  simd+rcm pair: scalar vs AVX tile kernel under RCM, whole runs...");
            simd_rcm_pair(&mut rec, &case, period, scale);
        }
    }
    let socket = socket_link.expect("transport-pair mesh missing from the family");
    let (maxrate_err, eq2_err) = model_errors.expect("node-pair mesh missing from the family");
    let largest_mesh = largest.expect("at least one mesh").1;
    let comps = comparisons(&rec, &largest_mesh, &thread_counts);

    let doc = render(
        vec![
            ("schema", Json::str(SCHEMA)),
            ("quick", Json::Bool(quick)),
            ("scale", Json::num(scale)),
            ("largest_mesh", Json::str(&largest_mesh)),
            ("simd", Json::Bool(simd_active())),
            ("socket_t_l", Json::num(socket.t_l)),
            ("socket_t_w", Json::num(socket.t_w)),
            ("maxrate_rel_error", Json::num(maxrate_err)),
            ("eq2_rel_error", Json::num(eq2_err)),
        ],
        &rec.entries,
        &comps,
    );
    parse(&doc).expect("emitted artifact must parse");
    std::fs::write(&out_path, &doc).expect("write artifact");
    eprintln!("wrote {out_path}");

    // Headlines: the acceptance comparisons on the largest seed mesh.
    for c in &comps {
        if c.get("largest_mesh") != Some(&Json::Bool(true)) {
            continue;
        }
        let t = c.get("threads").and_then(Json::as_f64).unwrap_or(0.0);
        let s = c.get("speedup").and_then(Json::as_f64).unwrap_or(0.0);
        match c.get("candidate").and_then(Json::as_str) {
            Some("rmv_pooled_in_place") => {
                println!(
                    "{largest_mesh} t={t}: pooled in-place rmv is {s:.2}x the PR-1 pooled path"
                );
            }
            Some("exec_overlap_in_place") => {
                println!(
                    "{largest_mesh} t={t}: latency-hiding schedule is {s:.2}x the barrier schedule"
                );
            }
            Some("bmv_serial_micro") => {
                println!("{largest_mesh}: 3x3 microkernel is {s:.2}x the mul_vec loop");
            }
            Some("bmv_serial_micro_simd") => {
                println!(
                    "{largest_mesh}: AVX tile kernel is {s:.2}x the scalar 3x3 microkernel \
                     (simd dispatch {})",
                    if simd_active() { "active" } else { "inactive" }
                );
            }
            Some("bmv_serial_micro_simd_banded") => {
                println!(
                    "{largest_mesh}: memsim-sized row-band blocking is {s:.2}x the flat tile sweep"
                );
            }
            Some("exec_proc_transport") => {
                println!(
                    "{largest_mesh} t={t}: shared transport is {:.2}x the proc ensemble \
                     (socket link: T_l = {:.3e} s, T_w = {:.3e} s/word)",
                    1.0 / s,
                    socket.t_l,
                    socket.t_w
                );
            }
            Some("exec_respawn_recovery") => {
                println!(
                    "{largest_mesh}: per-shard respawn brings a killed run home {s:.2}x \
                     faster than the whole-ensemble retry"
                );
            }
            Some("exec_node2_exchange") => {
                println!(
                    "{largest_mesh} t={t}: 2-node aggregated proc exchange wall is {s:.2}x the \
                     flat exchange under a 5 ms emulated inter-node link (max-rate model rel err \
                     {:.1}% vs Eq. (2) rel err {:.1}%)",
                    100.0 * maxrate_err,
                    100.0 * eq2_err
                );
            }
            Some("exec_micro_simd_rcm") => {
                println!(
                    "{largest_mesh} t={t}: AVX tile kernel under RCM is {s:.2}x the scalar \
                     microkernel end to end (simd dispatch {})",
                    if simd_active() { "active" } else { "inactive" }
                );
            }
            _ => {}
        }
    }
}
