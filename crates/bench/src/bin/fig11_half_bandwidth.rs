//! Figure 11 — half-bandwidth design points for the sf2 SMVP family.
//!
//! A pure evaluation of Equations (1)+(2) over the paper's sf2 rows: for
//! every (subdomains × processor × efficiency × block regime) combination,
//! the `(T_l, T_w)` pair at which block latency and burst transfer each
//! consume half the communication phase.

use quake_app::report::{fmt_mb_per_s, fmt_seconds, Table};
use quake_core::machine::{BlockRegime, Processor};
use quake_core::paperdata;
use quake_core::requirements::{half_bandwidth_series, EFFICIENCIES};

fn main() {
    let sf2 = paperdata::figure7_app("sf2");
    let processors = [
        Processor::hypothetical_100mflops(),
        Processor::hypothetical_200mflops(),
    ];
    for (regime, label) in [
        (BlockRegime::Maximal, "maximal blocks (message passing)"),
        (BlockRegime::CACHE_LINE, "four-word blocks (shared memory)"),
    ] {
        println!("== Figure 11 ({label}), paper sf2 data ==\n");
        let rows = half_bandwidth_series(&sf2, &processors, &EFFICIENCIES, &[regime]);
        let mut t = Table::new(vec![
            "instance",
            "PE",
            "E",
            "half burst BW (MB/s)",
            "half latency",
        ]);
        for r in &rows {
            t.row(vec![
                r.label.clone(),
                r.processor.name.to_string(),
                format!("{:.1}", r.efficiency),
                fmt_mb_per_s(r.point.burst_bandwidth_bytes()),
                fmt_seconds(r.point.t_l),
            ]);
        }
        println!("{}", t.render());
        // The binding (most demanding) case.
        let hardest = rows
            .iter()
            .min_by(|a, b| a.point.t_l.partial_cmp(&b.point.t_l).expect("finite"))
            .expect("non-empty");
        println!(
            "  most demanding case: {} on {} at E={:.1} -> burst {} MB/s, latency {}\n",
            hardest.label,
            hardest.processor.name,
            hardest.efficiency,
            fmt_mb_per_s(hardest.point.burst_bandwidth_bytes()),
            fmt_seconds(hardest.point.t_l),
        );
    }
    println!(
        "Paper conclusions (§4.4/§5): the hardest maximal-block case needs ≈ 600 MB/s\n\
         burst with a block latency of a few µs; with four-word blocks the latency\n\
         requirement collapses to tens of ns. Over-engineering either axis of a\n\
         half-bandwidth design buys at most 2x — latency must simply be reduced."
    );
}
