//! §3.1 — sustained T_f: why irregular SMVPs run far below peak.
//!
//! The paper measures T_f = 30 ns (T3D) and 14 ns (T3E, ≈ 70 MFLOPS = 12%
//! of 600 MFLOPS peak). Without the hardware, the cache-hierarchy simulator
//! replays the SMVP's reference stream on an Alpha-21164-like node to show
//! the mechanism: irregular x-gathers miss, sustained rate collapses, and
//! bandwidth-reducing (RCM) orderings recover part of it.

#![allow(clippy::needless_range_loop)] // indexed loops are clearer here

use quake_app::report::Table;
use quake_memsim::hierarchy::Hierarchy;
use quake_memsim::trace::estimate_tf;
use quake_sparse::coo::Coo;
use quake_sparse::csr::Csr;
use quake_sparse::reorder::{identity_perm, permuted_bandwidth, rcm};

fn mesh_matrix(ordering: &str) -> (Csr, usize) {
    let app = quake_bench::generate_app("sf5", 5.0);
    let pattern = app.mesh.pattern();
    let n = pattern.node_count();
    let perm = match ordering {
        "natural" => identity_perm(n),
        "rcm" => rcm(&pattern),
        other => panic!("unknown ordering {other}"),
    };
    let bw = permuted_bandwidth(&pattern, &perm);
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(perm[i], perm[i], 4.0).expect("in range");
    }
    for (a, b) in pattern.edges() {
        coo.push(perm[a], perm[b], -1.0).expect("in range");
        coo.push(perm[b], perm[a], -1.0).expect("in range");
    }
    (coo.to_csr(), bw)
}

fn main() {
    println!("== §3.1: sustained T_f for the local SMVP ==\n");
    println!("paper measurements:");
    println!("  Cray T3D (150 MHz 21064): T_f = 30 ns (~33 sustained MFLOPS)");
    println!("  Cray T3E (300 MHz 21164): T_f = 14 ns (~70 sustained MFLOPS, 12% of 600 peak)\n");

    let cycle = 1.0 / 300e6; // 1 flop/cycle raw arithmetic, 300 MHz.
    let peak_mflops = 300.0;
    let mut t = Table::new(vec![
        "ordering",
        "pattern bandwidth",
        "T_f (ns)",
        "sustained MFLOPS",
        "% of peak",
        "mem fraction",
    ]);
    for ordering in ["natural", "rcm"] {
        let (matrix, bw) = mesh_matrix(ordering);
        let mut h = Hierarchy::alpha_21164_like();
        let est = estimate_tf(&matrix, &mut h, cycle, 1);
        t.row(vec![
            ordering.to_string(),
            bw.to_string(),
            format!("{:.1}", est.t_f * 1e9),
            format!("{:.0}", est.mflops),
            format!("{:.0}%", 100.0 * est.mflops / peak_mflops),
            format!("{:.2}", est.memory_fraction),
        ]);
    }
    println!(
        "cache-simulated sustained rate, synthetic sf5 mesh (scale {}),\n\
         Alpha-21164-like node (8 KiB L1 / 96 KiB L2 / 60-cycle memory):\n",
        quake_bench::scale()
    );
    println!("{}", t.render());
    println!(
        "The simulated node sustains a modest fraction of its 300 MFLOPS peak on the\n\
         unstructured SMVP — the same phenomenon (and rough magnitude) as the paper's\n\
         12%-of-peak T3E measurement. T_f folds all of this in, which is why the\n\
         paper treats it as a measured input."
    );
}
