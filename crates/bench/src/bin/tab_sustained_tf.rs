//! §3.1 — sustained T_f: why irregular SMVPs run far below peak.
//!
//! The paper measures T_f = 30 ns (T3D) and 14 ns (T3E, ≈ 70 MFLOPS = 12%
//! of 600 MFLOPS peak). Without the hardware, the cache-hierarchy simulator
//! replays the SMVP's reference stream on an Alpha-21164-like node to show
//! the mechanism: irregular x-gathers miss, sustained rate collapses, and
//! bandwidth-reducing (RCM) orderings recover part of it.

use quake_app::report::Table;
use quake_bench::figures::sustained_tf_rows;

fn main() {
    println!("== §3.1: sustained T_f for the local SMVP ==\n");
    println!("paper measurements:");
    println!("  Cray T3D (150 MHz 21064): T_f = 30 ns (~33 sustained MFLOPS)");
    println!("  Cray T3E (300 MHz 21164): T_f = 14 ns (~70 sustained MFLOPS, 12% of 600 peak)\n");

    let app = quake_bench::generate_app("sf5", 5.0);
    let cycle = 1.0 / 300e6; // 1 flop/cycle raw arithmetic, 300 MHz.
    let peak_mflops = 300.0;
    let rows = sustained_tf_rows(&app.mesh, cycle, &["natural", "rcm"]);
    let mut t = Table::new(vec![
        "ordering",
        "pattern bandwidth",
        "T_f (ns)",
        "sustained MFLOPS",
        "% of peak",
        "mem fraction",
    ]);
    for r in &rows {
        t.row(vec![
            r.ordering.clone(),
            r.pattern_bandwidth.to_string(),
            format!("{:.1}", r.estimate.t_f * 1e9),
            format!("{:.0}", r.estimate.mflops),
            format!("{:.0}%", 100.0 * r.estimate.mflops / peak_mflops),
            format!("{:.2}", r.estimate.memory_fraction),
        ]);
    }
    println!(
        "cache-simulated sustained rate, synthetic sf5 mesh (scale {}),\n\
         Alpha-21164-like node (8 KiB L1 / 96 KiB L2 / 60-cycle memory):\n",
        quake_bench::scale()
    );
    println!("{}", t.render());
    println!(
        "The simulated node sustains a modest fraction of its 300 MFLOPS peak on the\n\
         unstructured SMVP — the same phenomenon (and rough magnitude) as the paper's\n\
         12%-of-peak T3E measurement. T_f folds all of this in, which is why the\n\
         paper treats it as a measured input."
    );
}
