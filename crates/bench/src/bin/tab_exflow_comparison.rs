//! §1 table — EXFLOW vs Quake communication aggregates.
//!
//! The paper argues the Quake family is representative of unstructured
//! finite-element codes by comparing sf2/128 with EXFLOW (Cypher et al.),
//! a 3-D unstructured CFD code: similar data per PE, communication volume
//! per MFLOP, messages per MFLOP, and message sizes.

use quake_app::report::Table;
use quake_core::characterize::AppCommSummary;
use quake_core::paperdata;

fn row(t: &mut Table, name: &str, s: &AppCommSummary) {
    t.row(vec![
        name.to_string(),
        format!("{:.1}", s.data_mb_per_pe),
        format!("{:.0}", s.comm_kb_per_mflop),
        format!("{:.0}", s.messages_per_mflop),
        format!("{:.1}", s.avg_message_kb),
    ]);
}

fn main() {
    let mut t = Table::new(vec![
        "application",
        "data (MB/PE)",
        "comm (KB/MFLOP)",
        "msgs/MFLOP",
        "avg msg (KB)",
    ]);
    row(&mut t, "EXFLOW/512 (paper)", &paperdata::EXFLOW);
    row(&mut t, "Quake sf2/128 (paper)", &paperdata::QUAKE_SF2_128);
    // Derive the same aggregates from the paper's own Figure 7 row to show
    // the formulas: C_max·8B / (F/1e6), B_max / (F/1e6), M_avg·8B.
    let inst = paperdata::figure7_instance("sf2", 128).expect("paper row");
    let derived =
        quake_bench::figures::comm_summary_from_instance(&inst, paperdata::figure2()[2].nodes);
    row(&mut t, "Quake sf2/128 (derived from Fig. 7)", &derived);
    // And from the synthetic pipeline.
    let app = quake_bench::generate_app("sf2", 2.0);
    let parts = *quake_bench::subdomain_counts().last().expect("non-empty");
    let analyzed = quake_app::characterize::figure7_table(
        "sf2",
        &app.mesh,
        &quake_partition::geometric::RecursiveBisection::inertial(),
        &[parts],
    );
    let synth = analyzed[0].comm_summary(&app.mesh);
    row(
        &mut t,
        &format!("synthetic sf2/{parts} (scale {})", quake_bench::scale()),
        &synth,
    );
    println!("== §1 comparison: EXFLOW vs Quake ==\n");
    println!("{}", t.render());
    println!(
        "Paper's point: two unstructured finite-element codes from different domains\n\
         have nearly identical communication signatures — many messages of small\n\
         average size — distinguishing them from regular applications of similar\n\
         total volume."
    );
}
