//! Model validation (this reproduction's addition): Equations (1)/(2) and
//! the β bound versus the discrete-event machine simulator, on the actual
//! workloads extracted from partitioned synthetic meshes.

use quake_app::report::{fmt_seconds, Table};
use quake_core::machine::{Network, Processor};
use quake_netsim::simulate::SimOptions;
use quake_netsim::validate::validate;

fn main() {
    let app = quake_bench::generate_app("sf5", 5.0);
    let analyzed = quake_bench::characterize_app(&app);
    let pe = Processor::hypothetical_200mflops();
    let networks = [
        Network::cray_t3e(),
        Network {
            name: "low-latency",
            t_l: 2e-6,
            t_w: 13e-9,
        },
        Network {
            name: "high-latency",
            t_l: 100e-6,
            t_w: 13e-9,
        },
    ];
    println!(
        "== Model vs discrete-event simulation (synthetic sf5-analog, scale {}) ==\n",
        quake_bench::scale()
    );
    for net in &networks {
        println!(
            "-- network '{}': T_l = {}, T_w = {} ({:.0} MB/s burst) --",
            net.name,
            fmt_seconds(net.t_l),
            fmt_seconds(net.t_w),
            net.burst_bandwidth_bytes() / 1e6
        );
        let mut t = Table::new(vec![
            "p",
            "T_comm sim",
            "T_comm model",
            "T_comm exact",
            "model/sim",
            "beta",
            "E sim",
            "E model",
        ]);
        for a in &analyzed {
            let row = validate(&a.workload(), &pe, net, SimOptions::default());
            t.row(vec![
                row.parts.to_string(),
                fmt_seconds(row.sim_t_comm),
                fmt_seconds(row.model_t_comm),
                fmt_seconds(row.exact_t_comm),
                format!("{:.2}", row.model_accuracy()),
                format!("{:.2}", row.beta),
                format!("{:.3}", row.sim_efficiency),
                format!("{:.3}", row.model_efficiency),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Reading: 'model' is B_max*T_l + C_max*T_w (Eq. 2); 'exact' is the per-PE\n\
         lower bound max_i(B_i*T_l + C_i*T_w); 'sim' schedules every block through\n\
         each PE's serial NI. The model brackets the simulation to within the beta\n\
         bound's slack, supporting the paper's use of Eq. (2) for requirements."
    );
}
