//! Figure 2 — sizes of the Quake meshes.
//!
//! Prints the paper's published San Fernando mesh sizes next to the
//! synthetic family generated at the configured scale, with the node-growth
//! factor per period halving (the paper's ≈ 8×).

use quake_app::report::Table;
use quake_core::paperdata;

fn main() {
    println!("== Figure 2 (paper): sizes of the San Fernando meshes ==\n");
    let mut t = Table::new(vec![
        "mesh",
        "period (s)",
        "nodes",
        "elements",
        "edges",
        "growth",
    ]);
    let rows = paperdata::figure2();
    let mut prev: Option<u64> = None;
    for r in &rows {
        let growth = prev
            .map(|p| format!("{:.1}x", r.nodes as f64 / p as f64))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            r.app.to_string(),
            format!("{}", r.period_s),
            r.nodes.to_string(),
            r.elements.to_string(),
            r.edges.to_string(),
            growth,
        ]);
        prev = Some(r.nodes);
    }
    println!("{}", t.render());

    println!(
        "== Figure 2 (synthetic): basin meshes at scale {} ==\n",
        quake_bench::scale()
    );
    let mut t = Table::new(vec![
        "mesh",
        "period (s)",
        "nodes",
        "elements",
        "edges",
        "growth",
    ]);
    let apps = quake_bench::generate_family();
    let rows = quake_bench::figures::mesh_size_rows(&apps);
    let growth = quake_bench::figures::growth_factors(&rows);
    for (i, r) in rows.iter().enumerate() {
        t.row(vec![
            r.name.clone(),
            format!("{}", r.period_s),
            r.nodes.to_string(),
            r.elements.to_string(),
            r.edges.to_string(),
            if i == 0 {
                "-".into()
            } else {
                format!("{:.1}x", growth[i - 1])
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper invariant: halving the resolved period multiplies node count by ≈ 8\n\
         (a factor of two per spatial dimension). The synthetic family preserves it;\n\
         absolute sizes scale with QUAKE_SCALE (domain shrunk linearly)."
    );
}
