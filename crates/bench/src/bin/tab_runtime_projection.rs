//! Runtime projection — what a full Quake run (6000 time steps) costs on
//! each machine, and how it strong-scales with PE count. Combines the
//! paper's measured machine constants with the event-driven simulator over
//! the synthetic family's workloads.

use quake_app::report::{fmt_seconds, Table};
use quake_app::scaling::{scaling_study, QUAKE_TIME_STEPS};
use quake_core::machine::{BlockRegime, Network, Processor};

fn main() {
    let app = quake_bench::generate_app("sf10", 10.0);
    let analyzed = quake_bench::characterize_app(&app);
    let machines = [
        (
            Processor::cray_t3d(),
            Network {
                name: "T3D-era",
                t_l: 60e-6,
                t_w: 200e-9,
            },
        ),
        (Processor::cray_t3e(), Network::cray_t3e()),
        (
            Processor::hypothetical_200mflops(),
            Network {
                name: "future (2 us / 600 MB/s)",
                t_l: 2e-6,
                t_w: 13.3e-9,
            },
        ),
    ];
    println!(
        "== Projected full-run wall clock: {} SMVP time steps, synthetic sf10-analog (scale {}) ==\n",
        QUAKE_TIME_STEPS,
        quake_bench::scale()
    );
    for (pe, net) in &machines {
        println!(
            "-- {} PE, '{}' network (T_l = {}, T_w = {}) --",
            pe.name,
            net.name,
            fmt_seconds(net.t_l),
            fmt_seconds(net.t_w)
        );
        let rows = scaling_study(&analyzed, pe, net, BlockRegime::Maximal);
        let mut t = Table::new(vec![
            "p",
            "T_comp/SMVP",
            "T_comm/SMVP (sim)",
            "T_comm/SMVP (model)",
            "E",
            "full run",
            "speedup",
        ]);
        let base = rows.first().expect("rows");
        for r in &rows {
            t.row(vec![
                r.parts.to_string(),
                fmt_seconds(r.t_comp),
                fmt_seconds(r.t_comm_sim),
                fmt_seconds(r.t_comm_model),
                format!("{:.3}", r.efficiency),
                fmt_seconds(r.run_seconds),
                format!("{:.2}x", r.speedup_over(base)),
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "Reading: on the T3D/T3E-class networks the communication phase throttles\n\
         strong scaling well before 32 PEs on a mesh this small; the 'future'\n\
         network (the paper's §5 recommendation: ~2 us latency, 600 MB/s burst)\n\
         keeps efficiency high. Larger meshes (QUAKE_SCALE closer to 1) shift the\n\
         crossover right, exactly as F/C_max ~ n^(1/3) predicts."
    );
}
