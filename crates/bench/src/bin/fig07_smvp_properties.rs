//! Figure 7 — SMVP properties (F, C_max, B_max, M_avg, F/C_max).
//!
//! Prints the paper's published table and the same quantities measured on
//! the synthetic family partitioned by recursive inertial bisection.

use quake_app::report::Table;
use quake_core::paperdata;

fn main() {
    println!("== Figure 7 (paper): Quake SMVP properties ==\n");
    let mut t = Table::new(vec!["instance", "F", "C_max", "B_max", "M_avg", "F/C_max"]);
    for p in paperdata::SUBDOMAIN_COUNTS {
        for app in paperdata::APPS {
            let i = paperdata::figure7_instance(app, p).expect("row exists");
            t.row(vec![
                i.label(),
                i.f.to_string(),
                i.c_max.to_string(),
                i.b_max.to_string(),
                format!("{:.0}", i.m_avg),
                format!("{:.0}", i.comp_comm_ratio()),
            ]);
        }
    }
    println!("{}", t.render());

    println!(
        "== Figure 7 (synthetic): scale {}, inertial bisection ==\n",
        quake_bench::scale()
    );
    let mut t = Table::new(vec![
        "instance", "F", "C_max", "B_max", "M_avg", "F/C_max", "beta",
    ]);
    for app in quake_bench::generate_family() {
        for a in quake_bench::characterize_app(&app) {
            let i = &a.instance;
            t.row(vec![
                i.label(),
                i.f.to_string(),
                i.c_max.to_string(),
                i.b_max.to_string(),
                format!("{:.0}", i.m_avg),
                format!("{:.0}", i.comp_comm_ratio()),
                format!("{:.2}", a.beta),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Shape checks (paper §4.1): F/C_max falls as p grows and rises ≈ n^(1/3)\n\
         with problem size; C values are even and divisible by 3; M_avg is small\n\
         even for the largest instances, so block latency cannot be amortized."
    );
}
