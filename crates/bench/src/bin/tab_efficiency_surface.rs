//! Efficiency surface — Figure 10's content as a simulated landscape: the
//! achieved efficiency of the real extracted workload at every (block
//! latency × burst bandwidth) grid point, by discrete-event simulation.
//! One digit per cell: '9' means E ∈ [0.9, 1.0), '8' means [0.8, 0.9), ….

use quake_core::machine::Processor;
use quake_netsim::simulate::SimOptions;
use quake_netsim::sweep::{efficiency_surface, log_space, render_surface};

fn main() {
    let app = quake_bench::generate_app("sf5", 5.0);
    let parts = *quake_bench::subdomain_counts().last().expect("non-empty");
    let analyzed = quake_app::characterize::figure7_table(
        "sf5",
        &app.mesh,
        &quake_partition::geometric::RecursiveBisection::inertial(),
        &[parts],
    );
    let workload = analyzed[0].workload();
    let pe = Processor::hypothetical_200mflops();
    let latencies = log_space(100e-9, 10e-3, 11);
    let bursts = log_space(1e6, 10e9, 41);
    println!(
        "== Simulated efficiency surface: synthetic sf5/{parts} (scale {}), {} ==",
        quake_bench::scale(),
        pe.name
    );
    println!(
        "rows: block latency T_l (100 ns -> 10 ms); cols: burst bandwidth (1 MB/s -> 10 GB/s)\n"
    );
    for (regime, block_words) in [("maximal blocks", None), ("4-word blocks", Some(4))] {
        let cells = efficiency_surface(
            &workload,
            &pe,
            &latencies,
            &bursts,
            SimOptions {
                block_words,
                ..SimOptions::default()
            },
        );
        println!("-- {regime} --");
        print!("{}", render_surface(&cells, &latencies, &bursts));
        println!();
    }
    println!(
        "Reading: under maximal aggregation a wide plateau of '9's exists once\n\
         latency is a few us; with 4-word blocks the efficient region collapses to\n\
         the bottom rows — burst bandwidth cannot buy back latency, the paper's\n\
         central conclusion, here re-derived by simulation instead of algebra."
    );
}
