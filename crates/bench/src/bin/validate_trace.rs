//! Validates the telemetry artifacts a `quake smvp-run` wrote: the Chrome
//! `trace_event` JSON (`--trace-json`) and/or the Prometheus text
//! exposition (`--metrics`). CI runs this against a live sf10 run.
//!
//! Usage:
//!   validate_trace --trace-json FILE [--require-spans a,b,c]
//!                  [--require-instants] [--require-processes N]
//!                  [--require-flows] [--metrics FILE]
//!
//! `--require-processes N` asserts the trace spans at least N distinct
//! pids (a merged multi-shard trace shows one per shard plus the
//! supervisor); `--require-flows` asserts at least one paired cross-shard
//! flow arrow made it into the trace. Exits 0 when every named artifact
//! is structurally valid (and contains the required span names / at
//! least one instant / the expected metric families), 1 otherwise.

use quake_bench::trace::{validate_chrome_trace, validate_prometheus};
use std::process::ExitCode;

/// Metric families the exporter always emits, checked whenever a metrics
/// file is validated.
const EXPECTED_FAMILIES: [(&str, &str); 6] = [
    ("quake_block_latency_seconds", "histogram"),
    ("quake_block_size_words", "histogram"),
    ("quake_pe_compute_seconds", "histogram"),
    ("quake_retry_delay_seconds", "histogram"),
    ("quake_steps_total", "counter"),
    ("quake_phase_seconds_total", "counter"),
];

fn fail(what: &str, why: &str) -> ExitCode {
    eprintln!("validate_trace: {what}: {why}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut trace_json = String::new();
    let mut metrics = String::new();
    let mut require_spans: Vec<String> = Vec::new();
    let mut require_instants = false;
    let mut require_processes = 0usize;
    let mut require_flows = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--trace-json" => trace_json = value("--trace-json"),
            "--metrics" => metrics = value("--metrics"),
            "--require-spans" => {
                require_spans = value("--require-spans")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--require-instants" => require_instants = true,
            "--require-processes" => {
                require_processes = value("--require-processes")
                    .parse()
                    .expect("--require-processes needs a count");
            }
            "--require-flows" => require_flows = true,
            other => {
                eprintln!("validate_trace: unknown argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if trace_json.is_empty() && metrics.is_empty() {
        eprintln!("validate_trace: nothing to do (pass --trace-json and/or --metrics)");
        return ExitCode::FAILURE;
    }

    if !trace_json.is_empty() {
        let text = match std::fs::read_to_string(&trace_json) {
            Ok(t) => t,
            Err(e) => return fail(&trace_json, &e.to_string()),
        };
        let summary = match validate_chrome_trace(&text) {
            Ok(s) => s,
            Err(e) => return fail(&trace_json, &e),
        };
        for span in &require_spans {
            if !summary.has_span(span) {
                return fail(&trace_json, &format!("missing required span '{span}'"));
            }
        }
        if require_instants && summary.instants == 0 {
            return fail(&trace_json, "no instant events (expected fault instants)");
        }
        if summary.pids.len() < require_processes {
            return fail(
                &trace_json,
                &format!(
                    "only {} distinct pids, expected at least {require_processes} \
                     (one per shard in a merged trace)",
                    summary.pids.len()
                ),
            );
        }
        if require_flows && summary.flow_starts == 0 {
            return fail(&trace_json, "no flow events (expected ghost-block arrows)");
        }
        println!(
            "{trace_json}: OK — {} metadata, {} spans ({}), {} instants ({}), \
             {} pids, {} flows",
            summary.metadata,
            summary.spans,
            summary
                .span_names
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(","),
            summary.instants,
            summary
                .instant_names
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(","),
            summary.pids.len(),
            summary.flow_starts,
        );
    }

    if !metrics.is_empty() {
        let text = match std::fs::read_to_string(&metrics) {
            Ok(t) => t,
            Err(e) => return fail(&metrics, &e.to_string()),
        };
        let summary = match validate_prometheus(&text) {
            Ok(s) => s,
            Err(e) => return fail(&metrics, &e),
        };
        for (family, kind) in EXPECTED_FAMILIES {
            if !summary.has_family(family, kind) {
                return fail(&metrics, &format!("missing {kind} family '{family}'"));
            }
        }
        println!(
            "{metrics}: OK — {} families, {} samples",
            summary.families.len(),
            summary.samples
        );
    }
    ExitCode::SUCCESS
}
