//! Partitioner ablation — the design-choice study behind the paper's claim
//! that a geometric partitioner's quality determines the communication
//! requirements. Compares recursive inertial/coordinate bisection (with and
//! without greedy refinement), Morton-curve blocks, index blocks, and
//! random assignment on the same mesh.

use quake_app::report::Table;
use quake_bench::figures::{ablation_strategies, partitioner_ablation};
use quake_core::machine::Processor;

fn main() {
    let app = quake_bench::generate_app("sf5", 5.0);
    let parts = 16;
    println!(
        "== Partitioner ablation: synthetic sf5-analog (scale {}), p = {parts} ==\n",
        quake_bench::scale()
    );
    let rows = partitioner_ablation(
        &app.mesh,
        parts,
        &ablation_strategies(),
        &Processor::hypothetical_200mflops(),
    );
    let mut t = Table::new(vec![
        "partitioner",
        "shared nodes",
        "repl.",
        "C_max",
        "B_max",
        "F/C_max",
        "beta",
        "req. MB/s @E=0.9",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            r.shared_nodes.to_string(),
            format!("{:.3}", r.replication),
            r.instance.c_max.to_string(),
            r.instance.b_max.to_string(),
            format!("{:.0}", r.instance.comp_comm_ratio()),
            format!("{:.2}", r.beta),
            format!("{:.0}", r.required_bandwidth / 1e6),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: the geometric partitioners (the paper's Archimedes family) hold\n\
         C_max and B_max far below the baselines, directly reducing the network the\n\
         application demands through Equation (1); refinement trims a further slice\n\
         off the bisection cuts. A random partition inflates the requirement by an\n\
         order of magnitude — partition quality is an architecture parameter."
    );
}
