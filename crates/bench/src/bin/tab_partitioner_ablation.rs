//! Partitioner ablation — the design-choice study behind the paper's claim
//! that a geometric partitioner's quality determines the communication
//! requirements. Compares recursive inertial/coordinate bisection (with and
//! without greedy refinement), Morton-curve blocks, index blocks, and
//! random assignment on the same mesh.

use quake_app::report::Table;
use quake_core::machine::Processor;
use quake_core::model::eq1::required_sustained_bandwidth;
use quake_partition::comm::CommAnalysis;
use quake_partition::geometric::{
    LinearPartition, Partitioner, RandomPartition, RecursiveBisection,
};
use quake_partition::refine::{refine, RefineOptions};
use quake_partition::sfc::MortonPartition;
use quake_partition::spectral::SpectralBisection;

fn main() {
    let app = quake_bench::generate_app("sf5", 5.0);
    let mesh = &app.mesh;
    let parts = 16;
    println!(
        "== Partitioner ablation: synthetic sf5-analog (scale {}), p = {parts} ==\n",
        quake_bench::scale()
    );
    let strategies: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("rib", Box::new(RecursiveBisection::inertial())),
        ("rcb", Box::new(RecursiveBisection::coordinate())),
        ("spectral", Box::new(SpectralBisection::default())),
        ("morton", Box::new(MortonPartition)),
        ("linear", Box::new(LinearPartition)),
        ("random", Box::new(RandomPartition { seed: 1 })),
    ];
    let pe = Processor::hypothetical_200mflops();
    let mut t = Table::new(vec![
        "partitioner",
        "shared nodes",
        "repl.",
        "C_max",
        "B_max",
        "F/C_max",
        "beta",
        "req. MB/s @E=0.9",
    ]);
    for (name, strat) in &strategies {
        for refined in [false, true] {
            let base = strat.partition(mesh, parts).expect("partition");
            let (partition, label) = if refined {
                let (p, _) = refine(mesh, &base, RefineOptions::default()).expect("refine");
                (p, format!("{name}+refine"))
            } else {
                (base, (*name).to_string())
            };
            let analysis = CommAnalysis::new(mesh, &partition);
            let inst = quake_core::characterize::SmvpInstance::new(
                "sf5",
                parts,
                analysis.f_max(),
                analysis.c_max(),
                analysis.b_max(),
                analysis.m_avg(),
            );
            let bw = required_sustained_bandwidth(&inst, 0.9, &pe);
            t.row(vec![
                label,
                partition.shared_node_count().to_string(),
                format!("{:.3}", partition.replication_factor()),
                analysis.c_max().to_string(),
                analysis.b_max().to_string(),
                format!("{:.0}", inst.comp_comm_ratio()),
                format!("{:.2}", analysis.beta()),
                format!("{:.0}", bw / 1e6),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Reading: the geometric partitioners (the paper's Archimedes family) hold\n\
         C_max and B_max far below the baselines, directly reducing the network the\n\
         application demands through Equation (1); refinement trims a further slice\n\
         off the bisection cuts. A random partition inflates the requirement by an\n\
         order of magnitude — partition quality is an architecture parameter."
    );
}
