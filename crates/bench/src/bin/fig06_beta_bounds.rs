//! Figure 6 — the β error bounds on the communication model.
//!
//! Prints the paper's published β table and the β values computed for the
//! synthetic family. β ∈ [1, 2] always; values near 1 mean the word-maximal
//! PE is (nearly) the block-maximal PE and Equation (2) is tight.

use quake_app::report::Table;
use quake_core::paperdata;

fn main() {
    println!("== Figure 6 (paper): relative error bounds β on T_c ==\n");
    let mut t = Table::new(vec!["subdomains", "sf10", "sf5", "sf2", "sf1"]);
    for (row, &p) in paperdata::FIGURE6_BETA
        .iter()
        .zip(&paperdata::SUBDOMAIN_COUNTS)
    {
        t.row(
            std::iter::once(p.to_string())
                .chain(row.iter().map(|b| format!("{b:.2}")))
                .collect(),
        );
    }
    println!("{}", t.render());

    println!(
        "== Figure 6 (synthetic): scale {}, inertial bisection ==\n",
        quake_bench::scale()
    );
    let family = quake_bench::generate_family();
    let parts = quake_bench::subdomain_counts();
    let tables: Vec<_> = family.iter().map(quake_bench::characterize_app).collect();
    let betas = quake_bench::figures::beta_matrix(&tables);
    let mut t = Table::new(
        std::iter::once("subdomains".to_string())
            .chain(family.iter().map(|a| a.config.name.clone()))
            .collect(),
    );
    for (&p, row) in parts.iter().zip(&betas) {
        t.row(
            std::iter::once(p.to_string())
                .chain(row.iter().map(|b| format!("{b:.2}")))
                .collect(),
        );
    }
    println!("{}", t.render());
    println!(
        "Paper conclusion: β stays close to 1 for every Quake instance, so the\n\
         simplifying assumption behind Equation (2) — that the word-maximal PE is\n\
         also block-maximal — costs little."
    );
}
