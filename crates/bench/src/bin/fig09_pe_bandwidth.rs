//! Figure 9 — required sustained per-PE bandwidth for sf2.
//!
//! This figure is a pure evaluation of Equation (1) over the Figure 7
//! table, so it is reproduced twice: exactly from the paper's published
//! data, and from the synthetic sf2-analog.

use quake_app::report::{fmt_mb_per_s, Table};
use quake_core::characterize::SmvpInstance;
use quake_core::machine::Processor;
use quake_core::paperdata;
use quake_core::requirements::{sustained_bandwidth_series, EFFICIENCIES};

fn print_block(title: &str, instances: &[SmvpInstance]) {
    println!("{title}\n");
    for pe in [
        Processor::hypothetical_100mflops(),
        Processor::hypothetical_200mflops(),
    ] {
        println!("-- {} ({} sustained MFLOPS) --", pe.name, pe.mflops());
        let mut t = Table::new(vec![
            "subdomains",
            "F/C_max",
            "E=0.5 (MB/s)",
            "E=0.8 (MB/s)",
            "E=0.9 (MB/s)",
        ]);
        let series = sustained_bandwidth_series(instances, &[pe], &EFFICIENCIES);
        for (inst, chunk) in instances.iter().zip(series.chunks(EFFICIENCIES.len())) {
            t.row(vec![
                inst.subdomains.to_string(),
                format!("{:.0}", inst.comp_comm_ratio()),
                fmt_mb_per_s(chunk[0].bandwidth_bytes),
                fmt_mb_per_s(chunk[1].bandwidth_bytes),
                fmt_mb_per_s(chunk[2].bandwidth_bytes),
            ]);
        }
        println!("{}", t.render());
    }
}

fn main() {
    print_block(
        "== Figure 9 (paper data, exact): sustained PE bandwidth T_c^-1 required for sf2 ==",
        &paperdata::figure7_app("sf2"),
    );
    let app = quake_bench::generate_app("sf2", 2.0);
    let instances = quake_bench::figures::instances_of(&quake_bench::characterize_app(&app));
    print_block(
        &format!(
            "== Figure 9 (synthetic sf2-analog, scale {}) ==",
            quake_bench::scale()
        ),
        &instances,
    );
    println!(
        "Paper conclusions (§4.3): ≈ 120 MB/s per PE sustains all sf2 instances at\n\
         90% efficiency on 100-MFLOP PEs; ≈ 300 MB/s on 200-MFLOP PEs. The\n\
         requirement includes every software overhead — the paper notes sf2 achieved\n\
         only 10 MB/s sustained through the T3D's vendor MPI."
    );
}
