//! Memsim miss-rate predictions for the BCSR layout transforms
//! (`EXPERIMENTS.md` table source).
//!
//! Replays the SMVP demand-access trace of each family mesh through
//! `memsim::predict` under the `modern_core_like` hierarchy and prints one
//! markdown table per mesh: the four layout transforms (`mat3-baseline` →
//! `tiled` → `tiled-prefetch` → `tiled-banded-prefetch`) with their L1 miss
//! rate, memory fraction, simulated demand time and streamed matrix bytes.
//! The row-band plan uses the same window the executor and `bench_smvp`
//! use — half the modeled L2 — so the prediction describes exactly the
//! sweep the `micro-simd` kernel runs.
//!
//! Usage:
//!
//! ```text
//! predict_miss [--quick]   # full mode honors QUAKE_SCALE, quick uses sf10
//! ```

use quake_app::family::{standard_family, AppConfig, QuakeApp};
use quake_fem::assembly::{assemble, UniformMaterial};
use quake_memsim::hierarchy::Hierarchy;
use quake_memsim::predict_transforms;
use quake_mesh::ground::Material;
use quake_sparse::tiles::{BandPlan, Bcsr3Tiles};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, configs) = if quick {
        (12.0, vec![AppConfig::new("sf10", 10.0, 12.0)])
    } else {
        let scale = quake_bench::scale();
        (scale, standard_family(scale))
    };
    let template = Hierarchy::modern_core_like();
    let window = (template.l2().capacity_bytes() / 2) as usize;
    println!(
        "Predicted SMVP demand-access behavior per layout transform \
         (memsim `modern_core_like`, {} KiB row-band window, scale {scale}):",
        window / 1024
    );
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    for config in configs {
        eprintln!("generating {} (scale {scale})...", config.name);
        let app = QuakeApp::generate(config).expect("mesh generation failed");
        let sys = assemble(&app.mesh, &UniformMaterial(mat)).expect("assembly");
        let tiles = Bcsr3Tiles::from_bcsr(&sys.stiffness);
        let plan = BandPlan::for_tiles(&tiles, window);
        let rows = predict_transforms(&tiles, &plan, &template);
        let base = rows.first().expect("four transforms").l1_miss_rate;
        println!(
            "\n{} ({} block rows, {} blocks, {} row bands):\n",
            app.config.name,
            tiles.block_rows(),
            sys.stiffness.blocks().len(),
            plan.bands().len()
        );
        println!(
            "| transform | L1 miss % | Δ vs baseline | memory % | demand ms | matrix MiB/product |"
        );
        println!("|---|---|---|---|---|---|");
        for r in &rows {
            println!(
                "| {} | {:.2} | {:+.2} | {:.2} | {:.2} | {:.1} |",
                r.name,
                100.0 * r.l1_miss_rate,
                100.0 * (r.l1_miss_rate - base),
                100.0 * r.memory_fraction,
                r.mem_time * 1e3,
                r.bytes_streamed as f64 / (1024.0 * 1024.0)
            );
        }
    }
}
