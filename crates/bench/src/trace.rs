//! Validators for the telemetry artifacts `quake smvp-run` writes: the
//! Chrome `trace_event` JSON trace (`--trace-json`) and the Prometheus
//! text exposition (`--metrics`).
//!
//! CI runs these (via the `validate_trace` binary) against a live sf10
//! run, so the exporters in `quake_core::telemetry` cannot silently drift
//! away from the two formats' actual grammars. The checks are
//! deliberately structural — event shape, phase vocabulary, label syntax,
//! cumulative-bucket monotonicity — not byte-for-byte golden files, so
//! they stay stable across timing noise.

use crate::json::{parse, Json};
use std::collections::{BTreeMap, BTreeSet};

/// What a validated Chrome trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `ph:"M"` metadata events (process/thread names).
    pub metadata: usize,
    /// `ph:"X"` complete (span) events.
    pub spans: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
    /// `ph:"s"` flow-start events (cross-process ghost arrows).
    pub flow_starts: usize,
    /// `ph:"t"` flow-finish events.
    pub flow_finishes: usize,
    /// Distinct process ids observed across all events — a merged
    /// multi-shard trace shows one per shard (plus the supervisor).
    pub pids: BTreeSet<i64>,
    /// Distinct span names observed, sorted.
    pub span_names: BTreeSet<String>,
    /// Distinct instant names observed, sorted.
    pub instant_names: BTreeSet<String>,
}

impl TraceSummary {
    /// True if a span with the given name (a BSP phase) was present.
    pub fn has_span(&self, name: &str) -> bool {
        self.span_names.contains(name)
    }
}

fn field<'a>(event: &'a Json, key: &str, i: usize) -> Result<&'a Json, String> {
    event
        .get(key)
        .ok_or_else(|| format!("event {i}: missing '{key}'"))
}

fn num_field(event: &Json, key: &str, i: usize) -> Result<f64, String> {
    field(event, key, i)?
        .as_f64()
        .ok_or_else(|| format!("event {i}: '{key}' is not a number"))
}

fn str_field<'a>(event: &'a Json, key: &str, i: usize) -> Result<&'a str, String> {
    field(event, key, i)?
        .as_str()
        .ok_or_else(|| format!("event {i}: '{key}' is not a string"))
}

/// Validates a Chrome `trace_event` JSON document (Object Format: a root
/// object with a `traceEvents` array) and summarizes its contents.
///
/// Flow events are held to the pairing contract the trace merger
/// guarantees: every flow id must carry both its `s` and its `t`
/// endpoint, and the finish may never precede its start.
///
/// # Errors
///
/// Returns a description of the first structural violation: unparsable
/// JSON, a missing/ill-typed required field, an unknown event phase, a
/// negative timestamp/duration, or a dangling/backward flow.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("root object must have a 'traceEvents' array")?;
    let mut summary = TraceSummary::default();
    let mut flow_starts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut flow_finishes: BTreeMap<u64, f64> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        if event.as_object().is_none() {
            return Err(format!("event {i}: not an object"));
        }
        let name = str_field(event, "name", i)?.to_string();
        let ph = str_field(event, "ph", i)?;
        summary.pids.insert(num_field(event, "pid", i)? as i64);
        num_field(event, "tid", i)?;
        match ph {
            "M" => {
                // Metadata: args.name carries the process/thread label.
                let args = field(event, "args", i)?;
                args.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: metadata without args.name"))?;
                summary.metadata += 1;
            }
            "X" => {
                let ts = num_field(event, "ts", i)?;
                let dur = num_field(event, "dur", i)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                summary.spans += 1;
                summary.span_names.insert(name);
            }
            "i" => {
                let ts = num_field(event, "ts", i)?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts"));
                }
                let scope = str_field(event, "s", i)?;
                if !matches!(scope, "t" | "p" | "g") {
                    return Err(format!("event {i}: bad instant scope '{scope}'"));
                }
                summary.instants += 1;
                summary.instant_names.insert(name);
            }
            "s" | "t" => {
                let ts = num_field(event, "ts", i)?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts"));
                }
                let id = num_field(event, "id", i)?;
                if !(id.is_finite() && id >= 0.0 && id.fract() == 0.0) {
                    return Err(format!("event {i}: flow id must be a nonnegative integer"));
                }
                let book = if ph == "s" {
                    summary.flow_starts += 1;
                    &mut flow_starts
                } else {
                    summary.flow_finishes += 1;
                    &mut flow_finishes
                };
                if book.insert(id as u64, ts).is_some() {
                    return Err(format!("event {i}: duplicate flow '{ph}' for id {id}"));
                }
            }
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }
    for (id, s_ts) in &flow_starts {
        let t_ts = flow_finishes
            .get(id)
            .ok_or_else(|| format!("flow id {id}: 's' without a matching 't'"))?;
        if t_ts < s_ts {
            return Err(format!("flow id {id}: finish precedes start"));
        }
    }
    if let Some((id, _)) = flow_finishes
        .iter()
        .find(|(id, _)| !flow_starts.contains_key(id))
    {
        return Err(format!("flow id {id}: 't' without a matching 's'"));
    }
    Ok(summary)
}

/// What a validated Prometheus exposition contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSummary {
    /// `# TYPE` declarations: family name → type string.
    pub families: BTreeMap<String, String>,
    /// Total sample lines.
    pub samples: usize,
}

impl MetricsSummary {
    /// True if the family was declared with the given type.
    pub fn has_family(&self, name: &str, kind: &str) -> bool {
        self.families.get(name).map(String::as_str) == Some(kind)
    }
}

fn metric_name_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line into (metric name, label text or "", value).
fn split_sample(line: &str) -> Result<(&str, &str, f64), String> {
    let (name_and_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample without value: '{line}'"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad sample value '{value}' in '{line}'"))?;
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels, ""),
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in '{line}'"))?;
            (name, labels)
        }
    };
    if !metric_name_ok(name) {
        return Err(format!("bad metric name '{name}'"));
    }
    // Each label must be key="value" (the exporter never emits quotes or
    // commas inside label values, so a flat split is exact here).
    for pair in labels.split(',').filter(|p| !p.is_empty()) {
        let (key, val) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad label '{pair}' in '{line}'"))?;
        if !metric_name_ok(key) || !val.starts_with('"') || !val.ends_with('"') || val.len() < 2 {
            return Err(format!("bad label '{pair}' in '{line}'"));
        }
    }
    Ok((name, labels, value))
}

/// The family a sample belongs to: histogram series drop their
/// `_bucket`/`_sum`/`_count` suffix when such a family was declared.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

fn le_value(labels: &str) -> Option<f64> {
    labels.split(',').find_map(|pair| {
        let (key, val) = pair.split_once('=')?;
        if key != "le" {
            return None;
        }
        val.trim_matches('"').parse().ok()
    })
}

/// Validates a Prometheus text exposition: comment/HELP/TYPE grammar,
/// sample syntax, every sample belonging to a declared family, and for
/// each histogram a cumulative, `+Inf`-terminated bucket series whose
/// total agrees with `_count`.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_prometheus(text: &str) -> Result<MetricsSummary, String> {
    let mut summary = MetricsSummary::default();
    // Histogram series — keyed by (family, non-`le` labels) so a family
    // exported once unlabeled and once per shard/generation validates
    // each label set as its own cumulative series —
    // → (le thresholds, bucket values, count, saw _sum).
    type HistState = (Vec<f64>, Vec<f64>, Option<f64>, bool);
    let mut declared_hists: BTreeSet<String> = BTreeSet::new();
    let mut histograms: BTreeMap<(String, String), HistState> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("HELP") => {
                    let name = words.next().ok_or("HELP without a metric name")?;
                    if !metric_name_ok(name) {
                        return Err(format!("bad metric name in HELP: '{name}'"));
                    }
                }
                Some("TYPE") => {
                    let name = words.next().ok_or("TYPE without a metric name")?;
                    let kind = words.next().ok_or("TYPE without a type")?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("unknown metric type '{kind}'"));
                    }
                    summary.families.insert(name.to_string(), kind.to_string());
                    if kind == "histogram" {
                        declared_hists.insert(name.to_string());
                    }
                }
                // Free-form comments are legal exposition.
                _ => {}
            }
            continue;
        }
        let (name, labels, value) = split_sample(line)?;
        let family = family_of(name, &summary.families);
        if !summary.families.contains_key(family) {
            return Err(format!("sample '{name}' has no # TYPE declaration"));
        }
        summary.samples += 1;
        if declared_hists.contains(family) {
            let series: String = labels
                .split(',')
                .filter(|p| !p.is_empty() && !p.starts_with("le="))
                .collect::<Vec<_>>()
                .join(",");
            let (les, buckets, count, saw_sum) =
                histograms.entry((family.to_string(), series)).or_default();
            if name.ends_with("_bucket") {
                let le = le_value(labels)
                    .ok_or_else(|| format!("bucket without an 'le' label: '{line}'"))?;
                les.push(le);
                buckets.push(value);
            } else if name.ends_with("_count") {
                *count = Some(value);
            } else if name.ends_with("_sum") {
                *saw_sum = true;
            }
        }
    }
    for family in &declared_hists {
        if !histograms.keys().any(|(f, _)| f == family) {
            return Err(format!("histogram '{family}' has no buckets"));
        }
    }
    for ((family, series), (les, buckets, count, saw_sum)) in &histograms {
        let what = if series.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{series}}}")
        };
        if buckets.is_empty() {
            return Err(format!("histogram '{what}' has no buckets"));
        }
        if !les.windows(2).all(|w| w[0] <= w[1]) || *les.last().expect("nonempty") != f64::INFINITY
        {
            return Err(format!(
                "histogram '{what}' 'le' series must ascend to +Inf"
            ));
        }
        if !buckets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(format!("histogram '{what}' buckets are not cumulative"));
        }
        let count = count.ok_or_else(|| format!("histogram '{what}' missing _count"))?;
        if !saw_sum {
            return Err(format!("histogram '{what}' missing _sum"));
        }
        let last = *buckets.last().expect("nonempty");
        if (last - count).abs() > 1e-9 {
            return Err(format!(
                "histogram '{what}': +Inf bucket {last} != _count {count}"
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_core::telemetry::{PhaseId, Span, Telemetry, TelemetryConfig, TraceInstant};

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::new(2, vec![(20, 2), (16, 2)], TelemetryConfig::default());
        for (pe, phase) in [(0, PhaseId::Compute), (1, PhaseId::Exchange)] {
            t.span(Span {
                phase,
                pe,
                step: 0,
                start_ns: 100 * u64::from(pe),
                dur_ns: 1_000,
            });
            t.add_phase_wall(phase, 1_000);
        }
        t.instant(TraceInstant {
            name: "fault:drop",
            pe: 1,
            step: 0,
            at_ns: 42,
        });
        t.block_latency_ns.record(2_000);
        t.block_words.record(20);
        t.compute_ns.record(1_000);
        t.steps = 1;
        t
    }

    #[test]
    fn live_chrome_trace_passes_validation() {
        let trace = sample_telemetry().to_chrome_trace("sf-test");
        let summary = validate_chrome_trace(&trace).expect("valid trace");
        assert!(summary.metadata >= 3, "process + 2 PE lanes at minimum");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert!(summary.has_span("compute") && summary.has_span("exchange"));
        assert!(summary.instant_names.contains("fault:drop"));
    }

    #[test]
    fn live_prometheus_exposition_passes_validation() {
        let text = sample_telemetry().to_prometheus();
        let summary = validate_prometheus(&text).expect("valid exposition");
        assert!(summary.has_family("quake_block_latency_seconds", "histogram"));
        assert!(summary.has_family("quake_block_size_words", "histogram"));
        assert!(summary.has_family("quake_steps_total", "counter"));
        assert!(summary.samples > 10);
    }

    #[test]
    fn trace_validator_rejects_structural_violations() {
        for bad in [
            "not json",
            "{}",
            r#"{"traceEvents":[{"ph":"X"}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"Q","pid":0,"tid":0}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":-1,"dur":0}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0,"ts":0,"s":"z"}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"M","pid":0,"tid":0,"args":{}}]}"#,
        ] {
            assert!(validate_chrome_trace(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn prometheus_validator_rejects_structural_violations() {
        for bad in [
            "quake_undeclared_total 1",
            "# TYPE quake_x counter\nquake_x",
            "# TYPE quake_x counter\nquake_x notanumber",
            "# TYPE quake_x frobnitz\nquake_x 1",
            "# TYPE quake_x counter\nquake_x{le=\"unterminated} 1",
            "# TYPE quake_h histogram\nquake_h_sum 0\nquake_h_count 0",
            // Non-cumulative buckets.
            "# TYPE quake_h histogram\n\
             quake_h_bucket{le=\"1\"} 5\nquake_h_bucket{le=\"+Inf\"} 3\n\
             quake_h_sum 1\nquake_h_count 3",
            // +Inf bucket disagrees with _count.
            "# TYPE quake_h histogram\n\
             quake_h_bucket{le=\"+Inf\"} 3\nquake_h_sum 1\nquake_h_count 4",
        ] {
            assert!(validate_prometheus(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn flow_events_validate_and_are_counted() {
        let text = r#"{"traceEvents":[
            {"name":"ghost 0->1","ph":"s","pid":1,"tid":0,"ts":10,"id":1,"cat":"ghost"},
            {"name":"ghost 0->1","ph":"t","pid":2,"tid":0,"ts":15,"id":1,"cat":"ghost"}
        ]}"#;
        let summary = validate_chrome_trace(text).expect("paired flow is valid");
        assert_eq!(summary.flow_starts, 1);
        assert_eq!(summary.flow_finishes, 1);
        assert_eq!(summary.pids.len(), 2, "flows span two shard processes");
    }

    #[test]
    fn flow_validator_rejects_dangling_and_backward_flows() {
        for (bad, why) in [
            (
                r#"{"traceEvents":[{"name":"g","ph":"s","pid":1,"tid":0,"ts":10,"id":1}]}"#,
                "s without t",
            ),
            (
                r#"{"traceEvents":[{"name":"g","ph":"t","pid":1,"tid":0,"ts":10,"id":1}]}"#,
                "t without s",
            ),
            (
                r#"{"traceEvents":[
                    {"name":"g","ph":"s","pid":1,"tid":0,"ts":20,"id":1},
                    {"name":"g","ph":"t","pid":2,"tid":0,"ts":10,"id":1}]}"#,
                "finish precedes start",
            ),
            (
                r#"{"traceEvents":[
                    {"name":"g","ph":"s","pid":1,"tid":0,"ts":1,"id":1},
                    {"name":"g","ph":"s","pid":1,"tid":0,"ts":2,"id":1},
                    {"name":"g","ph":"t","pid":2,"tid":0,"ts":3,"id":1}]}"#,
                "duplicate start",
            ),
            (
                r#"{"traceEvents":[{"name":"g","ph":"s","pid":1,"tid":0,"ts":1,"id":1.5}]}"#,
                "fractional id",
            ),
        ] {
            assert!(validate_chrome_trace(bad).is_err(), "{why} should fail");
        }
    }

    #[test]
    fn labeled_histogram_series_validate_independently() {
        // One family, a global series plus two shard-labeled series — each
        // must be cumulative on its own, not concatenated.
        let text = "# TYPE quake_h histogram\n\
                    quake_h_bucket{le=\"1\"} 4\nquake_h_bucket{le=\"+Inf\"} 6\n\
                    quake_h_sum 9\nquake_h_count 6\n\
                    quake_h_bucket{shard=\"0\",le=\"1\"} 3\n\
                    quake_h_bucket{shard=\"0\",le=\"+Inf\"} 4\n\
                    quake_h_sum{shard=\"0\"} 5\nquake_h_count{shard=\"0\"} 4\n\
                    quake_h_bucket{shard=\"1\",le=\"1\"} 1\n\
                    quake_h_bucket{shard=\"1\",le=\"+Inf\"} 2\n\
                    quake_h_sum{shard=\"1\"} 4\nquake_h_count{shard=\"1\"} 2\n";
        validate_prometheus(text).expect("each labeled series is cumulative on its own");

        // A broken shard series must still be caught even when the global
        // series is fine.
        let broken = "# TYPE quake_h histogram\n\
                      quake_h_bucket{le=\"+Inf\"} 6\nquake_h_sum 9\nquake_h_count 6\n\
                      quake_h_bucket{shard=\"0\",le=\"1\"} 5\n\
                      quake_h_bucket{shard=\"0\",le=\"+Inf\"} 3\n\
                      quake_h_sum{shard=\"0\"} 5\nquake_h_count{shard=\"0\"} 3\n";
        let err = validate_prometheus(broken).expect_err("non-cumulative shard series");
        assert!(err.contains("shard"), "error names the series: {err}");
    }

    #[test]
    fn prometheus_validator_accepts_a_minimal_hand_written_exposition() {
        let text = "# HELP quake_x total things\n# TYPE quake_x counter\n\
                    quake_x{phase=\"compute\"} 12\n\
                    # TYPE quake_h histogram\n\
                    quake_h_bucket{le=\"1\"} 1\nquake_h_bucket{le=\"+Inf\"} 2\n\
                    quake_h_sum 3.5\nquake_h_count 2\n";
        let summary = validate_prometheus(text).expect("valid");
        assert_eq!(summary.samples, 5);
        assert!(summary.has_family("quake_h", "histogram"));
    }
}
