//! Validators for the telemetry artifacts `quake smvp-run` writes: the
//! Chrome `trace_event` JSON trace (`--trace-json`) and the Prometheus
//! text exposition (`--metrics`).
//!
//! CI runs these (via the `validate_trace` binary) against a live sf10
//! run, so the exporters in `quake_core::telemetry` cannot silently drift
//! away from the two formats' actual grammars. The checks are
//! deliberately structural — event shape, phase vocabulary, label syntax,
//! cumulative-bucket monotonicity — not byte-for-byte golden files, so
//! they stay stable across timing noise.

use crate::json::{parse, Json};
use std::collections::{BTreeMap, BTreeSet};

/// What a validated Chrome trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `ph:"M"` metadata events (process/thread names).
    pub metadata: usize,
    /// `ph:"X"` complete (span) events.
    pub spans: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
    /// Distinct span names observed, sorted.
    pub span_names: BTreeSet<String>,
    /// Distinct instant names observed, sorted.
    pub instant_names: BTreeSet<String>,
}

impl TraceSummary {
    /// True if a span with the given name (a BSP phase) was present.
    pub fn has_span(&self, name: &str) -> bool {
        self.span_names.contains(name)
    }
}

fn field<'a>(event: &'a Json, key: &str, i: usize) -> Result<&'a Json, String> {
    event
        .get(key)
        .ok_or_else(|| format!("event {i}: missing '{key}'"))
}

fn num_field(event: &Json, key: &str, i: usize) -> Result<f64, String> {
    field(event, key, i)?
        .as_f64()
        .ok_or_else(|| format!("event {i}: '{key}' is not a number"))
}

fn str_field<'a>(event: &'a Json, key: &str, i: usize) -> Result<&'a str, String> {
    field(event, key, i)?
        .as_str()
        .ok_or_else(|| format!("event {i}: '{key}' is not a string"))
}

/// Validates a Chrome `trace_event` JSON document (Object Format: a root
/// object with a `traceEvents` array) and summarizes its contents.
///
/// # Errors
///
/// Returns a description of the first structural violation: unparsable
/// JSON, a missing/ill-typed required field, an unknown event phase, or a
/// negative timestamp/duration.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("root object must have a 'traceEvents' array")?;
    let mut summary = TraceSummary::default();
    for (i, event) in events.iter().enumerate() {
        if event.as_object().is_none() {
            return Err(format!("event {i}: not an object"));
        }
        let name = str_field(event, "name", i)?.to_string();
        let ph = str_field(event, "ph", i)?;
        num_field(event, "pid", i)?;
        num_field(event, "tid", i)?;
        match ph {
            "M" => {
                // Metadata: args.name carries the process/thread label.
                let args = field(event, "args", i)?;
                args.get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: metadata without args.name"))?;
                summary.metadata += 1;
            }
            "X" => {
                let ts = num_field(event, "ts", i)?;
                let dur = num_field(event, "dur", i)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                summary.spans += 1;
                summary.span_names.insert(name);
            }
            "i" => {
                let ts = num_field(event, "ts", i)?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts"));
                }
                let scope = str_field(event, "s", i)?;
                if !matches!(scope, "t" | "p" | "g") {
                    return Err(format!("event {i}: bad instant scope '{scope}'"));
                }
                summary.instants += 1;
                summary.instant_names.insert(name);
            }
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }
    Ok(summary)
}

/// What a validated Prometheus exposition contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSummary {
    /// `# TYPE` declarations: family name → type string.
    pub families: BTreeMap<String, String>,
    /// Total sample lines.
    pub samples: usize,
}

impl MetricsSummary {
    /// True if the family was declared with the given type.
    pub fn has_family(&self, name: &str, kind: &str) -> bool {
        self.families.get(name).map(String::as_str) == Some(kind)
    }
}

fn metric_name_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits a sample line into (metric name, label text or "", value).
fn split_sample(line: &str) -> Result<(&str, &str, f64), String> {
    let (name_and_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample without value: '{line}'"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad sample value '{value}' in '{line}'"))?;
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels, ""),
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in '{line}'"))?;
            (name, labels)
        }
    };
    if !metric_name_ok(name) {
        return Err(format!("bad metric name '{name}'"));
    }
    // Each label must be key="value" (the exporter never emits quotes or
    // commas inside label values, so a flat split is exact here).
    for pair in labels.split(',').filter(|p| !p.is_empty()) {
        let (key, val) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad label '{pair}' in '{line}'"))?;
        if !metric_name_ok(key) || !val.starts_with('"') || !val.ends_with('"') || val.len() < 2 {
            return Err(format!("bad label '{pair}' in '{line}'"));
        }
    }
    Ok((name, labels, value))
}

/// The family a sample belongs to: histogram series drop their
/// `_bucket`/`_sum`/`_count` suffix when such a family was declared.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

fn le_value(labels: &str) -> Option<f64> {
    labels.split(',').find_map(|pair| {
        let (key, val) = pair.split_once('=')?;
        if key != "le" {
            return None;
        }
        val.trim_matches('"').parse().ok()
    })
}

/// Validates a Prometheus text exposition: comment/HELP/TYPE grammar,
/// sample syntax, every sample belonging to a declared family, and for
/// each histogram a cumulative, `+Inf`-terminated bucket series whose
/// total agrees with `_count`.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_prometheus(text: &str) -> Result<MetricsSummary, String> {
    let mut summary = MetricsSummary::default();
    // Histogram family → (le thresholds, bucket values, count, saw _sum).
    type HistState = (Vec<f64>, Vec<f64>, Option<f64>, bool);
    let mut histograms: BTreeMap<String, HistState> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("HELP") => {
                    let name = words.next().ok_or("HELP without a metric name")?;
                    if !metric_name_ok(name) {
                        return Err(format!("bad metric name in HELP: '{name}'"));
                    }
                }
                Some("TYPE") => {
                    let name = words.next().ok_or("TYPE without a metric name")?;
                    let kind = words.next().ok_or("TYPE without a type")?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("unknown metric type '{kind}'"));
                    }
                    summary.families.insert(name.to_string(), kind.to_string());
                    if kind == "histogram" {
                        histograms.insert(name.to_string(), (Vec::new(), Vec::new(), None, false));
                    }
                }
                // Free-form comments are legal exposition.
                _ => {}
            }
            continue;
        }
        let (name, labels, value) = split_sample(line)?;
        let family = family_of(name, &summary.families);
        if !summary.families.contains_key(family) {
            return Err(format!("sample '{name}' has no # TYPE declaration"));
        }
        summary.samples += 1;
        if let Some((les, buckets, count, saw_sum)) = histograms.get_mut(family) {
            if name.ends_with("_bucket") {
                let le = le_value(labels)
                    .ok_or_else(|| format!("bucket without an 'le' label: '{line}'"))?;
                les.push(le);
                buckets.push(value);
            } else if name.ends_with("_count") {
                *count = Some(value);
            } else if name.ends_with("_sum") {
                *saw_sum = true;
            }
        }
    }
    for (family, (les, buckets, count, saw_sum)) in &histograms {
        if buckets.is_empty() {
            return Err(format!("histogram '{family}' has no buckets"));
        }
        if !les.windows(2).all(|w| w[0] <= w[1]) || *les.last().expect("nonempty") != f64::INFINITY
        {
            return Err(format!(
                "histogram '{family}' 'le' series must ascend to +Inf"
            ));
        }
        if !buckets.windows(2).all(|w| w[0] <= w[1]) {
            return Err(format!("histogram '{family}' buckets are not cumulative"));
        }
        let count = count.ok_or_else(|| format!("histogram '{family}' missing _count"))?;
        if !saw_sum {
            return Err(format!("histogram '{family}' missing _sum"));
        }
        let last = *buckets.last().expect("nonempty");
        if (last - count).abs() > 1e-9 {
            return Err(format!(
                "histogram '{family}': +Inf bucket {last} != _count {count}"
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_core::telemetry::{PhaseId, Span, Telemetry, TelemetryConfig, TraceInstant};

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::new(2, vec![(20, 2), (16, 2)], TelemetryConfig::default());
        for (pe, phase) in [(0, PhaseId::Compute), (1, PhaseId::Exchange)] {
            t.span(Span {
                phase,
                pe,
                step: 0,
                start_ns: 100 * u64::from(pe),
                dur_ns: 1_000,
            });
            t.add_phase_wall(phase, 1_000);
        }
        t.instant(TraceInstant {
            name: "fault:drop",
            pe: 1,
            step: 0,
            at_ns: 42,
        });
        t.block_latency_ns.record(2_000);
        t.block_words.record(20);
        t.compute_ns.record(1_000);
        t.steps = 1;
        t
    }

    #[test]
    fn live_chrome_trace_passes_validation() {
        let trace = sample_telemetry().to_chrome_trace("sf-test");
        let summary = validate_chrome_trace(&trace).expect("valid trace");
        assert!(summary.metadata >= 3, "process + 2 PE lanes at minimum");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert!(summary.has_span("compute") && summary.has_span("exchange"));
        assert!(summary.instant_names.contains("fault:drop"));
    }

    #[test]
    fn live_prometheus_exposition_passes_validation() {
        let text = sample_telemetry().to_prometheus();
        let summary = validate_prometheus(&text).expect("valid exposition");
        assert!(summary.has_family("quake_block_latency_seconds", "histogram"));
        assert!(summary.has_family("quake_block_size_words", "histogram"));
        assert!(summary.has_family("quake_steps_total", "counter"));
        assert!(summary.samples > 10);
    }

    #[test]
    fn trace_validator_rejects_structural_violations() {
        for bad in [
            "not json",
            "{}",
            r#"{"traceEvents":[{"ph":"X"}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"Q","pid":0,"tid":0}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":-1,"dur":0}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0,"ts":0,"s":"z"}]}"#,
            r#"{"traceEvents":[{"name":"x","ph":"M","pid":0,"tid":0,"args":{}}]}"#,
        ] {
            assert!(validate_chrome_trace(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn prometheus_validator_rejects_structural_violations() {
        for bad in [
            "quake_undeclared_total 1",
            "# TYPE quake_x counter\nquake_x",
            "# TYPE quake_x counter\nquake_x notanumber",
            "# TYPE quake_x frobnitz\nquake_x 1",
            "# TYPE quake_x counter\nquake_x{le=\"unterminated} 1",
            "# TYPE quake_h histogram\nquake_h_sum 0\nquake_h_count 0",
            // Non-cumulative buckets.
            "# TYPE quake_h histogram\n\
             quake_h_bucket{le=\"1\"} 5\nquake_h_bucket{le=\"+Inf\"} 3\n\
             quake_h_sum 1\nquake_h_count 3",
            // +Inf bucket disagrees with _count.
            "# TYPE quake_h histogram\n\
             quake_h_bucket{le=\"+Inf\"} 3\nquake_h_sum 1\nquake_h_count 4",
        ] {
            assert!(validate_prometheus(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn prometheus_validator_accepts_a_minimal_hand_written_exposition() {
        let text = "# HELP quake_x total things\n# TYPE quake_x counter\n\
                    quake_x{phase=\"compute\"} 12\n\
                    # TYPE quake_h histogram\n\
                    quake_h_bucket{le=\"1\"} 1\nquake_h_bucket{le=\"+Inf\"} 2\n\
                    quake_h_sum 3.5\nquake_h_count 2\n";
        let summary = validate_prometheus(text).expect("valid");
        assert_eq!(summary.samples, 5);
        assert!(summary.has_family("quake_h", "histogram"));
    }
}
