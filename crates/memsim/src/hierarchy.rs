//! A two-level cache hierarchy with per-level access costs, used to convert
//! an SMVP address trace into an effective sustained `T_f`.

use crate::cache::{Access, Cache};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Level-1 cache.
    L1,
    /// Level-2 cache.
    L2,
    /// Main memory.
    Memory,
}

/// Access costs per level, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// L1 hit time.
    pub l1: f64,
    /// L2 hit time (L1 miss penalty included).
    pub l2: f64,
    /// Memory access time (full miss).
    pub memory: f64,
}

impl LatencyProfile {
    /// A mid-1990s RISC node, roughly in the Alpha 21164 class the paper
    /// measured: 300 MHz, 2-cycle L1, ~10-cycle L2, ~60-cycle memory.
    pub fn alpha_21164_like() -> Self {
        let cycle = 1.0 / 300e6;
        LatencyProfile {
            l1: 2.0 * cycle,
            l2: 10.0 * cycle,
            memory: 60.0 * cycle,
        }
    }
}

/// A two-level inclusive cache hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    profile: LatencyProfile,
    counts: [u64; 3],
    total_time: f64,
}

impl Hierarchy {
    /// Creates a hierarchy from two caches and a latency profile.
    ///
    /// # Panics
    ///
    /// Panics if L2 is not larger than L1.
    pub fn new(l1: Cache, l2: Cache, profile: LatencyProfile) -> Self {
        assert!(
            l2.capacity_bytes() > l1.capacity_bytes(),
            "L2 must be larger than L1"
        );
        Hierarchy {
            l1,
            l2,
            profile,
            counts: [0; 3],
            total_time: 0.0,
        }
    }

    /// An Alpha-21164-like node: 8 KiB direct-mapped L1, 96 KiB 3-way L2,
    /// 32-byte lines.
    pub fn alpha_21164_like() -> Self {
        Hierarchy::new(
            Cache::new(8 * 1024, 32, 1),
            Cache::new(96 * 1024, 32, 3),
            LatencyProfile::alpha_21164_like(),
        )
    }

    /// A contemporary x86 core: 32 KiB 8-way L1, 1 MiB 16-way L2, 64-byte
    /// lines, ~3 GHz latencies. Used to size cache-blocking bands and to
    /// predict transform miss rates for the SIMD microkernel on the
    /// machines the benches actually run on.
    pub fn modern_core_like() -> Self {
        let cycle = 1.0 / 3.0e9;
        Hierarchy::new(
            Cache::new(32 * 1024, 64, 8),
            Cache::new(1024 * 1024, 64, 16),
            LatencyProfile {
                l1: 4.0 * cycle,
                l2: 14.0 * cycle,
                memory: 90.0 * cycle,
            },
        )
    }

    /// The level-1 cache (capacity and line size inform blocking choices).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The level-2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Installs the line containing `addr` without charging demand
    /// counters or access time — the model of a software prefetch, whose
    /// fill is assumed to overlap with compute. A later demand access to
    /// the same line then hits, which is exactly the latency-criticality
    /// shift prefetching buys; the bytes still move, so use
    /// [`TransformPrediction::bytes_streamed`](crate::predict::TransformPrediction)
    /// alongside miss rates when judging a transform.
    pub fn prefetch(&mut self, addr: u64) {
        if let Access::Miss = self.l1.access(addr) {
            let _ = self.l2.access(addr);
        }
    }

    /// Accesses an address, charging the appropriate level cost.
    pub fn access(&mut self, addr: u64) -> HitLevel {
        let level = match self.l1.access(addr) {
            Access::Hit => HitLevel::L1,
            Access::Miss => match self.l2.access(addr) {
                Access::Hit => HitLevel::L2,
                Access::Miss => HitLevel::Memory,
            },
        };
        let (idx, cost) = match level {
            HitLevel::L1 => (0, self.profile.l1),
            HitLevel::L2 => (1, self.profile.l2),
            HitLevel::Memory => (2, self.profile.memory),
        };
        self.counts[idx] += 1;
        self.total_time += cost;
        level
    }

    /// Accumulated access time (seconds).
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// `(l1 hits, l2 hits, memory accesses)`.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.counts[0], self.counts[1], self.counts[2])
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of accesses that reached memory.
    pub fn memory_fraction(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.counts[2] as f64 / total as f64
        }
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.counts = [0; 3];
        self.total_time = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(
            Cache::new(256, 32, 1),
            Cache::new(1024, 32, 2),
            LatencyProfile {
                l1: 1.0,
                l2: 10.0,
                memory: 100.0,
            },
        )
    }

    #[test]
    fn levels_and_costs() {
        let mut h = tiny();
        assert_eq!(h.access(0), HitLevel::Memory);
        assert_eq!(h.access(0), HitLevel::L1);
        assert_eq!(h.counts(), (1, 0, 1));
        assert_eq!(h.total_time(), 101.0);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = tiny();
        h.access(0); // memory
        h.access(256); // conflicts with 0 in the 8-set L1, fits L2
        assert_eq!(h.access(0), HitLevel::L2);
    }

    #[test]
    fn memory_fraction() {
        let mut h = tiny();
        for i in 0..64u64 {
            h.access(i * 32); // 2 KiB stream: mostly memory
        }
        assert!(h.memory_fraction() > 0.9);
        h.reset();
        assert_eq!(h.accesses(), 0);
        assert_eq!(h.total_time(), 0.0);
    }

    #[test]
    #[should_panic(expected = "larger")]
    fn l2_smaller_than_l1_panics() {
        let _ = Hierarchy::new(
            Cache::new(1024, 32, 1),
            Cache::new(512, 32, 1),
            LatencyProfile {
                l1: 1.0,
                l2: 2.0,
                memory: 3.0,
            },
        );
    }

    #[test]
    fn alpha_preset_is_plausible() {
        let h = Hierarchy::alpha_21164_like();
        assert_eq!(h.accesses(), 0);
        let p = LatencyProfile::alpha_21164_like();
        assert!(p.l1 < p.l2 && p.l2 < p.memory);
    }
}
