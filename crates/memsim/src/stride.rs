//! Strided-copy bandwidth: the memory-system effect behind the paper's
//! observation (§4.3, citing Stricker & Gross) that "the optimal throughput
//! of strided copies on the Cray T3D is 30–40 MBytes/sec" while sf2's MPI
//! achieved only 10 MB/s sustained.
//!
//! Packing a message gathers `x` values of boundary nodes — a strided read,
//! unit-stride write. This module measures that pattern through the cache
//! model, producing the effective copy bandwidth that a real `T_c` would
//! have to fold in.

use crate::hierarchy::Hierarchy;

/// The result of one copy-bandwidth measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyBandwidth {
    /// Element stride of the read stream (1 = contiguous).
    pub stride: usize,
    /// Effective bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

/// Measures the effective bandwidth of copying `elements` 8-byte values
/// read at `stride` (in elements) into a contiguous destination, through
/// `hierarchy`.
///
/// # Panics
///
/// Panics if `stride == 0` or `elements == 0`.
pub fn copy_bandwidth(hierarchy: &mut Hierarchy, elements: usize, stride: usize) -> CopyBandwidth {
    assert!(stride > 0, "stride must be positive");
    assert!(elements > 0, "need something to copy");
    const WORD: u64 = 8;
    // Source and destination in disjoint regions.
    let src_base = 0u64;
    let dst_base = 1u64 << 32;
    let before = hierarchy.total_time();
    for i in 0..elements {
        hierarchy.access(src_base + (i * stride) as u64 * WORD);
        hierarchy.access(dst_base + i as u64 * WORD);
    }
    let elapsed = hierarchy.total_time() - before;
    CopyBandwidth {
        stride,
        bytes_per_sec: (elements as u64 * WORD) as f64 / elapsed,
    }
}

/// Sweeps strides and returns the bandwidth at each (fresh cache per
/// stride, so results are independent).
pub fn stride_sweep<F: Fn() -> Hierarchy>(
    make_hierarchy: F,
    elements: usize,
    strides: &[usize],
) -> Vec<CopyBandwidth> {
    strides
        .iter()
        .map(|&s| {
            let mut h = make_hierarchy();
            copy_bandwidth(&mut h, elements, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_beats_large_stride() {
        let sweep = stride_sweep(Hierarchy::alpha_21164_like, 50_000, &[1, 2, 4, 8, 16]);
        assert_eq!(sweep.len(), 5);
        // Monotone decreasing until the line size is exceeded. (With no
        // overlap between misses, the model compresses the penalty to the
        // miss-rate ratio: 2 misses/element vs 1.25 -> ~1.6x.)
        assert!(
            sweep[0].bytes_per_sec > 1.5 * sweep[4].bytes_per_sec,
            "unit stride {} vs stride-16 {}",
            sweep[0].bytes_per_sec,
            sweep[4].bytes_per_sec
        );
        for w in sweep.windows(2) {
            assert!(
                w[1].bytes_per_sec <= w[0].bytes_per_sec * 1.05,
                "bandwidth should not grow with stride"
            );
        }
    }

    #[test]
    fn beyond_line_size_stride_saturates() {
        // 32-byte lines = 4 words: strides ≥ 4 miss on every element, so
        // bandwidth flattens out.
        let sweep = stride_sweep(Hierarchy::alpha_21164_like, 50_000, &[4, 8, 32]);
        let ratio = sweep[0].bytes_per_sec / sweep[2].bytes_per_sec;
        assert!(
            (0.8..1.3).contains(&ratio),
            "past the line size, stride barely matters: {ratio}"
        );
    }

    #[test]
    fn magnitudes_are_plausible_for_mid90s_node() {
        // The paper quotes 30-40 MB/s optimal strided copies on the T3D and
        // ~10 MB/s achieved. Our serialized-miss model lands strided copies
        // right in that band, and unit-stride modestly above it.
        let sweep = stride_sweep(Hierarchy::alpha_21164_like, 100_000, &[1, 8]);
        let unit = sweep[0].bytes_per_sec / 1e6;
        let strided = sweep[1].bytes_per_sec / 1e6;
        assert!((30.0..2_000.0).contains(&unit), "unit-stride {unit} MB/s");
        assert!((10.0..100.0).contains(&strided), "strided {strided} MB/s");
        assert!(unit > strided);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let mut h = Hierarchy::alpha_21164_like();
        let _ = copy_bandwidth(&mut h, 10, 0);
    }
}
