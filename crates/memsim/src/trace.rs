//! SMVP address-trace generation and sustained-`T_f` estimation.
//!
//! The paper observes that irregular codes sustain only a small fraction of
//! peak ("approximately 70 MFLOPS … only 12% of the peak rated performance
//! of 600 MFLOPS") because of irregular memory references and data too large
//! for cache. This module replays the exact memory reference stream of a CSR
//! SMVP through the cache model to *derive* that effect rather than assume
//! it.

use crate::hierarchy::Hierarchy;
use quake_sparse::csr::Csr;

/// Byte sizes of the SMVP's arrays.
const F64_BYTES: u64 = 8;
const IDX_BYTES: u64 = 8;

/// The virtual memory layout of the SMVP operands (disjoint arrays).
#[derive(Debug, Clone, Copy)]
struct Layout {
    row_ptr: u64,
    col_idx: u64,
    values: u64,
    x: u64,
    y: u64,
}

impl Layout {
    fn for_matrix(m: &Csr) -> Layout {
        // Lay the arrays out back to back, page-aligned.
        let page = 4096u64;
        let align = |a: u64| a.div_ceil(page) * page;
        let row_ptr = 0;
        let col_idx = align(row_ptr + (m.rows() as u64 + 1) * IDX_BYTES);
        let values = align(col_idx + m.nnz() as u64 * IDX_BYTES);
        let x = align(values + m.nnz() as u64 * F64_BYTES);
        let y = align(x + m.cols() as u64 * F64_BYTES);
        Layout {
            row_ptr,
            col_idx,
            values,
            x,
            y,
        }
    }
}

/// Replays one CSR SMVP's memory reference stream through `hierarchy`
/// (row-pointer reads, per-nonzero index/value/`x[col]` reads, `y[row]`
/// write) and returns the memory time in seconds.
pub fn replay_smvp(matrix: &Csr, hierarchy: &mut Hierarchy) -> f64 {
    let layout = Layout::for_matrix(matrix);
    let before = hierarchy.total_time();
    let row_ptr = matrix.row_ptr();
    let col_idx = matrix.col_idx();
    for r in 0..matrix.rows() {
        hierarchy.access(layout.row_ptr + (r as u64 + 1) * IDX_BYTES);
        for k in row_ptr[r]..row_ptr[r + 1] {
            hierarchy.access(layout.col_idx + k as u64 * IDX_BYTES);
            hierarchy.access(layout.values + k as u64 * F64_BYTES);
            hierarchy.access(layout.x + col_idx[k] as u64 * F64_BYTES);
        }
        hierarchy.access(layout.y + r as u64 * F64_BYTES);
    }
    hierarchy.total_time() - before
}

/// The sustained-`T_f` estimate for repeated SMVPs with `matrix`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfEstimate {
    /// Effective seconds per flop including memory time.
    pub t_f: f64,
    /// Sustained MFLOPS (`1e-6 / t_f`).
    pub mflops: f64,
    /// Fraction of references that reached main memory.
    pub memory_fraction: f64,
}

/// Estimates sustained `T_f` by replaying `iterations` SMVPs (the first
/// warms the cache and is discarded, matching steady-state measurement) and
/// combining memory time with `flop_time` per flop of raw arithmetic.
///
/// # Panics
///
/// Panics if `iterations == 0` or the matrix is empty.
pub fn estimate_tf(
    matrix: &Csr,
    hierarchy: &mut Hierarchy,
    flop_time: f64,
    iterations: u32,
) -> TfEstimate {
    assert!(iterations > 0, "need at least one measured iteration");
    assert!(matrix.nnz() > 0, "matrix has no work");
    // Warm-up pass.
    replay_smvp(matrix, hierarchy);
    let mut mem_time = 0.0;
    for _ in 0..iterations {
        mem_time += replay_smvp(matrix, hierarchy);
    }
    mem_time /= iterations as f64;
    let flops = matrix.smvp_flops() as f64;
    let t_f = (mem_time + flops * flop_time) / flops;
    TfEstimate {
        t_f,
        mflops: 1e-6 / t_f,
        memory_fraction: hierarchy.memory_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_sparse::coo::Coo;
    use quake_sparse::pattern::Pattern;
    use quake_sparse::reorder::{permuted_bandwidth, rcm};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A banded matrix: the cache-friendly extreme.
    fn banded(n: usize, band: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in r.saturating_sub(band)..(r + band + 1).min(n) {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    /// A random matrix: the cache-hostile extreme.
    fn scattered(n: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            coo.push(r, r, 1.0).unwrap();
            for _ in 0..per_row {
                coo.push(r, rng.gen_range(0..n), 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn replay_counts_every_reference() {
        let m = banded(100, 2);
        let mut h = Hierarchy::alpha_21164_like();
        replay_smvp(&m, &mut h);
        // rows (ptr + y) + 3 per nonzero.
        let expect = 2 * m.rows() as u64 + 3 * m.nnz() as u64;
        assert_eq!(h.accesses(), expect);
    }

    #[test]
    fn banded_sustains_more_than_scattered() {
        let n = 20_000;
        let cycle = 1.0 / 300e6;
        let mut h1 = Hierarchy::alpha_21164_like();
        let banded_est = estimate_tf(&banded(n, 6), &mut h1, cycle, 1);
        let mut h2 = Hierarchy::alpha_21164_like();
        let scattered_est = estimate_tf(&scattered(n, 12, 1), &mut h2, cycle, 1);
        assert!(
            banded_est.mflops > 1.5 * scattered_est.mflops,
            "banded {} vs scattered {} MFLOPS",
            banded_est.mflops,
            scattered_est.mflops
        );
        assert!(scattered_est.memory_fraction > banded_est.memory_fraction);
    }

    #[test]
    fn sustained_is_far_below_peak_for_irregular_access() {
        // The paper's qualitative claim: irregular SMVPs run at a small
        // fraction of peak. Peak here = 1 flop per cycle = 300 MFLOPS.
        let cycle = 1.0 / 300e6;
        let mut h = Hierarchy::alpha_21164_like();
        let est = estimate_tf(&scattered(30_000, 12, 2), &mut h, cycle, 1);
        let peak_mflops = 300.0;
        assert!(
            est.mflops < 0.35 * peak_mflops,
            "sustained {} MFLOPS is not ≪ peak {peak_mflops}",
            est.mflops
        );
        assert!(est.mflops > 5.0, "sanity: {} MFLOPS", est.mflops);
    }

    #[test]
    fn rcm_reordering_improves_sustained_rate() {
        // Build a random geometric-ish graph, compare natural vs RCM order.
        let n = 8_000;
        let mut rng = StdRng::seed_from_u64(7);
        let mut edges = Vec::new();
        for i in 0..n {
            for _ in 0..6 {
                // Mostly-local neighbors, scrambled indices.
                let j = (i + rng.gen_range(1..200)) % n;
                if i != j {
                    edges.push((i.min(j), i.max(j)));
                }
            }
        }
        let pattern = Pattern::from_edges(n, &edges).unwrap();
        let natural: Vec<usize> = (0..n).collect();
        let perm = rcm(&pattern);
        assert!(permuted_bandwidth(&pattern, &perm) <= permuted_bandwidth(&pattern, &natural));
        // Materialize both matrices.
        let to_csr = |p: &[usize]| {
            let mut coo = Coo::new(n, n);
            for i in 0..n {
                coo.push(p[i], p[i], 1.0).unwrap();
            }
            for (a, b) in pattern.edges() {
                coo.push(p[a], p[b], 1.0).unwrap();
                coo.push(p[b], p[a], 1.0).unwrap();
            }
            coo.to_csr()
        };
        let cycle = 1.0 / 300e6;
        let mut h1 = Hierarchy::alpha_21164_like();
        let nat = estimate_tf(&to_csr(&natural), &mut h1, cycle, 1);
        let mut h2 = Hierarchy::alpha_21164_like();
        let ord = estimate_tf(&to_csr(&perm), &mut h2, cycle, 1);
        assert!(
            ord.mflops >= nat.mflops * 0.95,
            "RCM should not hurt: {} vs {}",
            ord.mflops,
            nat.mflops
        );
    }

    #[test]
    fn estimate_is_deterministic() {
        let m = banded(5_000, 4);
        let cycle = 1.0 / 300e6;
        let mut h1 = Hierarchy::alpha_21164_like();
        let a = estimate_tf(&m, &mut h1, cycle, 2);
        let mut h2 = Hierarchy::alpha_21164_like();
        let b = estimate_tf(&m, &mut h2, cycle, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_iterations_panics() {
        let m = banded(10, 1);
        let mut h = Hierarchy::alpha_21164_like();
        let _ = estimate_tf(&m, &mut h, 1e-9, 0);
    }
}
