//! A set-associative LRU cache model.

/// Access outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was fetched (and possibly evicted another).
    Miss,
}

/// A single-level set-associative cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use quake_memsim::cache::{Access, Cache};
/// let mut c = Cache::new(1024, 32, 2); // 1 KiB, 32 B lines, 2-way
/// assert_eq!(c.access(0), Access::Miss);
/// assert_eq!(c.access(8), Access::Hit); // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    /// Per set: resident tags in LRU order (front = most recent).
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` and the resulting set count are powers of
    /// two and the capacity divides evenly.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "associativity must be at least 1");
        assert_eq!(
            capacity_bytes % (line_bytes * ways as u64),
            0,
            "capacity must divide into sets"
        );
        let sets = capacity_bytes / (line_bytes * ways as u64);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_bytes,
            sets,
            ways,
            tags: vec![Vec::new(); sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets * self.line_bytes * self.ways as u64
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Accesses one byte address; returns hit or miss and updates LRU state.
    pub fn access(&mut self, addr: u64) -> Access {
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            ways.remove(pos);
            ways.insert(0, tag);
            self.hits += 1;
            Access::Hit
        } else {
            ways.insert(0, tag);
            if ways.len() > self.ways {
                ways.pop();
            }
            self.misses += 1;
            Access::Miss
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]` (0 for no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.tags {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let c = Cache::new(8192, 64, 2);
        assert_eq!(c.capacity_bytes(), 8192);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(1024, 48, 2);
    }

    #[test]
    fn spatial_locality_hits() {
        let mut c = Cache::new(1024, 64, 2);
        assert_eq!(c.access(128), Access::Miss);
        for b in 129..192 {
            assert_eq!(c.access(b), Access::Hit, "byte {b} shares the line");
        }
        assert_eq!(c.access(192), Access::Miss, "next line");
        assert_eq!(c.hits(), 63);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn temporal_locality_and_lru_eviction() {
        // Direct-mapped 2-line cache: lines conflict when they share a set.
        let mut c = Cache::new(128, 64, 1); // 2 sets
        assert_eq!(c.access(0), Access::Miss); // set 0
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(128), Access::Miss); // set 0, evicts line 0
        assert_eq!(c.access(0), Access::Miss, "line 0 was evicted");
    }

    #[test]
    fn associativity_avoids_conflict() {
        // Same addresses, but 2-way: both lines fit in set 0.
        let mut c = Cache::new(256, 64, 2); // 2 sets, 2 ways
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(256), Access::Miss); // same set, other way
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(256), Access::Hit);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = Cache::new(128, 64, 2); // 1 set, 2 ways
        c.access(0); // miss: [0]
        c.access(64); // miss: [1, 0]
        c.access(0); // hit:  [0, 1]
        c.access(128); // miss, evicts LRU = line 1: [2, 0]
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(64), Access::Miss);
    }

    #[test]
    fn miss_rate_and_reset() {
        let mut c = Cache::new(1024, 64, 2);
        assert_eq!(c.miss_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.miss_rate() - 0.5).abs() < 1e-15);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(1024, 64, 2);
        // Stream 16 KiB twice: second pass still misses (capacity).
        for pass in 0..2 {
            for i in 0..256u64 {
                c.access(i * 64);
            }
            if pass == 0 {
                assert_eq!(c.misses(), 256);
            }
        }
        assert_eq!(c.misses(), 512, "no reuse fits in a 1 KiB cache");
    }
}
