//! Memory-system simulator: why irregular codes sustain a fraction of peak.
//!
//! The paper's `T_f` parameter folds in "all hardware and software
//! overheads" and is *measured*, not predicted — on a Cray T3E the Quake
//! local SMVP sustains 70 MFLOPS, 12% of the 600 MFLOPS peak, "largely
//! because of irregular memory reference patterns and because the data
//! structures are too large to fit in cache." Without the hardware, we
//! rebuild the mechanism: a set-associative cache hierarchy ([`cache`],
//! [`hierarchy`]) replays the exact reference stream of a CSR SMVP
//! ([`trace`]) to produce a sustained-`T_f` estimate, and quantifies the
//! effect of bandwidth-reducing node orderings (RCM).
//!
//! # Examples
//!
//! ```
//! use quake_memsim::hierarchy::Hierarchy;
//! use quake_memsim::trace::estimate_tf;
//! use quake_sparse::coo::Coo;
//!
//! let mut coo = Coo::new(100, 100);
//! for i in 0..100 {
//!     coo.push(i, i, 2.0)?;
//!     if i > 0 { coo.push(i, i - 1, -1.0)?; }
//! }
//! let m = coo.to_csr();
//! let mut h = Hierarchy::alpha_21164_like();
//! let est = estimate_tf(&m, &mut h, 1.0 / 300e6, 1);
//! assert!(est.mflops > 0.0);
//! # Ok::<(), quake_sparse::error::SparseError>(())
//! ```

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod cache;
pub mod hierarchy;
pub mod predict;
pub mod stride;
pub mod trace;

pub use cache::{Access, Cache};
pub use hierarchy::{Hierarchy, HitLevel, LatencyProfile};
pub use predict::{predict_transforms, TransformPrediction};
pub use stride::{copy_bandwidth, stride_sweep, CopyBandwidth};
pub use trace::{estimate_tf, replay_smvp, TfEstimate};
