//! Predicted miss-rate deltas for the BCSR microkernel transforms.
//!
//! ROADMAP item 4 asks for the cache model to earn its keep: before a
//! layout or prefetch transform is implemented in the kernels, replay its
//! exact reference stream under the hierarchy and *predict* the miss-rate
//! change, then record prediction next to measurement in EXPERIMENTS.md.
//! This module replays the block-SMVP trace of [`Bcsr3Tiles`] under four
//! successive transforms:
//!
//! 1. **`mat3-baseline`** — PR 5's register-blocked kernel: row-major
//!    72-byte `Mat3` blocks and 8-byte block-column indices.
//! 2. **`tiled`** — the flat SIMD tile stream: same 72 bytes of values per
//!    block (column-major, sequentially streamed) but 4-byte indices.
//! 3. **`tiled-prefetch`** — plus the kernel's software prefetch of the
//!    gather target and tile stream a few tiles ahead.
//! 4. **`tiled-banded-prefetch`** — plus the [`BandPlan`] row-band sweep
//!    that pulls each band's x-window into cache ahead of its gathers.
//!
//! Banding *without* prefetch is deliberately absent: the band traversal
//! visits rows in the same global order (that is what keeps the kernel
//! bitwise-equal), so its reference stream — and therefore its simulated
//! miss count — is identical to `tiled`. Banding's contribution is that it
//! gives the prefetcher an exact, bounded window to sweep; the model
//! expresses that by only letting the sweep exist in the banded transform.
//!
//! Prefetches install lines without charging demand counters or time
//! ([`Hierarchy::prefetch`]): the model assumes fills overlap with
//! compute, so a transform's win shows up as demand misses converted to
//! hits. Bytes still move — compare [`TransformPrediction::bytes_streamed`]
//! alongside miss rates.

use crate::hierarchy::Hierarchy;
use quake_sparse::tiles::{BandPlan, Bcsr3Tiles};

/// Gather-prefetch lookahead in tiles — keep in step with the kernel's
/// `LOOKAHEAD` in `quake-spark`'s tile kernels.
const LOOKAHEAD: usize = 4;

/// Bytes of one `Vec3` source/destination entry.
const VEC3_BYTES: u64 = 24;

/// Bytes of one 3×3 block's values (both layouts store 9 f64 words).
const BLOCK_BYTES: u64 = 72;

/// Predicted cache behavior of one transform's SMVP reference stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformPrediction {
    /// Transform label (see module docs).
    pub name: &'static str,
    /// Demand accesses replayed (identical across transforms — same
    /// algorithm, different layout/prefetch).
    pub accesses: u64,
    /// Fraction of demand accesses that missed L1.
    pub l1_miss_rate: f64,
    /// Fraction of demand accesses that reached main memory.
    pub memory_fraction: f64,
    /// Simulated demand access time for one product, seconds.
    pub mem_time: f64,
    /// Matrix bytes streamed per product (values + indices + row
    /// pointers) — the footprint the transform actually moves.
    pub bytes_streamed: u64,
}

/// Disjoint page-aligned base addresses for the SMVP operand arrays.
struct Layout {
    row_ptr: u64,
    col_idx: u64,
    values: u64,
    x: u64,
    y: u64,
}

impl Layout {
    fn new(rows: u64, blocks: u64, idx_bytes: u64) -> Layout {
        let page = 4096u64;
        let align = |a: u64| a.div_ceil(page) * page;
        let row_ptr = 0;
        let col_idx = align(row_ptr + (rows + 1) * 8);
        let values = align(col_idx + blocks * idx_bytes);
        let x = align(values + blocks * BLOCK_BYTES);
        let y = align(x + rows * VEC3_BYTES);
        Layout {
            row_ptr,
            col_idx,
            values,
            x,
            y,
        }
    }
}

/// Which extras a replay adds on top of the demand stream.
#[derive(Clone, Copy, PartialEq)]
struct Extras {
    /// 4-byte (tiled) vs 8-byte (baseline) block-column indices.
    idx_bytes: u64,
    /// Gather + stream lookahead prefetch, as the AVX kernel issues it.
    gather_prefetch: bool,
    /// Sweep each band's x-window ahead of the band's rows.
    band_sweep: bool,
}

/// Replays one transform: a warm-up product, then one measured product.
fn replay(
    name: &'static str,
    tiles: &Bcsr3Tiles,
    plan: &BandPlan,
    template: &Hierarchy,
    extras: Extras,
) -> TransformPrediction {
    let n = tiles.block_rows() as u64;
    let nk = tiles.block_nnz();
    let layout = Layout::new(n, nk as u64, extras.idx_bytes);
    let row_ptr = tiles.row_ptr();
    let col_idx = tiles.col_idx();
    let mut h = template.clone();
    let mut counts = (0u64, 0u64, 0u64);
    let mut mem_time = 0.0;
    for pass in 0..2 {
        let before_time = h.total_time();
        let before_counts = h.counts();
        for band in plan.bands() {
            if extras.band_sweep {
                let line = h.l1().line_bytes();
                let lo = layout.x + band.cols.start as u64 * VEC3_BYTES;
                let hi = layout.x + band.cols.end as u64 * VEC3_BYTES;
                let mut addr = lo;
                while addr < hi {
                    h.prefetch(addr);
                    addr += line;
                }
            }
            for r in band.rows.clone() {
                h.access(layout.row_ptr + (r as u64 + 1) * 8);
                for k in row_ptr[r]..row_ptr[r + 1] {
                    if extras.gather_prefetch && nk != 0 {
                        let kp = (k + LOOKAHEAD).min(nk - 1);
                        h.prefetch(layout.x + col_idx[kp] as u64 * VEC3_BYTES);
                        h.prefetch(layout.values + (kp as u64) * BLOCK_BYTES);
                    }
                    h.access(layout.col_idx + k as u64 * extras.idx_bytes);
                    for w in 0..9u64 {
                        h.access(layout.values + k as u64 * BLOCK_BYTES + w * 8);
                    }
                    let col = col_idx[k] as u64;
                    for w in 0..3u64 {
                        h.access(layout.x + col * VEC3_BYTES + w * 8);
                    }
                }
                for w in 0..3u64 {
                    h.access(layout.y + r as u64 * VEC3_BYTES + w * 8);
                }
            }
        }
        if pass == 1 {
            mem_time = h.total_time() - before_time;
            let after = h.counts();
            counts = (
                after.0 - before_counts.0,
                after.1 - before_counts.1,
                after.2 - before_counts.2,
            );
        }
    }
    let accesses = counts.0 + counts.1 + counts.2;
    let frac = |c: u64| {
        if accesses == 0 {
            0.0
        } else {
            c as f64 / accesses as f64
        }
    };
    TransformPrediction {
        name,
        accesses,
        l1_miss_rate: frac(counts.1 + counts.2),
        memory_fraction: frac(counts.2),
        mem_time,
        bytes_streamed: (n + 1) * 8 + nk as u64 * (extras.idx_bytes + BLOCK_BYTES),
    }
}

/// Predicts the per-transform miss rates for one matrix under `template`'s
/// hierarchy, in the order the transforms were implemented (see module
/// docs). The same demand stream is replayed each time — only layout and
/// prefetch differ — so `accesses` is constant across the four entries and
/// the deltas isolate each transform's contribution.
pub fn predict_transforms(
    tiles: &Bcsr3Tiles,
    plan: &BandPlan,
    template: &Hierarchy,
) -> Vec<TransformPrediction> {
    let whole = BandPlan::for_tiles(tiles, usize::MAX / 2);
    let no_extras = Extras {
        idx_bytes: 8,
        gather_prefetch: false,
        band_sweep: false,
    };
    vec![
        replay("mat3-baseline", tiles, &whole, template, no_extras),
        replay(
            "tiled",
            tiles,
            &whole,
            template,
            Extras {
                idx_bytes: 4,
                ..no_extras
            },
        ),
        replay(
            "tiled-prefetch",
            tiles,
            &whole,
            template,
            Extras {
                idx_bytes: 4,
                gather_prefetch: true,
                band_sweep: false,
            },
        ),
        replay(
            "tiled-banded-prefetch",
            tiles,
            plan,
            template,
            Extras {
                idx_bytes: 4,
                gather_prefetch: true,
                band_sweep: true,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_sparse::bcsr::Bcsr3Builder;
    use quake_sparse::dense::Mat3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A scattered-but-local block matrix big enough to spill the alpha
    /// preset's caches (stream ≈ 1.2 MiB ≫ 96 KiB L2; x ≈ 48 KiB ≫ 8 KiB
    /// L1).
    fn spilled_tiles() -> Bcsr3Tiles {
        let n = 2000;
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = Bcsr3Builder::new(n);
        for r in 0..n {
            b.add_block(r, r, Mat3::identity());
            for _ in 0..7 {
                let off = rng.gen_range(0..600) as isize - 300;
                let c = (r as isize + off).rem_euclid(n as isize) as usize;
                b.add_block(r, c, Mat3::new([[0.5; 3]; 3]));
            }
        }
        Bcsr3Tiles::from_bcsr(&b.build())
    }

    #[test]
    fn transforms_improve_in_order() {
        let tiles = spilled_tiles();
        let plan = BandPlan::for_tiles(&tiles, 8 * 1024);
        let h = Hierarchy::alpha_21164_like();
        let p = predict_transforms(&tiles, &plan, &h);
        assert_eq!(
            p.iter().map(|t| t.name).collect::<Vec<_>>(),
            [
                "mat3-baseline",
                "tiled",
                "tiled-prefetch",
                "tiled-banded-prefetch"
            ]
        );
        // Same algorithm, same demand stream: access counts agree.
        assert!(p.iter().all(|t| t.accesses == p[0].accesses));
        // 4-byte indices stream fewer matrix bytes and miss no more.
        assert!(p[1].bytes_streamed < p[0].bytes_streamed);
        assert!(p[1].l1_miss_rate <= p[0].l1_miss_rate);
        // Gather prefetch converts demand misses into hits.
        assert!(p[2].l1_miss_rate < p[1].l1_miss_rate);
        assert!(p[2].memory_fraction < p[1].memory_fraction);
        // The band sweep may only help beyond the unswept tiled replay
        // (tiny tolerance: sweeping can evict the odd stream line).
        assert!(p[3].l1_miss_rate <= p[1].l1_miss_rate + 1e-3);
        assert!(p[3].mem_time > 0.0);
    }

    #[test]
    fn prediction_is_deterministic() {
        let tiles = spilled_tiles();
        let plan = BandPlan::for_tiles(&tiles, 8 * 1024);
        let h = Hierarchy::modern_core_like();
        let a = predict_transforms(&tiles, &plan, &h);
        let b = predict_transforms(&tiles, &plan, &h);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_matrix_predicts_zero_misses() {
        let tiles = Bcsr3Tiles::from_bcsr(&Bcsr3Builder::new(0).build());
        let plan = BandPlan::for_tiles(&tiles, 1024);
        let p = predict_transforms(&tiles, &plan, &Hierarchy::alpha_21164_like());
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|t| t.accesses == 0 && t.l1_miss_rate == 0.0));
    }

    #[test]
    fn modern_preset_exposes_blocking_parameters() {
        let h = Hierarchy::modern_core_like();
        assert_eq!(h.l1().capacity_bytes(), 32 * 1024);
        assert_eq!(h.l2().capacity_bytes(), 1024 * 1024);
        assert_eq!(h.l1().line_bytes(), 64);
    }

    #[test]
    fn prefetch_charges_nothing_but_installs_the_line() {
        let mut h = Hierarchy::alpha_21164_like();
        h.prefetch(0x1000);
        assert_eq!(h.accesses(), 0);
        assert_eq!(h.total_time(), 0.0);
        assert_eq!(h.access(0x1000), crate::hierarchy::HitLevel::L1);
    }
}
