//! Property tests: every Spark98-style kernel computes the same product.
//!
//! The sequential baseline `smv` is the reference; the lock-based (`lmv`),
//! reduction-buffer (`rmv`), row-parallel (`pmv`), and pooled
//! (`rmv_pooled`/`pmv_pooled`) kernels must agree with it to within
//! 1e-12 relative error on random symmetric matrices at every thread
//! count the paper's shared-memory study sweeps (1, 2, 4, 8).
//!
//! Matrices are built from a proptest-chosen `(size, seed)` pair and a
//! `StdRng::seed_from_u64(seed)` fill (the repository's deterministic
//! seeding convention — see `tests/README.md` at the workspace root), so
//! every failure is replayable from the printed inputs.

use proptest::prelude::*;
use quake_spark::kernels::{
    bmv, bmv_into, bmv_pooled, bmv_pooled_into, lmv, lmv_into, pmv, pmv_into, pmv_pooled,
    pmv_pooled_into, rmv, rmv_into, rmv_pooled, rmv_pooled_into, smv, smv_into,
};
use quake_spark::{KernelWorkspace, WorkerPool};
use quake_sparse::bcsr::{Bcsr3, Bcsr3Builder};
use quake_sparse::coo::Coo;
use quake_sparse::csr::Csr;
use quake_sparse::dense::{Mat3, Vec3};
use quake_sparse::sym::SymCsr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REL_TOL: f64 = 1e-12;

/// Builds a random symmetric matrix with a guaranteed-nonzero diagonal and
/// ~`fill` off-diagonal density, plus a matching x vector.
fn random_symmetric(n: usize, seed: u64) -> (Csr, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let d: f64 = rng.gen_range(1.0..10.0);
        coo.push(i, i, d).expect("in range");
        for j in (i + 1)..n {
            if rng.gen_bool(0.2) {
                let v: f64 = rng.gen_range(-5.0..5.0);
                coo.push(i, j, v).expect("in range");
                coo.push(j, i, v).expect("in range");
            }
        }
    }
    let x = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
    (coo.to_csr(), x)
}

/// Asserts `got` matches the reference product within `REL_TOL`, scaled by
/// the largest reference magnitude.
fn assert_matches(reference: &[f64], got: &[f64], kernel: &str, threads: usize) {
    assert_eq!(
        reference.len(),
        got.len(),
        "{kernel}/{threads}: length mismatch"
    );
    let scale = reference.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        assert!(
            (r - g).abs() <= REL_TOL * (1.0 + scale),
            "{kernel} at {threads} threads, row {i}: reference {r} vs {g}"
        );
    }
}

/// Runs every kernel variant against the sequential baseline.
fn check_all_kernels(full: &Csr, x: &[f64]) {
    let sym = SymCsr::from_csr(full, 1e-12).expect("matrix is symmetric by construction");
    let reference = smv(&sym, x);
    for &threads in &THREAD_COUNTS {
        assert_matches(&reference, &lmv(&sym, x, threads), "lmv", threads);
        assert_matches(&reference, &rmv(&sym, x, threads), "rmv", threads);
        assert_matches(&reference, &pmv(full, x, threads), "pmv", threads);
        let pool = WorkerPool::new(threads);
        assert_matches(
            &reference,
            &rmv_pooled(&sym, x, &pool),
            "rmv_pooled",
            threads,
        );
        assert_matches(
            &reference,
            &pmv_pooled(full, x, &pool),
            "pmv_pooled",
            threads,
        );
    }
}

/// Runs every `_into` kernel against its allocating twin, reusing one dirty
/// workspace and NaN-prefilled output buffers across every call: results
/// must not depend on workspace or output history.
fn check_into_kernels(full: &Csr, x: &[f64], ws: &mut KernelWorkspace) {
    let sym = SymCsr::from_csr(full, 1e-12).expect("matrix is symmetric by construction");
    let n = sym.dim();
    let mut y = vec![f64::NAN; n];
    smv_into(&sym, x, &mut y);
    assert_matches(&smv(&sym, x), &y, "smv_into", 1);
    for &threads in &THREAD_COUNTS {
        y.fill(f64::NAN);
        lmv_into(&sym, x, threads, &mut y, ws);
        assert_matches(&lmv(&sym, x, threads), &y, "lmv_into", threads);

        y.fill(f64::NAN);
        rmv_into(&sym, x, threads, &mut y, ws);
        assert_matches(&rmv(&sym, x, threads), &y, "rmv_into", threads);

        y.fill(f64::NAN);
        pmv_into(full, x, threads, &mut y);
        assert_matches(&pmv(full, x, threads), &y, "pmv_into", threads);

        let pool = WorkerPool::new(threads);
        y.fill(f64::NAN);
        rmv_pooled_into(&sym, x, &pool, &mut y, ws);
        assert_matches(&rmv_pooled(&sym, x, &pool), &y, "rmv_pooled_into", threads);

        y.fill(f64::NAN);
        pmv_pooled_into(full, x, &pool, &mut y);
        assert_matches(&pmv_pooled(full, x, &pool), &y, "pmv_pooled_into", threads);
    }
}

/// Builds a random symmetric 3×3-block matrix and a matching block vector.
fn random_block_symmetric(n: usize, seed: u64) -> (Bcsr3, Vec<Vec3>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Bcsr3Builder::new(n);
    for i in 0..n {
        b.add_block(i, i, Mat3::identity() * rng.gen_range(1.0..10.0));
        for j in (i + 1)..n {
            if rng.gen_bool(0.2) {
                let m = Mat3::outer(
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                );
                b.add_block(i, j, m);
                b.add_block(j, i, m.transpose());
            }
        }
    }
    let x = (0..n)
        .map(|_| Vec3::new(rng.gen_range(-5.0..5.0), rng.gen(), rng.gen()))
        .collect();
    (b.build(), x)
}

fn assert_blocks_match(reference: &[Vec3], got: &[Vec3], kernel: &str, threads: usize) {
    assert_eq!(reference.len(), got.len(), "{kernel}/{threads}: length");
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        for a in 0..3 {
            assert!(
                (r.to_array()[a] - g.to_array()[a]).abs() <= 1e-10,
                "{kernel} at {threads} threads, block row {i}: {r:?} vs {g:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_kernels_agree_on_random_symmetric_matrices(
        n in 2usize..48,
        seed in 0u64..1_000_000,
    ) {
        let (full, x) = random_symmetric(n, seed);
        check_all_kernels(&full, &x);
    }

    #[test]
    fn all_kernels_agree_when_threads_exceed_rows(
        n in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        // More workers than rows: chunking must not drop or repeat rows.
        let (full, x) = random_symmetric(n, seed);
        check_all_kernels(&full, &x);
    }

    #[test]
    fn into_kernels_match_allocating_twins(
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let (full, x) = random_symmetric(n, seed);
        let mut ws = KernelWorkspace::new();
        check_into_kernels(&full, &x, &mut ws);
        // Same workspace, different matrix: history must not leak through.
        let (full2, x2) = random_symmetric((n + 7) % 48 + 1, seed ^ 0xABCD);
        check_into_kernels(&full2, &x2, &mut ws);
    }

    #[test]
    fn block_into_kernels_match_allocating_twins(
        n in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let (bcsr, x) = random_block_symmetric(n, seed);
        let mut reference = vec![Vec3::ZERO; n];
        bcsr.spmv(&x, &mut reference).expect("dims");
        for &threads in &THREAD_COUNTS {
            assert_blocks_match(&reference, &bmv(&bcsr, &x, threads), "bmv", threads);
            let mut y = vec![Vec3::new(f64::NAN, 0.0, 0.0); n];
            bmv_into(&bcsr, &x, threads, &mut y);
            assert_blocks_match(&reference, &y, "bmv_into", threads);

            let pool = WorkerPool::new(threads);
            assert_blocks_match(&reference, &bmv_pooled(&bcsr, &x, &pool), "bmv_pooled", threads);
            y.fill(Vec3::new(f64::NAN, 0.0, 0.0));
            bmv_pooled_into(&bcsr, &x, &pool, &mut y);
            assert_blocks_match(&reference, &y, "bmv_pooled_into", threads);
        }
    }
}

#[test]
fn workspace_reaches_steady_state_across_mixed_calls() {
    // After one warmup call at the widest configuration, 100 further calls
    // across every workspace-using kernel must never reallocate: the
    // fingerprint (pointer + capacity of both workspace arenas) is frozen.
    let (full, x) = random_symmetric(40, 7);
    let sym = SymCsr::from_csr(&full, 1e-12).expect("symmetric");
    let reference = smv(&sym, &x);
    let mut ws = KernelWorkspace::new();
    let mut y = vec![0.0; sym.dim()];
    let pool = WorkerPool::new(8);
    // Warmup at the high-water mark: 8 reduction buffers + lock cells.
    rmv_into(&sym, &x, 8, &mut y, &mut ws);
    lmv_into(&sym, &x, 8, &mut y, &mut ws);
    let frozen = ws.fingerprint();
    let y_ptr = (y.as_ptr() as usize, y.capacity());
    for round in 0..100 {
        match round % 4 {
            0 => rmv_into(&sym, &x, 1 + round % 8, &mut y, &mut ws),
            1 => lmv_into(&sym, &x, 1 + round % 8, &mut y, &mut ws),
            2 => rmv_pooled_into(&sym, &x, &pool, &mut y, &mut ws),
            _ => smv_into(&sym, &x, &mut y),
        }
        assert_matches(&reference, &y, "steady-state", round);
        assert_eq!(
            ws.fingerprint(),
            frozen,
            "workspace reallocated at round {round}"
        );
        assert_eq!((y.as_ptr() as usize, y.capacity()), y_ptr);
    }
}

#[test]
fn kernels_handle_the_empty_matrix() {
    let (full, x) = random_symmetric(0, 1);
    let sym = SymCsr::from_csr(&full, 1e-12).expect("empty is symmetric");
    assert!(smv(&sym, &x).is_empty());
    for &threads in &THREAD_COUNTS {
        assert!(lmv(&sym, &x, threads).is_empty());
        assert!(rmv(&sym, &x, threads).is_empty());
        assert!(pmv(&full, &x, threads).is_empty());
        let pool = WorkerPool::new(threads);
        assert!(rmv_pooled(&sym, &x, &pool).is_empty());
        assert!(pmv_pooled(&full, &x, &pool).is_empty());
    }
}

#[test]
fn kernels_handle_a_single_row() {
    let mut coo = Coo::new(1, 1);
    coo.push(0, 0, 2.5).expect("in range");
    let full = coo.to_csr();
    let x = vec![4.0];
    check_all_kernels(&full, &x);
    let sym = SymCsr::from_csr(&full, 1e-12).expect("symmetric");
    assert_eq!(smv(&sym, &x), vec![10.0]);
}

#[test]
fn pooled_kernels_are_reusable_across_products() {
    // One pool serving many products (the paper's 6000-step loop shape):
    // results must stay bit-identical to a fresh computation every time.
    let (full, x) = random_symmetric(32, 99);
    let sym = SymCsr::from_csr(&full, 1e-12).expect("symmetric");
    let reference = smv(&sym, &x);
    let pool = WorkerPool::new(4);
    for round in 0..5 {
        let got = rmv_pooled(&sym, &x, &pool);
        assert_matches(&reference, &got, "rmv_pooled", round);
        let got = pmv_pooled(&full, &x, &pool);
        assert_matches(&reference, &got, "pmv_pooled", round);
    }
}
