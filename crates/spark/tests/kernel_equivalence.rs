//! Property tests: every Spark98-style kernel computes the same product.
//!
//! The sequential baseline `smv` is the reference; the lock-based (`lmv`),
//! reduction-buffer (`rmv`), row-parallel (`pmv`), and pooled
//! (`rmv_pooled`/`pmv_pooled`) kernels must agree with it to within
//! 1e-12 relative error on random symmetric matrices at every thread
//! count the paper's shared-memory study sweeps (1, 2, 4, 8).
//!
//! Matrices are built from a proptest-chosen `(size, seed)` pair and a
//! `StdRng::seed_from_u64(seed)` fill (the repository's deterministic
//! seeding convention — see `tests/README.md` at the workspace root), so
//! every failure is replayable from the printed inputs.

use proptest::prelude::*;
use quake_spark::kernels::{lmv, pmv, pmv_pooled, rmv, rmv_pooled, smv};
use quake_spark::WorkerPool;
use quake_sparse::coo::Coo;
use quake_sparse::csr::Csr;
use quake_sparse::sym::SymCsr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REL_TOL: f64 = 1e-12;

/// Builds a random symmetric matrix with a guaranteed-nonzero diagonal and
/// ~`fill` off-diagonal density, plus a matching x vector.
fn random_symmetric(n: usize, seed: u64) -> (Csr, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let d: f64 = rng.gen_range(1.0..10.0);
        coo.push(i, i, d).expect("in range");
        for j in (i + 1)..n {
            if rng.gen_bool(0.2) {
                let v: f64 = rng.gen_range(-5.0..5.0);
                coo.push(i, j, v).expect("in range");
                coo.push(j, i, v).expect("in range");
            }
        }
    }
    let x = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
    (coo.to_csr(), x)
}

/// Asserts `got` matches the reference product within `REL_TOL`, scaled by
/// the largest reference magnitude.
fn assert_matches(reference: &[f64], got: &[f64], kernel: &str, threads: usize) {
    assert_eq!(
        reference.len(),
        got.len(),
        "{kernel}/{threads}: length mismatch"
    );
    let scale = reference.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        assert!(
            (r - g).abs() <= REL_TOL * (1.0 + scale),
            "{kernel} at {threads} threads, row {i}: reference {r} vs {g}"
        );
    }
}

/// Runs every kernel variant against the sequential baseline.
fn check_all_kernels(full: &Csr, x: &[f64]) {
    let sym = SymCsr::from_csr(full, 1e-12).expect("matrix is symmetric by construction");
    let reference = smv(&sym, x);
    for &threads in &THREAD_COUNTS {
        assert_matches(&reference, &lmv(&sym, x, threads), "lmv", threads);
        assert_matches(&reference, &rmv(&sym, x, threads), "rmv", threads);
        assert_matches(&reference, &pmv(full, x, threads), "pmv", threads);
        let pool = WorkerPool::new(threads);
        assert_matches(
            &reference,
            &rmv_pooled(&sym, x, &pool),
            "rmv_pooled",
            threads,
        );
        assert_matches(
            &reference,
            &pmv_pooled(full, x, &pool),
            "pmv_pooled",
            threads,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_kernels_agree_on_random_symmetric_matrices(
        n in 2usize..48,
        seed in 0u64..1_000_000,
    ) {
        let (full, x) = random_symmetric(n, seed);
        check_all_kernels(&full, &x);
    }

    #[test]
    fn all_kernels_agree_when_threads_exceed_rows(
        n in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        // More workers than rows: chunking must not drop or repeat rows.
        let (full, x) = random_symmetric(n, seed);
        check_all_kernels(&full, &x);
    }
}

#[test]
fn kernels_handle_the_empty_matrix() {
    let (full, x) = random_symmetric(0, 1);
    let sym = SymCsr::from_csr(&full, 1e-12).expect("empty is symmetric");
    assert!(smv(&sym, &x).is_empty());
    for &threads in &THREAD_COUNTS {
        assert!(lmv(&sym, &x, threads).is_empty());
        assert!(rmv(&sym, &x, threads).is_empty());
        assert!(pmv(&full, &x, threads).is_empty());
        let pool = WorkerPool::new(threads);
        assert!(rmv_pooled(&sym, &x, &pool).is_empty());
        assert!(pmv_pooled(&full, &x, &pool).is_empty());
    }
}

#[test]
fn kernels_handle_a_single_row() {
    let mut coo = Coo::new(1, 1);
    coo.push(0, 0, 2.5).expect("in range");
    let full = coo.to_csr();
    let x = vec![4.0];
    check_all_kernels(&full, &x);
    let sym = SymCsr::from_csr(&full, 1e-12).expect("symmetric");
    assert_eq!(smv(&sym, &x), vec![10.0]);
}

#[test]
fn pooled_kernels_are_reusable_across_products() {
    // One pool serving many products (the paper's 6000-step loop shape):
    // results must stay bit-identical to a fresh computation every time.
    let (full, x) = random_symmetric(32, 99);
    let sym = SymCsr::from_csr(&full, 1e-12).expect("symmetric");
    let reference = smv(&sym, &x);
    let pool = WorkerPool::new(4);
    for round in 0..5 {
        let got = rmv_pooled(&sym, &x, &pool);
        assert_matches(&reference, &got, "rmv_pooled", round);
        let got = pmv_pooled(&full, &x, &pool);
        assert_matches(&reference, &got, "pmv_pooled", round);
    }
}
