//! Reusable kernel scratch space for the allocation-free SMVP hot path.
//!
//! The paper's time loop repeats the same SMVP thousands of times, so any
//! per-call allocation — the per-thread reduction buffers of the RMV
//! strategy, the per-entry lock cells of the LMV strategy — turns into
//! allocator traffic that pollutes the measured `T_f`. A
//! [`KernelWorkspace`] owns those buffers across calls: they are sized on
//! first use, zeroed in place on every subsequent use, and never
//! re-allocated as long as the problem size does not grow (capacity is
//! monotone). The steady-state stability test asserts exactly that via
//! [`KernelWorkspace::fingerprint`].

use parking_lot::Mutex;

/// Reusable scratch buffers for the `_into` kernels in [`crate::kernels`].
///
/// One workspace serves any mix of kernels and problem sizes; buffers grow
/// to the high-water mark and stay there. A workspace must not be shared
/// between concurrent kernel calls (the `&mut` receiver enforces this).
#[derive(Debug, Default)]
pub struct KernelWorkspace {
    /// Flat per-thread reduction storage: buffer `t` of an RMV-style kernel
    /// with `b` buffers over `n` rows is `reduction[t*n..(t+1)*n]`. Flat
    /// storage keeps the hot path to raw pointer arithmetic (no per-buffer
    /// `Vec` headers to alias between workers).
    reduction: Vec<f64>,
    /// Per-entry lock cells for the LMV strategy, reused across calls.
    locks: Vec<Mutex<f64>>,
}

impl KernelWorkspace {
    /// Creates an empty workspace; buffers are sized lazily by first use.
    pub fn new() -> Self {
        KernelWorkspace::default()
    }

    /// A flat `buffers × n` reduction area. Contents are unspecified — the
    /// kernels zero each per-thread slice in parallel before use.
    pub(crate) fn reduction_flat(&mut self, buffers: usize, n: usize) -> &mut [f64] {
        let want = buffers * n;
        if self.reduction.len() < want {
            self.reduction.resize(want, 0.0);
        }
        &mut self.reduction[..want]
    }

    /// `n` zeroed lock cells for scattered LMV updates.
    pub(crate) fn lock_cells(&mut self, n: usize) -> &mut [Mutex<f64>] {
        if self.locks.len() < n {
            self.locks.resize_with(n, || Mutex::new(0.0));
        }
        let cells = &mut self.locks[..n];
        for cell in cells.iter_mut() {
            // Exclusive access: reset without touching the lock word.
            *cell.get_mut() = 0.0;
        }
        cells
    }

    /// `(pointer, capacity)` of each owned buffer, for steady-state
    /// stability tests: after warmup, repeated kernel calls at a fixed
    /// problem size must leave the fingerprint unchanged (no reallocation).
    pub fn fingerprint(&self) -> [(usize, usize); 2] {
        [
            (self.reduction.as_ptr() as usize, self.reduction.capacity()),
            (self.locks.as_ptr() as usize, self.locks.capacity()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_grows_to_high_water_mark_and_stays() {
        let mut ws = KernelWorkspace::new();
        let a = ws.reduction_flat(4, 100).len();
        assert_eq!(a, 400);
        let fp = ws.fingerprint();
        // Smaller request: same storage, no realloc.
        assert_eq!(ws.reduction_flat(2, 50).len(), 100);
        assert_eq!(ws.fingerprint(), fp);
        // Same-size request: still stable.
        ws.reduction_flat(4, 100);
        assert_eq!(ws.fingerprint(), fp);
    }

    #[test]
    fn lock_cells_are_zeroed_on_every_use() {
        let mut ws = KernelWorkspace::new();
        {
            let cells = ws.lock_cells(8);
            *cells[3].get_mut() = 42.0;
        }
        let cells = ws.lock_cells(8);
        assert_eq!(*cells[3].get_mut(), 0.0);
        assert_eq!(cells.len(), 8);
    }

    #[test]
    fn lock_cells_shrinking_request_reuses_storage() {
        let mut ws = KernelWorkspace::new();
        ws.lock_cells(64);
        let fp = ws.fingerprint();
        assert_eq!(ws.lock_cells(16).len(), 16);
        assert_eq!(ws.fingerprint(), fp);
    }
}
