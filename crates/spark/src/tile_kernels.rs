//! SIMD block-SMVP kernels over the flat [`Bcsr3Tiles`] layout.
//!
//! The scalar 3×3 microkernel ([`crate::kernels::bmv_range_into`]) is
//! throughput-bound on its 18 scalar multiply-adds per tile. These kernels
//! vectorize across a block's three *rows*: each column of the column-major
//! tile is one 4-lane `f64` load (lanes 0–2 live, lane 3 overhanging into
//! the next column or the stream's zero tail pad), the three source-vector
//! components are broadcast, and each tile costs three packed multiplies
//! and three packed adds instead of eighteen scalar operations.
//!
//! **The bitwise contract.** Per lane, the vector kernel performs exactly
//! the scalar microkernel's operation sequence —
//! `acc += (t·vx + t·vy) + t·vz` with multiplies and adds as separate
//! instructions (no FMA contraction — a fused multiply-add rounds once
//! where the scalar path rounds twice, which would break equality) — so
//! the result is **bitwise-equal** to the scalar path on every input. The
//! executor's cross-schedule and cross-transport equality proofs rely on
//! this. Lane 3 accumulates garbage (finite tile values, or zero at the
//! tail pad) and is never stored.
//!
//! **Dispatch.** The AVX path is compiled behind the `simd` cargo feature
//! and selected at runtime via `is_x86_feature_detected!("avx")`; the
//! scalar tile path (same layout, same operation order) is the fallback
//! everywhere else. [`force_scalar`] disables the vector path at runtime
//! so the fallback is testable on AVX hardware, and [`simd_active`]
//! reports which path dispatch would take.
//!
//! **Prefetch and banding.** The irregular `x[col]` gather is the stream
//! the hardware prefetcher cannot predict; the AVX path issues a software
//! prefetch for the gather target a few tiles ahead (plus the tile stream
//! itself, cheap insurance when the hardware stride prefetcher lags). The
//! banded entry ([`bmv_tiles_banded_into`]) additionally sweeps a
//! [`BandPlan`] band's x-window into cache before gathering from it —
//! band traversal is row order, so output remains bitwise-identical.

use crate::kernels::bmv_range_into;
use quake_sparse::bcsr::Bcsr3;
use quake_sparse::dense::Vec3;
use quake_sparse::tiles::{BandPlan, Bcsr3Tiles, TILE_LANES};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`bmv_tiles_range_into`] and the banded entry take the scalar
/// tile path even where AVX is available.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or un-forces) the scalar fallback path at runtime, overriding
/// feature detection. Output is bitwise-identical either way — this exists
/// so tests and A/B measurements can pin the path explicitly.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// True if the vector path would be taken right now: the `simd` feature is
/// compiled in, the CPU reports AVX, and [`force_scalar`] is not set.
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        !FORCE_SCALAR.load(Ordering::Relaxed) && std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// SMVP over the contiguous block-row range `rows` of the tiled layout —
/// the SIMD twin of [`bmv_range_into`], with the same calling convention:
/// `out[i - rows.start]` receives row `i`, `x` spans the full matrix.
///
/// Output is bitwise-equal to [`bmv_range_into`] on the source [`Bcsr3`]
/// (and therefore to [`Bcsr3::spmv`]) regardless of which path dispatch
/// selects.
///
/// # Panics
///
/// Panics if `rows` extends past the block-row count, `x.len()` does not
/// match the block-row count, or `out.len() != rows.len()`.
pub fn bmv_tiles_range_into(tiles: &Bcsr3Tiles, x: &[Vec3], rows: Range<usize>, out: &mut [Vec3]) {
    check_args(tiles, x, &rows, out);
    if simd_active() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: simd_active() verified AVX support at runtime; argument
        // invariants were checked above.
        unsafe {
            avx::rows_range(tiles, x, rows, out);
            return;
        }
    }
    rows_range_scalar(tiles, x, rows, out);
}

/// Cache-blocked SMVP: [`bmv_tiles_range_into`] with the traversal grouped
/// by `plan`'s row bands, each band's x-window swept by software prefetch
/// before its gathers issue (vector path only; the sweep is a hint and the
/// scalar path skips it). Two guards keep the sweep from inverting the
/// blocking win. It is *incremental*: consecutive bands' windows overlap
/// (heavily so at natural mesh ordering), and only the part of a band's
/// window not covered by the previous band's is swept, so one product
/// sweeps each source line O(1) times instead of once per band touching
/// it. And it is *amortization-gated*: a band whose fresh window is wider
/// than its own tile stream — the degenerate single-row bands
/// [`BandPlan::for_tiles`] emits when one scattered row gathers wider than
/// the budget — skips the sweep outright. Bands are visited in row order,
/// so the accumulation order — and therefore every output bit — is
/// identical to the unbanded kernel.
///
/// # Panics
///
/// As [`bmv_tiles_range_into`]; additionally debug-asserts that `plan`
/// covers the matrix's rows.
pub fn bmv_tiles_banded_into(
    tiles: &Bcsr3Tiles,
    plan: &BandPlan,
    x: &[Vec3],
    rows: Range<usize>,
    out: &mut [Vec3],
) {
    check_args(tiles, x, &rows, out);
    debug_assert_eq!(
        plan.bands().last().map_or(0, |b| b.rows.end),
        tiles.block_rows(),
        "band plan does not cover the matrix"
    );
    let vector = simd_active();
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    let mut swept: Range<usize> = 0..0;
    for band in plan.bands() {
        let lo = band.rows.start.max(rows.start);
        let hi = band.rows.end.min(rows.end);
        if lo >= hi {
            continue;
        }
        let out_band = &mut out[lo - rows.start..hi - rows.start];
        if vector {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // SAFETY: simd_active() verified AVX; args checked on entry and
            // band.cols lies within 0..block_rows == x.len() by BandPlan
            // construction.
            unsafe {
                // Fresh window: the parts of this band's window the
                // previous band did not already sweep (up to two contiguous
                // pieces around the overlap). Skipping prefetches never
                // changes output — the sweep is a pure hint.
                let c = &band.cols;
                let head = c.start..c.end.min(swept.start.max(c.start));
                let tail = c.start.max(swept.end.min(c.end))..c.end;
                let fresh = head.len() + tail.len();
                let fresh_lines = (fresh * quake_sparse::tiles::X_ENTRY_BYTES).div_ceil(64);
                let band_tiles = tiles.row_ptr()[hi] - tiles.row_ptr()[lo];
                // Amortization gate: at most ~one prefetch per tile the
                // band itself processes. Degenerate bands — one scattered
                // row forced over the plan's budget — would otherwise sweep
                // a window wider than the cache for a few dozen flops.
                if fresh_lines <= band_tiles {
                    avx::sweep_window(x, head);
                    avx::sweep_window(x, tail);
                    swept = c.clone();
                }
                avx::rows_range(tiles, x, lo..hi, out_band);
            }
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            rows_range_scalar(tiles, x, lo..hi, out_band);
        } else {
            rows_range_scalar(tiles, x, lo..hi, out_band);
        }
    }
}

fn check_args(tiles: &Bcsr3Tiles, x: &[Vec3], rows: &Range<usize>, out: &[Vec3]) {
    let n = tiles.block_rows();
    assert!(
        rows.start <= rows.end && rows.end <= n,
        "row range {rows:?} out of bounds for {n} block rows"
    );
    assert_eq!(x.len(), n, "x length must match block rows");
    assert_eq!(out.len(), rows.len(), "out length must match the row range");
}

/// The scalar path over the tiled layout: column-major indexing, but the
/// per-lane operation order of [`crate::kernels::bmv_range_into`]'s
/// `micro_3x3` exactly — `acc[l] += (t·vx + t·vy) + t·vz` — so all three
/// implementations agree bitwise.
fn rows_range_scalar(tiles: &Bcsr3Tiles, x: &[Vec3], rows: Range<usize>, out: &mut [Vec3]) {
    let row_ptr = tiles.row_ptr();
    let col_idx = tiles.col_idx();
    let values = tiles.values();
    // SAFETY (whole loop): Bcsr3Tiles::audit guarantees row_ptr is monotone
    // with row_ptr[n] == block_nnz, every col_idx[k] < n == x.len(), and the
    // value stream holds TILE_LANES words per tile; rows/out bounds were
    // asserted by the caller.
    for r in rows.clone() {
        unsafe {
            let mut acc = [0.0f64; 3];
            for k in *row_ptr.get_unchecked(r)..*row_ptr.get_unchecked(r + 1) {
                let t = values.as_ptr().add(k * TILE_LANES);
                let v = *x.get_unchecked(*col_idx.get_unchecked(k) as usize);
                for (lane, slot) in acc.iter_mut().enumerate() {
                    *slot += *t.add(lane) * v.x + *t.add(3 + lane) * v.y + *t.add(6 + lane) * v.z;
                }
            }
            *out.get_unchecked_mut(r - rows.start) = Vec3::new(acc[0], acc[1], acc[2]);
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    use super::*;
    use std::arch::x86_64::*;

    /// Gather-prefetch lookahead, in tiles. Far enough to beat an L2 miss
    /// at ~15 tiles/row, near enough that the line is rarely evicted
    /// before use.
    const LOOKAHEAD: usize = 4;

    /// One cache line, for the band-window sweep stride.
    const LINE_BYTES: usize = 64;

    /// Prefetches the source-vector window `cols` (a [`BandPlan`] band's
    /// gather range) into cache, one request per line.
    ///
    /// # Safety
    ///
    /// Caller must have AVX verified. `cols` must lie within `x`
    /// (prefetch never faults, but the pointer arithmetic must not leave
    /// the allocation except via `wrapping_add`).
    #[target_feature(enable = "avx")]
    pub unsafe fn sweep_window(x: &[Vec3], cols: Range<usize>) {
        let base = x.as_ptr().add(cols.start) as *const i8;
        let bytes = cols.len() * std::mem::size_of::<Vec3>();
        let mut off = 0;
        while off < bytes {
            // T1: the window targets L2 residency — T0 would thrash an
            // 8-way L1 long before a band-sized window fits it.
            _mm_prefetch(base.wrapping_add(off), _MM_HINT_T1);
            off += LINE_BYTES;
        }
    }

    /// The AVX row-range kernel. Per tile: three 4-lane column loads
    /// (lane 3 overhangs into the next column / zero tail pad and is
    /// discarded), three broadcasts, three `mul` + three `add` — the
    /// scalar operation order per lane, never contracted to FMA.
    ///
    /// # Safety
    ///
    /// Caller must have AVX verified and the `check_args` invariants hold;
    /// `tiles` must pass its audit (aligned stream, zero tail tile,
    /// in-range columns — guaranteed by `Bcsr3Tiles` construction).
    #[target_feature(enable = "avx")]
    pub unsafe fn rows_range(tiles: &Bcsr3Tiles, x: &[Vec3], rows: Range<usize>, out: &mut [Vec3]) {
        let row_ptr = tiles.row_ptr();
        let col_idx = tiles.col_idx();
        let values = tiles.values();
        let nk = col_idx.len();
        let xp = x.as_ptr();
        for r in rows.clone() {
            let mut acc = _mm256_setzero_pd();
            for k in *row_ptr.get_unchecked(r)..*row_ptr.get_unchecked(r + 1) {
                let t = values.as_ptr().add(k * TILE_LANES);
                // Prefetch the gather target LOOKAHEAD tiles ahead (the
                // access the hardware prefetcher cannot predict) and the
                // tile stream at the same distance. Addresses use
                // wrapping arithmetic: prefetch never faults, but only
                // wrapping_add may leave the allocation without UB.
                if nk != 0 {
                    let kp = (k + LOOKAHEAD).min(nk - 1);
                    let cp = *col_idx.get_unchecked(kp) as usize;
                    _mm_prefetch(xp.add(cp) as *const i8, _MM_HINT_T0);
                    _mm_prefetch(
                        (t as *const i8).wrapping_add(LOOKAHEAD * TILE_LANES * 8),
                        _MM_HINT_T0,
                    );
                }
                let v = x.get_unchecked(*col_idx.get_unchecked(k) as usize);
                let bx = _mm256_set1_pd(v.x);
                let by = _mm256_set1_pd(v.y);
                let bz = _mm256_set1_pd(v.z);
                // Columns at word offsets 0, 3, 6; each load reads four
                // words, one past the column — in bounds thanks to the
                // stream's zero tail tile (audited at construction).
                let c0 = _mm256_loadu_pd(t);
                let c1 = _mm256_loadu_pd(t.add(3));
                let c2 = _mm256_loadu_pd(t.add(6));
                // (c0·vx + c1·vy) + c2·vz, then acc + — the scalar
                // association, as separate mul/add (no FMA).
                let s = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(c0, bx), _mm256_mul_pd(c1, by)),
                    _mm256_mul_pd(c2, bz),
                );
                acc = _mm256_add_pd(acc, s);
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            *out.get_unchecked_mut(r - rows.start) = Vec3::new(lanes[0], lanes[1], lanes[2]);
        }
    }
}

/// Reference product for tests and bench twins: the scalar microkernel
/// over the *source* matrix, which the tile kernels must match bitwise.
#[doc(hidden)]
pub fn reference_bmv(matrix: &Bcsr3, x: &[Vec3], y: &mut [Vec3]) {
    bmv_range_into(matrix, x, 0..matrix.block_rows(), y);
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_sparse::bcsr::Bcsr3Builder;
    use quake_sparse::dense::Mat3;
    use quake_sparse::tiles::X_ENTRY_BYTES;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Mutex;

    /// Serializes tests that flip the global [`force_scalar`] switch.
    static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

    fn random_bcsr(n: usize, seed: u64) -> Bcsr3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Bcsr3Builder::new(n);
        for r in 0..n {
            // Degree 0..=8 so every per-row tile-count residue appears,
            // including empty rows.
            let deg = rng.gen_range(0..=8usize);
            for _ in 0..deg {
                let c = rng.gen_range(0..n);
                let m = Mat3::new([
                    [rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0), 0.1],
                    [rng.gen_range(-2.0..2.0), 1.0, rng.gen_range(-2.0..2.0)],
                    [0.3, rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)],
                ]);
                b.add_block(r, c, m);
            }
        }
        b.build()
    }

    fn random_x(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(-3.0..3.0),
                )
            })
            .collect()
    }

    fn assert_vec3_bits_eq(a: &[Vec3], b: &[Vec3], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (u, v)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                (u.x.to_bits(), u.y.to_bits(), u.z.to_bits()),
                (v.x.to_bits(), v.y.to_bits(), v.z.to_bits()),
                "{what}: row {i} differs: {u} vs {v}"
            );
        }
    }

    #[test]
    fn tile_kernel_matches_scalar_micro_bitwise() {
        for seed in 0..12u64 {
            let n = 40 + (seed as usize) * 13;
            let matrix = random_bcsr(n, seed);
            let tiles = Bcsr3Tiles::from_bcsr(&matrix);
            let x = random_x(n, seed);
            let mut want = vec![Vec3::ZERO; n];
            reference_bmv(&matrix, &x, &mut want);
            let mut got = vec![Vec3::ZERO; n];
            bmv_tiles_range_into(&tiles, &x, 0..n, &mut got);
            assert_vec3_bits_eq(&got, &want, &format!("dispatched, seed {seed}"));
            // The scalar tile path must agree even when dispatch would
            // have picked the vector path.
            let mut scalar = vec![Vec3::ZERO; n];
            rows_range_scalar(&tiles, &x, 0..n, &mut scalar);
            assert_vec3_bits_eq(&scalar, &want, &format!("scalar tiles, seed {seed}"));
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx_path_matches_scalar_micro_bitwise() {
        if !std::arch::is_x86_feature_detected!("avx") {
            eprintln!("skipping: no AVX on this host");
            return;
        }
        for seed in 0..12u64 {
            let n = 64 + (seed as usize) * 7;
            let matrix = random_bcsr(n, seed.wrapping_mul(31).wrapping_add(5));
            let tiles = Bcsr3Tiles::from_bcsr(&matrix);
            let x = random_x(n, seed);
            let mut want = vec![Vec3::ZERO; n];
            reference_bmv(&matrix, &x, &mut want);
            let mut got = vec![Vec3::ZERO; n];
            // SAFETY: AVX verified above; ranges are in bounds.
            unsafe { avx::rows_range(&tiles, &x, 0..n, &mut got) };
            assert_vec3_bits_eq(&got, &want, &format!("avx explicit, seed {seed}"));
        }
    }

    #[test]
    fn partial_ranges_match_scalar_micro() {
        let n = 120;
        let matrix = random_bcsr(n, 99);
        let tiles = Bcsr3Tiles::from_bcsr(&matrix);
        let x = random_x(n, 99);
        let mut want = vec![Vec3::ZERO; n];
        reference_bmv(&matrix, &x, &mut want);
        for (lo, hi) in [(0, 0), (0, 1), (7, 7), (3, 50), (50, 120), (119, 120)] {
            let mut got = vec![Vec3::ZERO; hi - lo];
            bmv_tiles_range_into(&tiles, &x, lo..hi, &mut got);
            assert_vec3_bits_eq(&got, &want[lo..hi], &format!("range {lo}..{hi}"));
        }
    }

    #[test]
    fn banded_matches_unbanded_bitwise_at_every_window() {
        let n = 150;
        let matrix = random_bcsr(n, 7);
        let tiles = Bcsr3Tiles::from_bcsr(&matrix);
        let x = random_x(n, 7);
        let mut want = vec![Vec3::ZERO; n];
        bmv_tiles_range_into(&tiles, &x, 0..n, &mut want);
        for window in [X_ENTRY_BYTES, 16 * X_ENTRY_BYTES, 4096, usize::MAX / 2] {
            let plan = BandPlan::for_tiles(&tiles, window);
            let mut got = vec![Vec3::ZERO; n];
            bmv_tiles_banded_into(&tiles, &plan, &x, 0..n, &mut got);
            assert_vec3_bits_eq(&got, &want, &format!("window {window}"));
            // Banded partial ranges (the executor's boundary/interior
            // split) must honor the same out-offset convention.
            let mid = n / 3;
            let mut head = vec![Vec3::ZERO; mid];
            let mut tail = vec![Vec3::ZERO; n - mid];
            bmv_tiles_banded_into(&tiles, &plan, &x, 0..mid, &mut head);
            bmv_tiles_banded_into(&tiles, &plan, &x, mid..n, &mut tail);
            assert_vec3_bits_eq(&head, &want[..mid], "banded head");
            assert_vec3_bits_eq(&tail, &want[mid..], "banded tail");
        }
    }

    #[test]
    fn tail_tiles_of_every_residue_match() {
        // Matrices whose total tile count runs through every residue mod 4
        // (the lane-block granularity) and whose last row has 1..=8 tiles,
        // so the overhanging tail-column load exercises every alignment of
        // the final tile against the zero pad.
        for extra in 0..8usize {
            let n = 16;
            let mut b = Bcsr3Builder::new(n);
            for r in 0..n - 1 {
                b.add_block(r, r, Mat3::identity());
                b.add_block(r, (r + 5) % n, Mat3::new([[0.5; 3]; 3]));
            }
            for j in 0..=extra {
                b.add_block(n - 1, j, Mat3::new([[1.0 + j as f64; 3]; 3]));
            }
            let matrix = b.build();
            let tiles = Bcsr3Tiles::from_bcsr(&matrix);
            let x = random_x(n, extra as u64);
            let mut want = vec![Vec3::ZERO; n];
            reference_bmv(&matrix, &x, &mut want);
            let mut got = vec![Vec3::ZERO; n];
            bmv_tiles_range_into(&tiles, &x, 0..n, &mut got);
            assert_vec3_bits_eq(&got, &want, &format!("tail residue {extra}"));
        }
    }

    #[test]
    fn forced_fallback_disables_simd_and_stays_bitwise_equal() {
        let _guard = DISPATCH_LOCK.lock().unwrap();
        let n = 80;
        let matrix = random_bcsr(n, 3);
        let tiles = Bcsr3Tiles::from_bcsr(&matrix);
        let x = random_x(n, 3);
        let mut want = vec![Vec3::ZERO; n];
        reference_bmv(&matrix, &x, &mut want);

        let hardware = simd_active();
        force_scalar(true);
        assert!(
            !simd_active(),
            "force_scalar(true) must disable the vector path"
        );
        let mut forced = vec![Vec3::ZERO; n];
        bmv_tiles_range_into(&tiles, &x, 0..n, &mut forced);
        let plan = BandPlan::for_tiles(&tiles, 4096);
        let mut forced_banded = vec![Vec3::ZERO; n];
        bmv_tiles_banded_into(&tiles, &plan, &x, 0..n, &mut forced_banded);
        force_scalar(false);
        assert_eq!(
            simd_active(),
            hardware,
            "force_scalar(false) must restore detection"
        );

        assert_vec3_bits_eq(&forced, &want, "forced fallback");
        assert_vec3_bits_eq(&forced_banded, &want, "forced banded fallback");
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let tiles = Bcsr3Tiles::from_bcsr(&Bcsr3Builder::new(0).build());
        let mut out: Vec<Vec3> = Vec::new();
        bmv_tiles_range_into(&tiles, &[], 0..0, &mut out);
        let n = 5;
        let matrix = Bcsr3Builder::new(n).build(); // all rows empty
        let tiles = Bcsr3Tiles::from_bcsr(&matrix);
        let x = random_x(n, 1);
        let mut got = vec![Vec3::new(9.0, 9.0, 9.0); n];
        bmv_tiles_range_into(&tiles, &x, 0..n, &mut got);
        assert!(got.iter().all(|v| v.x == 0.0 && v.y == 0.0 && v.z == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_past_end_panics() {
        let tiles = Bcsr3Tiles::from_bcsr(&random_bcsr(10, 0));
        let x = random_x(10, 0);
        let mut out = vec![Vec3::ZERO; 11];
        bmv_tiles_range_into(&tiles, &x, 0..11, &mut out);
    }
}
