//! Spark98-style shared-memory SMVP kernels (paper postscript).
//!
//! Rebuilds the shared-memory members of the Spark98 kernel family over
//! this reproduction's symmetric stiffness matrices: a sequential baseline
//! ([`kernels::smv`]), a lock-based parallel kernel ([`kernels::lmv`]), a
//! reduction-buffer parallel kernel ([`kernels::rmv`]), and a row-parallel
//! full-storage kernel ([`kernels::pmv`]), and a block-row-parallel 3×3-block
//! kernel ([`kernels::bmv`]). The `bench_spark` target compares
//! their throughput; all four produce identical results.

pub mod kernels;

pub use kernels::{bmv, lmv, pmv, rmv, smv};
