//! Spark98-style shared-memory SMVP kernels (paper postscript).
//!
//! Rebuilds the shared-memory members of the Spark98 kernel family over
//! this reproduction's symmetric stiffness matrices: a sequential baseline
//! ([`kernels::smv`]), a lock-based parallel kernel ([`kernels::lmv`]), a
//! reduction-buffer parallel kernel ([`kernels::rmv`]), a row-parallel
//! full-storage kernel ([`kernels::pmv`]), and a block-row-parallel
//! 3×3-block kernel ([`kernels::bmv`]). The `bench_spark` target compares
//! their throughput; all produce identical results.
//!
//! For repeated products (the paper's 6000-step time loop) the
//! [`pool::WorkerPool`] keeps worker threads persistent across calls and
//! the `*_pooled` kernels run over it without per-call thread spawns.
//! The in-place `_into` variants ([`kernels::rmv_pooled_into`],
//! [`kernels::pmv_pooled_into`], [`kernels::bmv_pooled_into`], …) draw
//! their scratch space from a reusable [`workspace::KernelWorkspace`] and
//! dispatch over [`pool::WorkerPool::broadcast`], making the steady-state
//! product allocation-free; `bench_executor` and `bench_smvp` track the
//! pooled-vs-spawned and alloc-vs-in-place gaps.

//!
//! The [`tile_kernels`] module layers an AVX microkernel (behind the
//! `simd` cargo feature, runtime-dispatched) and a cache-blocked banded
//! variant over the flat [`quake_sparse::tiles::Bcsr3Tiles`] layout,
//! bitwise-equal to the scalar 3×3 micro path.

pub mod kernels;
pub mod pool;
pub mod tile_kernels;
pub mod workspace;

pub use kernels::{
    bmv, bmv_into, bmv_pooled, bmv_pooled_into, bmv_range_into, lmv, lmv_into, pmv, pmv_into,
    pmv_pooled, pmv_pooled_into, rmv, rmv_into, rmv_pooled, rmv_pooled_into, smv, smv_into,
};
pub use pool::{BatchFailure, PoolStats, SupervisionPolicy, WorkerPool};
pub use tile_kernels::{bmv_tiles_banded_into, bmv_tiles_range_into, force_scalar, simd_active};
pub use workspace::KernelWorkspace;
