//! Spark98-style shared-memory SMVP kernels (paper postscript).
//!
//! Rebuilds the shared-memory members of the Spark98 kernel family over
//! this reproduction's symmetric stiffness matrices: a sequential baseline
//! ([`kernels::smv`]), a lock-based parallel kernel ([`kernels::lmv`]), a
//! reduction-buffer parallel kernel ([`kernels::rmv`]), a row-parallel
//! full-storage kernel ([`kernels::pmv`]), and a block-row-parallel
//! 3×3-block kernel ([`kernels::bmv`]). The `bench_spark` target compares
//! their throughput; all produce identical results.
//!
//! For repeated products (the paper's 6000-step time loop) the
//! [`pool::WorkerPool`] keeps worker threads persistent across calls and
//! the `*_pooled` kernels run over it without per-call thread spawns.
//! The in-place `_into` variants ([`kernels::rmv_pooled_into`],
//! [`kernels::pmv_pooled_into`], [`kernels::bmv_pooled_into`], …) draw
//! their scratch space from a reusable [`workspace::KernelWorkspace`] and
//! dispatch over [`pool::WorkerPool::broadcast`], making the steady-state
//! product allocation-free; `bench_executor` and `bench_smvp` track the
//! pooled-vs-spawned and alloc-vs-in-place gaps.

pub mod kernels;
pub mod pool;
pub mod workspace;

pub use kernels::{
    bmv, bmv_into, bmv_pooled, bmv_pooled_into, bmv_range_into, lmv, lmv_into, pmv, pmv_into,
    pmv_pooled, pmv_pooled_into, rmv, rmv_into, rmv_pooled, rmv_pooled_into, smv, smv_into,
};
pub use pool::{BatchFailure, PoolStats, SupervisionPolicy, WorkerPool};
pub use workspace::KernelWorkspace;
