//! Spark98-style shared-memory SMVP kernels (paper postscript).
//!
//! Rebuilds the shared-memory members of the Spark98 kernel family over
//! this reproduction's symmetric stiffness matrices: a sequential baseline
//! ([`kernels::smv`]), a lock-based parallel kernel ([`kernels::lmv`]), a
//! reduction-buffer parallel kernel ([`kernels::rmv`]), a row-parallel
//! full-storage kernel ([`kernels::pmv`]), and a block-row-parallel
//! 3×3-block kernel ([`kernels::bmv`]). The `bench_spark` target compares
//! their throughput; all produce identical results.
//!
//! For repeated products (the paper's 6000-step time loop) the
//! [`pool::WorkerPool`] keeps worker threads persistent across calls, and
//! [`kernels::rmv_pooled`]/[`kernels::pmv_pooled`] run the same algorithms
//! over it without per-call thread spawns; `bench_executor` tracks the
//! pooled-vs-spawned gap.

pub mod kernels;
pub mod pool;

pub use kernels::{bmv, lmv, pmv, pmv_pooled, rmv, rmv_pooled, smv};
pub use pool::WorkerPool;
