//! Spark98-style SMVP kernels.
//!
//! The paper's postscript points to Spark98, "a collection of 10 portable
//! sequential and parallel SMVP kernels". This module rebuilds the
//! shared-memory members of that family over the symmetric stiffness
//! matrices of this reproduction:
//!
//! * [`smv`] — sequential symmetric SMVP (the baseline);
//! * [`lmv`] — threaded, scattered `y` updates guarded by per-entry locks
//!   (Spark98's LMV);
//! * [`rmv`] — threaded, private per-thread `y` buffers reduced afterwards
//!   (Spark98's RMV);
//! * [`pmv`] — threaded row-parallel product over the *full* (non-symmetric
//!   storage) matrix: no conflicts, double the memory traffic.
//!
//! All kernels compute exactly the same `y = Kx`; the benches compare their
//! throughput, reproducing the classic locks-vs-reduction tradeoff.
//!
//! The `*_pooled` variants ([`rmv_pooled`], [`pmv_pooled`]) run the same
//! algorithms over a persistent [`WorkerPool`] instead of spawning threads
//! per call — the executor-grade path for repeated products such as the
//! paper's 6000-step time loop.

use crate::pool::{Task, WorkerPool};
use parking_lot::Mutex;
use quake_sparse::csr::Csr;
use quake_sparse::dense::Vec3;
use quake_sparse::sym::SymCsr;

/// Sequential symmetric SMVP (baseline).
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension.
pub fn smv(matrix: &SymCsr, x: &[f64]) -> Vec<f64> {
    matrix.spmv_alloc(x).expect("dimension checked by caller")
}

/// Splits `n` rows into `threads` contiguous chunks of near-equal size.
fn row_chunks(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    (0..threads)
        .map(|t| {
            let lo = n * t / threads;
            let hi = n * (t + 1) / threads;
            lo..hi
        })
        .collect()
}

/// Threaded symmetric SMVP with per-entry locks on the scattered updates.
///
/// Each thread owns a contiguous row range; the transpose contribution
/// `y[c] += v·x[r]` may target any row, so each `y` entry is a mutex.
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension or
/// `threads == 0`.
pub fn lmv(matrix: &SymCsr, x: &[f64], threads: usize) -> Vec<f64> {
    assert_eq!(
        x.len(),
        matrix.dim(),
        "x length must match matrix dimension"
    );
    assert!(threads > 0, "need at least one thread");
    let n = matrix.dim();
    let y: Vec<Mutex<f64>> = (0..n).map(|_| Mutex::new(0.0)).collect();
    let full = matrix.parts();
    let chunks = row_chunks(n, threads);
    std::thread::scope(|scope| {
        for range in &chunks {
            let range = range.clone();
            let y = &y;
            let full = &full;
            scope.spawn(move || {
                for r in range {
                    let mut local = full.diag[r] * x[r];
                    for k in full.row_ptr[r]..full.row_ptr[r + 1] {
                        let c = full.col_idx[k];
                        let v = full.values[k];
                        local += v * x[c];
                        *y[c].lock() += v * x[r];
                    }
                    *y[r].lock() += local;
                }
            });
        }
    });
    y.into_iter().map(|m| m.into_inner()).collect()
}

/// Threaded symmetric SMVP with per-thread private accumulation buffers,
/// reduced after the barrier (Spark98's RMV strategy).
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension or
/// `threads == 0`.
pub fn rmv(matrix: &SymCsr, x: &[f64], threads: usize) -> Vec<f64> {
    assert_eq!(
        x.len(),
        matrix.dim(),
        "x length must match matrix dimension"
    );
    assert!(threads > 0, "need at least one thread");
    let n = matrix.dim();
    let full = matrix.parts();
    let chunks = row_chunks(n, threads);
    let buffers: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|range| {
                let range = range.clone();
                let full = &full;
                scope.spawn(move || {
                    let mut buf = vec![0.0; n];
                    for r in range {
                        let mut local = full.diag[r] * x[r];
                        for k in full.row_ptr[r]..full.row_ptr[r + 1] {
                            let c = full.col_idx[k];
                            let v = full.values[k];
                            local += v * x[c];
                            buf[c] += v * x[r];
                        }
                        buf[r] += local;
                    }
                    buf
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel thread panicked"))
            .collect()
    });
    // Parallel-friendly reduction (serial here; the buffers dominate).
    let mut y = vec![0.0; n];
    for buf in buffers {
        for (yi, bi) in y.iter_mut().zip(buf) {
            *yi += bi;
        }
    }
    y
}

/// Threaded row-parallel SMVP over full CSR storage: each thread writes a
/// disjoint slice of `y`, so no synchronization is needed, at the cost of
/// storing (and streaming) both triangles.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `threads == 0`.
pub fn pmv(matrix: &Csr, x: &[f64], threads: usize) -> Vec<f64> {
    assert_eq!(x.len(), matrix.cols(), "x length must match matrix columns");
    assert!(threads > 0, "need at least one thread");
    let n = matrix.rows();
    let mut y = vec![0.0; n];
    let chunks = row_chunks(n, threads);
    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = &mut y;
        let mut handles = Vec::new();
        for range in &chunks {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            handles.push(scope.spawn(move || {
                for (slot, r) in mine.iter_mut().zip(range) {
                    let mut sum = 0.0;
                    for (c, v) in matrix.row(r).pairs() {
                        sum += v * x[c];
                    }
                    *slot = sum;
                }
            }));
        }
    });
    y
}

/// [`rmv`] over a persistent [`WorkerPool`]: per-worker private buffers
/// reduced after the pool barrier, no thread spawns on the call path.
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension.
pub fn rmv_pooled(matrix: &SymCsr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    assert_eq!(
        x.len(),
        matrix.dim(),
        "x length must match matrix dimension"
    );
    let n = matrix.dim();
    let full = matrix.parts();
    let chunks = row_chunks(n, pool.threads());
    let mut buffers: Vec<Vec<f64>> = vec![vec![0.0; n]; chunks.len()];
    let tasks: Vec<Task> = buffers
        .iter_mut()
        .zip(&chunks)
        .map(|(buf, range)| {
            let range = range.clone();
            let full = &full;
            Box::new(move || {
                for r in range {
                    let mut local = full.diag[r] * x[r];
                    for k in full.row_ptr[r]..full.row_ptr[r + 1] {
                        let c = full.col_idx[k];
                        let v = full.values[k];
                        local += v * x[c];
                        buf[c] += v * x[r];
                    }
                    buf[r] += local;
                }
            }) as Task
        })
        .collect();
    pool.execute(tasks);
    let mut y = vec![0.0; n];
    for buf in buffers {
        for (yi, bi) in y.iter_mut().zip(buf) {
            *yi += bi;
        }
    }
    y
}

/// [`pmv`] over a persistent [`WorkerPool`]: disjoint row slices of `y`
/// written in place, no thread spawns on the call path.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()`.
pub fn pmv_pooled(matrix: &Csr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    assert_eq!(x.len(), matrix.cols(), "x length must match matrix columns");
    let n = matrix.rows();
    let mut y = vec![0.0; n];
    let chunks = row_chunks(n, pool.threads());
    let mut tasks: Vec<Task> = Vec::with_capacity(chunks.len());
    let mut rest: &mut [f64] = &mut y;
    for range in &chunks {
        let (mine, tail) = rest.split_at_mut(range.len());
        rest = tail;
        let range = range.clone();
        tasks.push(Box::new(move || {
            for (slot, r) in mine.iter_mut().zip(range) {
                let mut sum = 0.0;
                for (c, v) in matrix.row(r).pairs() {
                    sum += v * x[c];
                }
                *slot = sum;
            }
        }) as Task);
    }
    pool.execute(tasks);
    y
}

/// Threaded block-row-parallel SMVP over 3×3-block CSR storage: each thread
/// owns a contiguous range of block rows (disjoint `y` slices, no
/// synchronization), and the 3×3 blocks amortize index traffic — the layout
/// the Quake stiffness matrices actually use.
///
/// # Panics
///
/// Panics if `x.len()` does not match the block-row count or `threads == 0`.
pub fn bmv(matrix: &quake_sparse::bcsr::Bcsr3, x: &[Vec3], threads: usize) -> Vec<Vec3> {
    assert_eq!(
        x.len(),
        matrix.block_rows(),
        "x length must match block rows"
    );
    assert!(threads > 0, "need at least one thread");
    let n = matrix.block_rows();
    let mut y = vec![Vec3::ZERO; n];
    let chunks = row_chunks(n, threads);
    let row_ptr = matrix.row_ptr();
    let col_idx = matrix.col_idx();
    let blocks = matrix.blocks();
    std::thread::scope(|scope| {
        let mut rest: &mut [Vec3] = &mut y;
        for range in &chunks {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            scope.spawn(move || {
                for (slot, r) in mine.iter_mut().zip(range) {
                    let mut acc = Vec3::ZERO;
                    for k in row_ptr[r]..row_ptr[r + 1] {
                        acc += blocks[k].mul_vec(x[col_idx[k]]);
                    }
                    *slot = acc;
                }
            });
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_sparse::bcsr::Bcsr3Builder;
    use quake_sparse::coo::Coo;
    use quake_sparse::dense::Mat3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(n: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + rng.gen::<f64>()).unwrap();
        }
        for _ in 0..n * per_row {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let v = rng.gen::<f64>() - 0.5;
                coo.push(a, b, v).unwrap();
                coo.push(b, a, v).unwrap();
            }
        }
        coo.to_csr()
    }

    fn assert_vec_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-10 * (1.0 + x.abs()),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn all_kernels_agree_with_sequential() {
        let full = random_symmetric(500, 6, 1);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f64> = (0..500).map(|_| rng.gen::<f64>() - 0.5).collect();
        let reference = full.spmv_alloc(&x).unwrap();
        assert_vec_close(&smv(&sym, &x), &reference);
        for threads in [1, 2, 4, 7] {
            assert_vec_close(&lmv(&sym, &x, threads), &reference);
            assert_vec_close(&rmv(&sym, &x, threads), &reference);
            assert_vec_close(&pmv(&full, &x, threads), &reference);
        }
    }

    #[test]
    fn more_threads_than_rows_is_safe() {
        let full = random_symmetric(5, 2, 3);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let x = vec![1.0; 5];
        let reference = full.spmv_alloc(&x).unwrap();
        assert_vec_close(&lmv(&sym, &x, 64), &reference);
        assert_vec_close(&rmv(&sym, &x, 64), &reference);
        assert_vec_close(&pmv(&full, &x, 64), &reference);
    }

    #[test]
    fn row_chunks_cover_everything() {
        let chunks = row_chunks(10, 3);
        assert_eq!(chunks.len(), 3);
        let total: usize = chunks.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(chunks[0].start, 0);
        assert_eq!(chunks.last().unwrap().end, 10);
        // Degenerate shapes.
        assert_eq!(row_chunks(0, 4).len(), 1);
        assert_eq!(row_chunks(3, 8).len(), 3);
    }

    #[test]
    fn bmv_matches_sequential_block_product() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 120;
        let mut b = Bcsr3Builder::new(n);
        for i in 0..n {
            b.add_block(i, i, Mat3::identity() * (2.0 + rng.gen::<f64>()));
            for _ in 0..4 {
                let j = rng.gen_range(0..n);
                let m = Mat3::outer(
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                );
                b.add_block(i, j, m);
            }
        }
        let matrix = b.build();
        let x: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>() - 0.5, rng.gen(), rng.gen()))
            .collect();
        let reference = matrix.spmv_alloc(&x).unwrap();
        for threads in [1, 3, 8] {
            let y = bmv(&matrix, &x, threads);
            for (a, b) in reference.iter().zip(&y) {
                assert!(
                    (*a - *b).norm() < 1e-12,
                    "bmv disagrees at {threads} threads"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "block rows")]
    fn bmv_wrong_x_length_panics() {
        let matrix = Bcsr3Builder::new(3).build();
        let _ = bmv(&matrix, &[Vec3::ZERO], 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let full = random_symmetric(4, 1, 4);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let _ = rmv(&sym, &[0.0; 4], 0);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let full = random_symmetric(4, 1, 5);
        let _ = pmv(&full, &[0.0; 3], 2);
    }
}
