//! Spark98-style SMVP kernels.
//!
//! The paper's postscript points to Spark98, "a collection of 10 portable
//! sequential and parallel SMVP kernels". This module rebuilds the
//! shared-memory members of that family over the symmetric stiffness
//! matrices of this reproduction:
//!
//! * [`smv`] — sequential symmetric SMVP (the baseline);
//! * [`lmv`] — threaded, scattered `y` updates guarded by per-entry locks
//!   (Spark98's LMV);
//! * [`rmv`] — threaded, private per-thread `y` buffers combined by a
//!   parallel tree reduction (Spark98's RMV);
//! * [`pmv`] — threaded row-parallel product over the *full* (non-symmetric
//!   storage) matrix: no conflicts, double the memory traffic;
//! * [`bmv`] — threaded block-row-parallel product over 3×3-block CSR,
//!   the layout the Quake stiffness matrices actually use.
//!
//! All kernels compute exactly the same `y = Kx`; the benches compare their
//! throughput, reproducing the classic locks-vs-reduction tradeoff.
//!
//! # Allocation-free hot path
//!
//! Every kernel comes in two forms: an allocating convenience wrapper
//! (`rmv`, …) that returns a fresh `Vec`, and an in-place `_into` variant
//! (`rmv_into`, …) that writes into a caller-owned output and draws its
//! scratch space from a reusable [`KernelWorkspace`]. The `_into` +
//! `*_pooled` combination ([`rmv_pooled_into`], [`pmv_pooled_into`],
//! [`bmv_pooled_into`]) is the executor-grade path: after warmup it
//! performs **zero heap allocations per product** — workspace buffers are
//! zeroed in place, work is dispatched over [`WorkerPool::broadcast`] (one
//! shared closure per batch, nothing boxed), and chunk geometry is computed
//! arithmetically by [`chunk_range`] instead of materializing a chunk list.
//! That matters because the paper's time loop repeats the SMVP 6000 times:
//! any per-call allocation shows up in the measured `T_f` as allocator
//! noise rather than memory-system behaviour.

use crate::pool::{BatchFn, WorkerPool};
use crate::workspace::KernelWorkspace;
use quake_sparse::bcsr::Bcsr3;
use quake_sparse::csr::Csr;
use quake_sparse::dense::{Mat3, Vec3};
use quake_sparse::sym::{SymCsr, SymParts};

/// A raw pointer that may cross thread boundaries.
///
/// Used to hand each worker of a shared [`BatchFn`] closure its own
/// *disjoint* region of one output or scratch buffer without materializing
/// per-worker `&mut` slices (which a shared `Fn` closure cannot hold).
/// Every use site is responsible for disjointness; each documents its
/// argument.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

// SAFETY: the pointer is only dereferenced inside kernel batches whose
// workers write disjoint index ranges, and every batch is a full barrier
// before the underlying buffer is touched again.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}

/// The `k`-th of `parts` near-equal contiguous chunks of `0..n`, computed
/// arithmetically so hot closures can derive their row range without
/// allocating a chunk list. Chunks for `k < parts` cover `0..n` exactly
/// once; when `parts > n` the excess chunks are empty.
pub(crate) fn chunk_range(n: usize, parts: usize, k: usize) -> std::ops::Range<usize> {
    debug_assert!(parts > 0, "chunk_range needs at least one part");
    debug_assert!(k < parts, "chunk index out of range");
    (n * k / parts)..(n * (k + 1) / parts)
}

/// Splits `n` rows into at most `threads` contiguous non-empty chunks of
/// near-equal size. Returns an empty list for `n == 0` (there are no rows
/// to chunk — callers iterate the list, so zero chunks means zero work).
fn row_chunks(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = threads.max(1).min(n);
    (0..parts).map(|k| chunk_range(n, parts, k)).collect()
}

/// Scatters the symmetric contributions of `rows` into `buf`: for each row
/// `r`, `buf[r] += (Kx)[r]`'s upper-triangle terms and `buf[c] += v·x[r]`
/// for every stored `(r, c)` (the transpose term). `buf` must be zeroed
/// beforehand over every column it can touch.
///
/// The inner loop uses unchecked indexing: [`SymCsr`] construction
/// guarantees `row_ptr` is monotone with `row_ptr[dim]` equal to the
/// stored-entry count and every stored column index `< dim`, and callers
/// assert `x.len() == buf.len() == dim`. The allocating PR-1-era kernels
/// kept per-access bounds checks; dropping them on this gather/scatter —
/// the innermost loop of the paper's 6000-step workload — is part of the
/// in-place hot path's measured advantage.
#[inline]
fn scatter_sym_rows(full: &SymParts<'_>, x: &[f64], buf: &mut [f64], rows: std::ops::Range<usize>) {
    debug_assert_eq!(x.len(), buf.len());
    debug_assert_eq!(x.len() + 1, full.row_ptr.len());
    debug_assert!(rows.end <= x.len());
    for r in rows {
        // SAFETY: see above — every index is validated at construction.
        unsafe {
            let xr = *x.get_unchecked(r);
            let mut local = *full.diag.get_unchecked(r) * xr;
            for k in *full.row_ptr.get_unchecked(r)..*full.row_ptr.get_unchecked(r + 1) {
                let c = *full.col_idx.get_unchecked(k);
                let v = *full.values.get_unchecked(k);
                local += v * *x.get_unchecked(c);
                *buf.get_unchecked_mut(c) += v * xr;
            }
            *buf.get_unchecked_mut(r) += local;
        }
    }
}

/// Sequential symmetric SMVP (baseline).
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension.
pub fn smv(matrix: &SymCsr, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; matrix.dim()];
    smv_into(matrix, x, &mut y);
    y
}

/// In-place [`smv`]: writes `y = Kx` into a caller-owned buffer.
///
/// # Panics
///
/// Panics if `x.len()` or `y.len()` does not match the matrix dimension.
pub fn smv_into(matrix: &SymCsr, x: &[f64], y: &mut [f64]) {
    assert_eq!(
        x.len(),
        matrix.dim(),
        "x length must match matrix dimension"
    );
    assert_eq!(
        y.len(),
        matrix.dim(),
        "y length must match matrix dimension"
    );
    matrix.spmv(x, y).expect("dimensions asserted above");
}

/// Threaded symmetric SMVP with per-entry locks on the scattered updates.
///
/// Each thread owns a contiguous row range; the transpose contribution
/// `y[c] += v·x[r]` may target any row, so each `y` entry is a mutex.
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension or
/// `threads == 0`.
pub fn lmv(matrix: &SymCsr, x: &[f64], threads: usize) -> Vec<f64> {
    let mut y = vec![0.0; matrix.dim()];
    let mut ws = KernelWorkspace::new();
    lmv_into(matrix, x, threads, &mut y, &mut ws);
    y
}

/// In-place [`lmv`]: accumulates into lock cells owned by `ws` (zeroed in
/// place, reused across calls), then copies the result into `y`.
///
/// # Panics
///
/// Panics if `x.len()` or `y.len()` does not match the matrix dimension or
/// `threads == 0`.
pub fn lmv_into(
    matrix: &SymCsr,
    x: &[f64],
    threads: usize,
    y: &mut [f64],
    ws: &mut KernelWorkspace,
) {
    assert_eq!(
        x.len(),
        matrix.dim(),
        "x length must match matrix dimension"
    );
    assert_eq!(
        y.len(),
        matrix.dim(),
        "y length must match matrix dimension"
    );
    assert!(threads > 0, "need at least one thread");
    let n = matrix.dim();
    let full = matrix.parts();
    let cells = ws.lock_cells(n);
    let chunks = row_chunks(n, threads);
    std::thread::scope(|scope| {
        let shared: &[parking_lot::Mutex<f64>] = cells;
        for range in &chunks {
            let range = range.clone();
            scope.spawn(move || {
                for r in range {
                    let mut local = full.diag[r] * x[r];
                    for k in full.row_ptr[r]..full.row_ptr[r + 1] {
                        let c = full.col_idx[k];
                        let v = full.values[k];
                        local += v * x[c];
                        *shared[c].lock() += v * x[r];
                    }
                    *shared[r].lock() += local;
                }
            });
        }
    });
    for (yi, cell) in y.iter_mut().zip(cells.iter_mut()) {
        *yi = *cell.get_mut();
    }
}

/// Threaded symmetric SMVP with per-thread private accumulation buffers
/// combined by a parallel tree reduction (Spark98's RMV strategy).
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension or
/// `threads == 0`.
pub fn rmv(matrix: &SymCsr, x: &[f64], threads: usize) -> Vec<f64> {
    let mut y = vec![0.0; matrix.dim()];
    let mut ws = KernelWorkspace::new();
    rmv_into(matrix, x, threads, &mut y, &mut ws);
    y
}

/// In-place [`rmv`]: per-thread reduction buffers live in `ws` (zeroed in
/// place, reused across calls) and are combined by a parallel tree
/// reduction instead of a serial fold.
///
/// # Panics
///
/// Panics if `x.len()` or `y.len()` does not match the matrix dimension or
/// `threads == 0`.
pub fn rmv_into(
    matrix: &SymCsr,
    x: &[f64],
    threads: usize,
    y: &mut [f64],
    ws: &mut KernelWorkspace,
) {
    assert_eq!(
        x.len(),
        matrix.dim(),
        "x length must match matrix dimension"
    );
    assert_eq!(
        y.len(),
        matrix.dim(),
        "y length must match matrix dimension"
    );
    assert!(threads > 0, "need at least one thread");
    let n = matrix.dim();
    let full = matrix.parts();
    let chunks = row_chunks(n, threads);
    let buffers = chunks.len();
    if buffers == 0 {
        return;
    }
    if buffers == 1 {
        // Single reduction buffer: scatter straight into `y` serially — no
        // workspace traffic, no reduction, no thread spawn.
        y.fill(0.0);
        scatter_sym_rows(&full, x, y, 0..n);
        return;
    }
    let flat = ws.reduction_flat(buffers, n);
    let ptr = SendPtr(flat.as_mut_ptr());
    let y_ptr = SendPtr(y.as_mut_ptr());
    std::thread::scope(|scope| {
        for (t, range) in chunks.iter().enumerate() {
            let range = range.clone();
            scope.spawn(move || {
                // SAFETY: buffer `t` is the flat range `[t*n, (t+1)*n)`;
                // each spawned thread takes a distinct `t`, so the slices
                // are disjoint, and the scope joins before `flat` is read.
                let buf = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(t * n), n) };
                buf.fill(0.0);
                scatter_sym_rows(&full, x, buf, range);
            });
        }
    });
    tree_reduce_into(ptr, buffers, n, threads, y_ptr, &|f| {
        std::thread::scope(|scope| {
            for w in 0..threads {
                scope.spawn(move || f(w));
            }
        });
    });
}

/// Parallel tree reduction of `buffers` flat per-thread accumulation
/// buffers (buffer `t` = `flat[t*n..(t+1)*n]`), writing the elementwise
/// total into `y` (which must not alias the workspace).
///
/// Stride-doubling pairwise adds: in the round with stride `s`, buffer
/// `dst + s` is added into buffer `dst` for every `dst ≡ 0 (mod 2s)`.
/// Distinct pairs touch disjoint buffers, and each pair's element range is
/// further chunked across `workers / npairs` workers, so every round is
/// embarrassingly parallel; `log2(buffers)` rounds replace the old serial
/// fold's `buffers · n` sequential adds. The final round always has a
/// single pair `(0, s)` and stores its sums directly into `y`, fusing the
/// copy-out that would otherwise cost one more barrier; with a single
/// buffer the only round is a parallel copy.
///
/// `run` executes one round: it must call the given closure once per worker
/// index in `0..workers` and act as a full barrier (the pool's `broadcast`
/// or a spawn scope both qualify).
fn tree_reduce_into(
    flat: SendPtr<f64>,
    buffers: usize,
    n: usize,
    workers: usize,
    y: SendPtr<f64>,
    run: &dyn Fn(&BatchFn<'_>),
) {
    if buffers == 1 {
        run(&move |w: usize| {
            // SAFETY: workers copy disjoint element chunks, and `y` never
            // aliases the workspace.
            unsafe {
                let s = flat.get();
                let d = y.get();
                for i in chunk_range(n, workers, w) {
                    *d.add(i) = *s.add(i);
                }
            }
        });
        return;
    }
    let mut stride = 1;
    while stride < buffers {
        // Pairs (dst, dst+stride) with dst ≡ 0 (mod 2·stride) and
        // dst + stride < buffers; `stride < buffers` makes this ≥ 1.
        let npairs = (buffers - stride - 1) / (2 * stride) + 1;
        debug_assert!(
            npairs <= workers,
            "pairs outnumber workers (buffers > workers?)"
        );
        // Once `2s ≥ buffers` only the pair `(0, s)` remains: that round
        // produces the final totals, so route them straight into `y`.
        let last = 2 * stride >= buffers;
        debug_assert!(!last || npairs == 1);
        let chunks_per_pair = (workers / npairs).max(1);
        run(&move |w: usize| {
            let pair = w / chunks_per_pair;
            if pair >= npairs {
                return;
            }
            let dst = pair * 2 * stride;
            let src = dst + stride;
            let chunk = chunk_range(n, chunks_per_pair, w % chunks_per_pair);
            // SAFETY: distinct pairs read/write disjoint buffers (dst is a
            // multiple of 2·stride, src ≡ stride mod 2·stride), distinct
            // workers of one pair write disjoint element chunks, and `run`
            // is a barrier between rounds.
            unsafe {
                let d = flat.get().add(dst * n);
                let s = flat.get().add(src * n);
                if last {
                    let out = y.get();
                    for i in chunk {
                        *out.add(i) = *d.add(i) + *s.add(i);
                    }
                } else {
                    for i in chunk {
                        *d.add(i) += *s.add(i);
                    }
                }
            }
        });
        stride *= 2;
    }
}

/// Threaded row-parallel SMVP over full CSR storage: each thread writes a
/// disjoint slice of `y`, so no synchronization is needed, at the cost of
/// storing (and streaming) both triangles.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `threads == 0`.
pub fn pmv(matrix: &Csr, x: &[f64], threads: usize) -> Vec<f64> {
    let mut y = vec![0.0; matrix.rows()];
    pmv_into(matrix, x, threads, &mut y);
    y
}

/// In-place [`pmv`]: writes disjoint row slices of the caller-owned `y`.
/// Needs no workspace — row-parallel full storage has no write conflicts.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()`, `y.len() != matrix.rows()`, or
/// `threads == 0`.
pub fn pmv_into(matrix: &Csr, x: &[f64], threads: usize, y: &mut [f64]) {
    assert_eq!(x.len(), matrix.cols(), "x length must match matrix columns");
    assert_eq!(y.len(), matrix.rows(), "y length must match matrix rows");
    assert!(threads > 0, "need at least one thread");
    let n = matrix.rows();
    let chunks = row_chunks(n, threads);
    std::thread::scope(|scope| {
        let mut rest: &mut [f64] = y;
        for range in &chunks {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            scope.spawn(move || {
                for (slot, r) in mine.iter_mut().zip(range) {
                    let mut sum = 0.0;
                    for (c, v) in matrix.row(r).pairs() {
                        sum += v * x[c];
                    }
                    *slot = sum;
                }
            });
        }
    });
}

/// [`rmv`] over a persistent [`WorkerPool`]: per-worker private buffers
/// combined by a pooled tree reduction, no thread spawns on the call path.
///
/// # Panics
///
/// Panics if `x.len()` does not match the matrix dimension.
pub fn rmv_pooled(matrix: &SymCsr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    let mut y = vec![0.0; matrix.dim()];
    let mut ws = KernelWorkspace::new();
    rmv_pooled_into(matrix, x, pool, &mut y, &mut ws);
    y
}

/// In-place [`rmv_pooled`] — the executor-grade symmetric path. After
/// warmup this performs zero heap allocations per call: the scatter and
/// the tree reduction (whose last round writes `y` directly) run as
/// [`WorkerPool::broadcast`] batches over workspace buffers that are
/// zeroed in place.
///
/// # Panics
///
/// Panics if `x.len()` or `y.len()` does not match the matrix dimension.
pub fn rmv_pooled_into(
    matrix: &SymCsr,
    x: &[f64],
    pool: &WorkerPool,
    y: &mut [f64],
    ws: &mut KernelWorkspace,
) {
    assert_eq!(
        x.len(),
        matrix.dim(),
        "x length must match matrix dimension"
    );
    assert_eq!(
        y.len(),
        matrix.dim(),
        "y length must match matrix dimension"
    );
    let n = matrix.dim();
    if n == 0 {
        return;
    }
    let threads = pool.threads();
    let buffers = threads.min(n);
    let full = matrix.parts();
    let y_ptr = SendPtr(y.as_mut_ptr());
    if buffers == 1 {
        // Single reduction buffer: scatter straight into `y` in one batch —
        // no workspace traffic, no reduction round.
        pool.broadcast(&move |w| {
            if w != 0 {
                return;
            }
            // SAFETY: only worker 0 touches `y`, and the broadcast barrier
            // orders its writes before the caller reads `y`.
            let yb = unsafe { std::slice::from_raw_parts_mut(y_ptr.get(), n) };
            yb.fill(0.0);
            scatter_sym_rows(&full, x, yb, 0..n);
        });
        return;
    }
    let flat = ws.reduction_flat(buffers, n);
    let ptr = SendPtr(flat.as_mut_ptr());
    pool.broadcast(&move |w| {
        if w >= buffers {
            return;
        }
        // SAFETY: worker `w < buffers` exclusively owns the flat range
        // `[w*n, (w+1)*n)`; the broadcast barrier orders these writes
        // before the reduction below.
        let buf = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(w * n), n) };
        buf.fill(0.0);
        scatter_sym_rows(&full, x, buf, chunk_range(n, buffers, w));
    });
    tree_reduce_into(ptr, buffers, n, threads, y_ptr, &|f| pool.broadcast(f));
}

/// [`pmv`] over a persistent [`WorkerPool`]: disjoint row slices of `y`
/// written in place, no thread spawns on the call path.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()`.
pub fn pmv_pooled(matrix: &Csr, x: &[f64], pool: &WorkerPool) -> Vec<f64> {
    let mut y = vec![0.0; matrix.rows()];
    pmv_pooled_into(matrix, x, pool, &mut y);
    y
}

/// In-place [`pmv_pooled`]: one broadcast batch, zero heap allocations per
/// call after pool warmup.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `y.len() != matrix.rows()`.
pub fn pmv_pooled_into(matrix: &Csr, x: &[f64], pool: &WorkerPool, y: &mut [f64]) {
    assert_eq!(x.len(), matrix.cols(), "x length must match matrix columns");
    assert_eq!(y.len(), matrix.rows(), "y length must match matrix rows");
    let n = matrix.rows();
    let threads = pool.threads();
    // Hoisted raw CSR parts: resolving `matrix.row(r)` inside the hot loop
    // costs two bounds-checked slice constructions per row, which is what
    // made this path lose to the boxed-task baseline in BENCH_smvp.
    let row_ptr = matrix.row_ptr();
    let col_idx = matrix.col_idx();
    let values = matrix.values();
    let y_ptr = SendPtr(y.as_mut_ptr());
    pool.broadcast(&move |w| {
        // SAFETY: chunk_range partitions 0..n, so workers write disjoint
        // elements of `y`; the broadcast barrier ends the writes before
        // the caller's `&mut y` is used again. Unchecked indexing relies on
        // `Csr`'s construction invariants: `row_ptr` is monotone with
        // `row_ptr[n] == nnz`, and every `col_idx` is `< cols == x.len()`
        // (asserted above).
        for r in chunk_range(n, threads, w) {
            unsafe {
                let start = *row_ptr.get_unchecked(r);
                let end = *row_ptr.get_unchecked(r + 1);
                let mut sum = 0.0;
                for k in start..end {
                    sum += values.get_unchecked(k) * x.get_unchecked(*col_idx.get_unchecked(k));
                }
                *y_ptr.get().add(r) = sum;
            }
        }
    });
}

/// Threaded block-row-parallel SMVP over 3×3-block CSR storage: each thread
/// owns a contiguous range of block rows (disjoint `y` slices, no
/// synchronization), and the 3×3 blocks amortize index traffic — the layout
/// the Quake stiffness matrices actually use.
///
/// # Panics
///
/// Panics if `x.len()` does not match the block-row count or `threads == 0`.
pub fn bmv(matrix: &Bcsr3, x: &[Vec3], threads: usize) -> Vec<Vec3> {
    let mut y = vec![Vec3::ZERO; matrix.block_rows()];
    bmv_into(matrix, x, threads, &mut y);
    y
}

/// In-place [`bmv`]: writes disjoint block-row slices of the caller-owned
/// `y`. Needs no workspace.
///
/// # Panics
///
/// Panics if `x.len()` or `y.len()` does not match the block-row count or
/// `threads == 0`.
pub fn bmv_into(matrix: &Bcsr3, x: &[Vec3], threads: usize, y: &mut [Vec3]) {
    assert_eq!(
        x.len(),
        matrix.block_rows(),
        "x length must match block rows"
    );
    assert_eq!(
        y.len(),
        matrix.block_rows(),
        "y length must match block rows"
    );
    assert!(threads > 0, "need at least one thread");
    let n = matrix.block_rows();
    let chunks = row_chunks(n, threads);
    let row_ptr = matrix.row_ptr();
    let col_idx = matrix.col_idx();
    let blocks = matrix.blocks();
    std::thread::scope(|scope| {
        let mut rest: &mut [Vec3] = y;
        for range in &chunks {
            let (mine, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let range = range.clone();
            scope.spawn(move || {
                for (slot, r) in mine.iter_mut().zip(range) {
                    let mut acc = Vec3::ZERO;
                    for k in row_ptr[r]..row_ptr[r + 1] {
                        acc += blocks[k].mul_vec(x[col_idx[k]]);
                    }
                    *slot = acc;
                }
            });
        }
    });
}

/// [`bmv`] over a persistent [`WorkerPool`] — the executor-grade path for
/// the BCSR layout the Quake matrices actually use.
///
/// # Panics
///
/// Panics if `x.len()` does not match the block-row count.
pub fn bmv_pooled(matrix: &Bcsr3, x: &[Vec3], pool: &WorkerPool) -> Vec<Vec3> {
    let mut y = vec![Vec3::ZERO; matrix.block_rows()];
    bmv_pooled_into(matrix, x, pool, &mut y);
    y
}

/// In-place [`bmv_pooled`]: one broadcast batch, zero heap allocations per
/// call after pool warmup.
///
/// # Panics
///
/// Panics if `x.len()` or `y.len()` does not match the block-row count.
pub fn bmv_pooled_into(matrix: &Bcsr3, x: &[Vec3], pool: &WorkerPool, y: &mut [Vec3]) {
    assert_eq!(
        x.len(),
        matrix.block_rows(),
        "x length must match block rows"
    );
    assert_eq!(
        y.len(),
        matrix.block_rows(),
        "y length must match block rows"
    );
    let n = matrix.block_rows();
    let threads = pool.threads();
    let y_ptr = SendPtr(y.as_mut_ptr());
    pool.broadcast(&move |w| {
        let range = chunk_range(n, threads, w);
        // SAFETY: chunk_range partitions 0..n, so workers write disjoint
        // block rows of `y`; the broadcast barrier ends the writes before
        // the caller's `&mut y` is used again.
        let out =
            unsafe { std::slice::from_raw_parts_mut(y_ptr.get().add(range.start), range.len()) };
        bmv_range_into(matrix, x, range, out);
    });
}

/// SMVP over the contiguous block-row range `rows`, through the
/// register-blocked 3×3 microkernel. `out` holds exactly one [`Vec3`] per
/// row of the range (`out[i - rows.start]` is row `i`'s result); `x` spans
/// the full matrix. This is the shared inner kernel of [`bmv_pooled_into`]
/// and the latency-hiding executor, which multiplies a PE's boundary and
/// interior rows as two separate ranges.
///
/// The microkernel walks each row's blocks as one sequential stream over
/// the flat `[f64; 9]` tile of each [`Mat3`] ([`Mat3::as_flat`]) with
/// three independent accumulator lanes held in registers — enough ILP to
/// keep the FMA ports busy without breaking the streaming access pattern
/// (a two-row lockstep variant measured ~10% slower on meshes that spill
/// the last-level cache, because it interleaves two block streams). Each
/// row's accumulation order is identical to [`Bcsr3::spmv`], so the
/// result is **bitwise**-equal to the scalar path (the overlapped
/// executor's equality proof depends on this).
///
/// # Panics
///
/// Panics if `rows` extends past the block-row count, `x.len()` does not
/// match the block-row count, or `out.len() != rows.len()`.
pub fn bmv_range_into(matrix: &Bcsr3, x: &[Vec3], rows: std::ops::Range<usize>, out: &mut [Vec3]) {
    let n = matrix.block_rows();
    assert!(
        rows.start <= rows.end && rows.end <= n,
        "row range {rows:?} out of bounds for {n} block rows"
    );
    assert_eq!(x.len(), n, "x length must match block rows");
    assert_eq!(out.len(), rows.len(), "out length must match the row range");
    let row_ptr = matrix.row_ptr();
    let col_idx = matrix.col_idx();
    let blocks = matrix.blocks();
    // SAFETY (whole loop): Bcsr3 construction guarantees `row_ptr` is
    // monotone with `row_ptr[n] == block_nnz` and every `col_idx[k] < n ==
    // x.len()` (asserted above); `r` stays inside `rows`, which the entry
    // assertions bound by `n` and `out.len()`.
    for r in rows.clone() {
        unsafe {
            let mut acc = [0.0f64; 3];
            for k in *row_ptr.get_unchecked(r)..*row_ptr.get_unchecked(r + 1) {
                micro_3x3(blocks, col_idx, x, k, &mut acc);
            }
            *out.get_unchecked_mut(r - rows.start) = Vec3::new(acc[0], acc[1], acc[2]);
        }
    }
}

/// One 3×3 block × vector multiply-accumulate over the flat 9-tile.
///
/// Each lane computes `acc += (t·vx + t·vy) + t·vz` with exactly the
/// association of [`Mat3::mul_vec`](quake_sparse::dense::Mat3::mul_vec)
/// followed by `+=` — re-associating (e.g. per-term accumulators) would
/// break the bitwise contract with [`Bcsr3::spmv`].
///
/// # Safety
///
/// `k` must index `blocks` and `col_idx`, and `col_idx[k]` must index `x` —
/// guaranteed by `Bcsr3`'s construction invariants when `k` lies between
/// valid `row_ptr` entries.
#[inline(always)]
unsafe fn micro_3x3(blocks: &[Mat3], col_idx: &[usize], x: &[Vec3], k: usize, acc: &mut [f64; 3]) {
    let t = blocks.get_unchecked(k).as_flat();
    let v = *x.get_unchecked(*col_idx.get_unchecked(k));
    acc[0] += t[0] * v.x + t[1] * v.y + t[2] * v.z;
    acc[1] += t[3] * v.x + t[4] * v.y + t[5] * v.z;
    acc[2] += t[6] * v.x + t[7] * v.y + t[8] * v.z;
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_sparse::bcsr::Bcsr3Builder;
    use quake_sparse::coo::Coo;
    use quake_sparse::dense::Mat3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(n: usize, per_row: usize, seed: u64) -> Csr {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + rng.gen::<f64>()).unwrap();
        }
        for _ in 0..n * per_row {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let v = rng.gen::<f64>() - 0.5;
                coo.push(a, b, v).unwrap();
                coo.push(b, a, v).unwrap();
            }
        }
        coo.to_csr()
    }

    fn assert_vec_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-10 * (1.0 + x.abs()),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn all_kernels_agree_with_sequential() {
        let full = random_symmetric(500, 6, 1);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<f64> = (0..500).map(|_| rng.gen::<f64>() - 0.5).collect();
        let reference = full.spmv_alloc(&x).unwrap();
        assert_vec_close(&smv(&sym, &x), &reference);
        for threads in [1, 2, 4, 7] {
            assert_vec_close(&lmv(&sym, &x, threads), &reference);
            assert_vec_close(&rmv(&sym, &x, threads), &reference);
            assert_vec_close(&pmv(&full, &x, threads), &reference);
        }
    }

    #[test]
    fn more_threads_than_rows_is_safe() {
        let full = random_symmetric(5, 2, 3);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let x = vec![1.0; 5];
        let reference = full.spmv_alloc(&x).unwrap();
        assert_vec_close(&lmv(&sym, &x, 64), &reference);
        assert_vec_close(&rmv(&sym, &x, 64), &reference);
        assert_vec_close(&pmv(&full, &x, 64), &reference);
    }

    #[test]
    fn row_chunks_cover_everything() {
        let chunks = row_chunks(10, 3);
        assert_eq!(chunks.len(), 3);
        let total: usize = chunks.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(chunks[0].start, 0);
        assert_eq!(chunks.last().unwrap().end, 10);
        // Degenerate shapes: no rows means no chunks (not one empty chunk),
        // and chunks are never empty when rows exist.
        assert!(row_chunks(0, 4).is_empty());
        assert_eq!(row_chunks(3, 8).len(), 3);
        assert!(row_chunks(3, 8).iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn chunk_range_partitions_rows() {
        for (n, parts) in [(10, 3), (3, 8), (0, 4), (16, 16), (7, 1)] {
            let mut covered = Vec::new();
            for k in 0..parts {
                covered.extend(chunk_range(n, parts, k));
            }
            assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
        }
    }

    #[test]
    fn empty_matrix_is_safe_for_all_kernels() {
        let full = Coo::new(0, 0).to_csr();
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let pool = WorkerPool::new(3);
        let mut ws = KernelWorkspace::new();
        assert!(smv(&sym, &[]).is_empty());
        assert!(lmv(&sym, &[], 4).is_empty());
        assert!(rmv(&sym, &[], 4).is_empty());
        assert!(pmv(&full, &[], 4).is_empty());
        assert!(rmv_pooled(&sym, &[], &pool).is_empty());
        assert!(pmv_pooled(&full, &[], &pool).is_empty());
        rmv_pooled_into(&sym, &[], &pool, &mut [], &mut ws);
    }

    #[test]
    fn pooled_kernels_agree_with_sequential() {
        let full = random_symmetric(300, 5, 11);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let x: Vec<f64> = (0..300).map(|_| rng.gen::<f64>() - 0.5).collect();
        let reference = full.spmv_alloc(&x).unwrap();
        for threads in [1, 2, 5] {
            let pool = WorkerPool::new(threads);
            assert_vec_close(&rmv_pooled(&sym, &x, &pool), &reference);
            assert_vec_close(&pmv_pooled(&full, &x, &pool), &reference);
        }
    }

    #[test]
    fn tree_reduce_sums_every_buffer_count() {
        // Exercise odd, even, power-of-two, and singleton buffer counts.
        for buffers in 1..=9usize {
            let n = 13;
            let mut flat: Vec<f64> = (0..buffers * n).map(|i| i as f64).collect();
            let expected: Vec<f64> = (0..n)
                .map(|i| (0..buffers).map(|t| (t * n + i) as f64).sum())
                .collect();
            let workers = 4;
            let mut y = vec![f64::NAN; n];
            let ptr = SendPtr(flat.as_mut_ptr());
            let y_ptr = SendPtr(y.as_mut_ptr());
            tree_reduce_into(ptr, buffers, n, workers, y_ptr, &|f| {
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        scope.spawn(move || f(w));
                    }
                });
            });
            assert_eq!(&y[..], &expected[..], "buffers={buffers}");
        }
    }

    #[test]
    fn bmv_matches_sequential_block_product() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 120;
        let mut b = Bcsr3Builder::new(n);
        for i in 0..n {
            b.add_block(i, i, Mat3::identity() * (2.0 + rng.gen::<f64>()));
            for _ in 0..4 {
                let j = rng.gen_range(0..n);
                let m = Mat3::outer(
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                );
                b.add_block(i, j, m);
            }
        }
        let matrix = b.build();
        let x: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>() - 0.5, rng.gen(), rng.gen()))
            .collect();
        let reference = matrix.spmv_alloc(&x).unwrap();
        for threads in [1, 3, 8] {
            let y = bmv(&matrix, &x, threads);
            for (a, b) in reference.iter().zip(&y) {
                assert!(
                    (*a - *b).norm() < 1e-12,
                    "bmv disagrees at {threads} threads"
                );
            }
        }
        for threads in [1, 3, 8] {
            let pool = WorkerPool::new(threads);
            let y = bmv_pooled(&matrix, &x, &pool);
            for (a, b) in reference.iter().zip(&y) {
                assert!(
                    (*a - *b).norm() < 1e-12,
                    "bmv_pooled disagrees at {threads} threads"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "block rows")]
    fn bmv_wrong_x_length_panics() {
        let matrix = Bcsr3Builder::new(3).build();
        let _ = bmv(&matrix, &[Vec3::ZERO], 2);
    }

    fn random_bcsr(n: usize, seed: u64) -> (Bcsr3, Vec<Vec3>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Bcsr3Builder::new(n);
        for i in 0..n {
            b.add_block(i, i, Mat3::identity() * (2.0 + rng.gen::<f64>()));
            for _ in 0..rng.gen_range(0..5) {
                let j = rng.gen_range(0..n);
                let m = Mat3::outer(
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                    Vec3::new(rng.gen(), rng.gen(), rng.gen()),
                );
                b.add_block(i, j, m);
            }
        }
        let matrix = b.build();
        let x: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>() - 0.5, rng.gen(), rng.gen()))
            .collect();
        (matrix, x)
    }

    fn assert_vec3_bits_eq(a: &[Vec3], b: &[Vec3], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (p, q)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()],
                [q.x.to_bits(), q.y.to_bits(), q.z.to_bits()],
                "{what}: row {i} differs bitwise"
            );
        }
    }

    #[test]
    fn bmv_range_full_range_is_bitwise_equal_to_spmv() {
        let (matrix, x) = random_bcsr(97, 21);
        let reference = matrix.spmv_alloc(&x).unwrap();
        let mut out = vec![Vec3::ZERO; 97];
        bmv_range_into(&matrix, &x, 0..97, &mut out);
        assert_vec3_bits_eq(&reference, &out, "full range");
    }

    #[test]
    fn bmv_range_empty_range_is_a_noop() {
        let (matrix, x) = random_bcsr(16, 22);
        let mut out: Vec<Vec3> = Vec::new();
        bmv_range_into(&matrix, &x, 7..7, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn bmv_range_single_row_matches_that_row_only() {
        let (matrix, x) = random_bcsr(33, 23);
        let reference = matrix.spmv_alloc(&x).unwrap();
        for r in [0usize, 16, 32] {
            let mut out = vec![Vec3::new(f64::NAN, f64::NAN, f64::NAN); 1];
            bmv_range_into(&matrix, &x, r..r + 1, &mut out);
            assert_vec3_bits_eq(&reference[r..r + 1], &out, "single row");
        }
    }

    #[test]
    fn bmv_range_arbitrary_splits_tile_the_product_bitwise() {
        let (matrix, x) = random_bcsr(61, 24);
        let reference = matrix.spmv_alloc(&x).unwrap();
        for cuts in [vec![0, 61], vec![0, 1, 61], vec![0, 13, 14, 40, 61]] {
            let mut out = vec![Vec3::ZERO; 61];
            for w in cuts.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                bmv_range_into(&matrix, &x, lo..hi, &mut out[lo..hi]);
            }
            assert_vec3_bits_eq(&reference, &out, "tiled ranges");
        }
    }

    #[test]
    fn bmv_pooled_into_is_bitwise_equal_to_spmv() {
        let (matrix, x) = random_bcsr(120, 25);
        let reference = matrix.spmv_alloc(&x).unwrap();
        for threads in [1, 3, 8] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![Vec3::ZERO; 120];
            bmv_pooled_into(&matrix, &x, &pool, &mut out);
            assert_vec3_bits_eq(&reference, &out, "bmv_pooled_into");
        }
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn bmv_range_rejects_out_of_bounds_rows() {
        let (matrix, x) = random_bcsr(8, 26);
        let mut out = vec![Vec3::ZERO; 2];
        bmv_range_into(&matrix, &x, 7..9, &mut out);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let full = random_symmetric(4, 1, 4);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let _ = rmv(&sym, &[0.0; 4], 0);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let full = random_symmetric(4, 1, 5);
        let _ = pmv(&full, &[0.0; 3], 2);
    }

    #[test]
    #[should_panic(expected = "y length")]
    fn wrong_y_length_panics() {
        let full = random_symmetric(4, 1, 6);
        let sym = SymCsr::from_csr(&full, 1e-12).unwrap();
        let mut y = vec![0.0; 3];
        smv_into(&sym, &[0.0; 4], &mut y);
    }
}
