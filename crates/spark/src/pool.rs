//! A persistent worker pool for bulk-synchronous kernels.
//!
//! The spawn-per-call kernels in [`crate::kernels`] pay thread creation and
//! teardown on every SMVP — acceptable for one product, ruinous for the
//! paper's 6000-step time loop where the same parallel shape repeats every
//! step. [`WorkerPool`] keeps a fixed set of OS threads alive, each with
//! its **own** command queue (no shared `Mutex<Receiver>` on the dispatch
//! path), and offers two ways to feed them:
//!
//! * [`WorkerPool::execute`] — a batch of boxed closures, round-robined
//!   across the per-worker queues. Flexible (any number of tasks) but pays
//!   one `Box` per task. Full barrier.
//! * [`WorkerPool::broadcast`] — the steady-state fast path: one *shared*
//!   closure invoked once per worker with that worker's index. Nothing is
//!   boxed and nothing is allocated per call (the per-worker queues and the
//!   completion latch are reused), so a 6000-step time loop can dispatch
//!   6000 × phases batches without touching the allocator. Full barrier.
//!
//! # Safety model
//!
//! Tasks may borrow from the caller's stack (`'scope` lifetime). The pool
//! erases that lifetime to move tasks onto long-lived worker threads, which
//! is sound because `execute`/`broadcast` block on a completion latch until
//! every task in the batch has finished (or panicked) — no task can outlive
//! the borrowed data. Worker panics are caught, counted, and re-raised on
//! the calling thread after the batch drains.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A borrowed task: runs once on some worker thread.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// A shared batch closure, called once per worker with the worker index.
pub type BatchFn<'scope> = dyn Fn(usize) + Sync + 'scope;

/// Completion latch for one `execute`/`broadcast` batch.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    /// First panic payload observed in the batch, re-raised by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Re-arms a drained latch for the next batch (the zero-allocation
    /// `broadcast` path reuses one latch for the pool's whole lifetime).
    fn reset(&self, count: usize) {
        let mut state = self.state.lock().expect("latch lock");
        debug_assert_eq!(state.remaining, 0, "latch reset while a batch is live");
        state.remaining = count;
        state.panic = None;
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut state = self.state.lock().expect("latch lock");
        while state.remaining > 0 {
            state = self.cv.wait(state).expect("latch wait");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
    }
}

/// One queued command for a specific worker.
enum Cmd {
    /// A boxed task from `execute`.
    Task(StaticTask, Arc<Latch>),
    /// A lifetime-erased shared closure from `broadcast`; the worker calls
    /// it with its own index.
    Batch(&'static BatchFn<'static>, Arc<Latch>),
}

struct QueueState {
    cmds: VecDeque<Cmd>,
    shutdown: bool,
}

/// A single worker's private command queue.
struct WorkerQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl WorkerQueue {
    fn new() -> Self {
        WorkerQueue {
            state: Mutex::new(QueueState {
                cmds: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, cmd: Cmd) {
        let mut state = self.state.lock().expect("queue lock");
        state.cmds.push_back(cmd);
        self.cv.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.shutdown = true;
        self.cv.notify_all();
    }

    /// Blocks for the next command; `None` once the queue is closed *and*
    /// drained (so no queued work is ever abandoned on shutdown).
    fn pop(&self) -> Option<Cmd> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(cmd) = state.cmds.pop_front() {
                return Some(cmd);
            }
            if state.shutdown {
                return None;
            }
            state = self.cv.wait(state).expect("queue wait");
        }
    }
}

/// A fixed-size pool of persistent worker threads executing borrowed task
/// batches with barrier semantics.
pub struct WorkerPool {
    queues: Arc<Vec<WorkerQueue>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Reusable latch for `broadcast` batches (serialized by `submit`).
    batch_latch: Arc<Latch>,
    /// Serializes `broadcast` callers so the reusable latch is never shared
    /// between two live batches.
    submit: Mutex<()>,
    /// Round-robin start offset so small `execute` batches spread across
    /// workers instead of piling onto worker 0.
    next_worker: Mutex<usize>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let queues: Arc<Vec<WorkerQueue>> =
            Arc::new((0..threads).map(|_| WorkerQueue::new()).collect());
        let workers = (0..threads)
            .map(|i| {
                let queues = Arc::clone(&queues);
                std::thread::Builder::new()
                    .name(format!("smvp-worker-{i}"))
                    .spawn(move || worker_loop(&queues[i], i))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            queues,
            workers,
            threads,
            batch_latch: Arc::new(Latch::new(0)),
            submit: Mutex::new(()),
            next_worker: Mutex::new(0),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task in `tasks` on the pool and returns once all have
    /// completed — a full barrier. Tasks are distributed round-robin over
    /// the per-worker queues. If any task panicked, the first payload is
    /// re-raised here after the whole batch has drained (so borrowed data
    /// is never abandoned mid-use).
    pub fn execute<'scope>(&self, tasks: Vec<Task<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let start = {
            let mut next = self.next_worker.lock().expect("next_worker lock");
            let s = *next;
            *next = (s + tasks.len()) % self.threads;
            s
        };
        for (k, task) in tasks.into_iter().enumerate() {
            // SAFETY: `wait` below blocks until every task has run to
            // completion (the latch is decremented after the task body
            // returns or panics), so no `'scope` borrow escapes this call.
            let task: StaticTask = unsafe { std::mem::transmute::<Task<'scope>, StaticTask>(task) };
            self.queues[(start + k) % self.threads].push(Cmd::Task(task, Arc::clone(&latch)));
        }
        latch.wait();
    }

    /// The steady-state fast path: runs `f(w)` once on every worker
    /// `w ∈ 0..threads()` and returns once all calls have completed — a
    /// full barrier with the same panic semantics as [`WorkerPool::execute`].
    ///
    /// Nothing is boxed and nothing is heap-allocated on this path: the
    /// closure is passed by reference, the per-worker queues reuse their
    /// capacity, and the completion latch is owned by the pool. Concurrent
    /// `broadcast` calls are serialized internally (each is a barrier
    /// anyway).
    ///
    /// `f` is shared by all workers, so per-worker mutable state must be
    /// reached through the worker index (disjoint slices, per-worker
    /// buffers), not through `&mut` captures.
    pub fn broadcast(&self, f: &BatchFn<'_>) {
        // A previous broadcast may have poisoned the guard by re-raising a
        // worker panic while holding it; the guard carries no data, so
        // poisoning is harmless — recover and keep serializing.
        let _guard = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.batch_latch.reset(self.threads);
        // SAFETY: the latch `wait` below blocks until every worker has
        // finished its `f(w)` call (or panicked), so the erased `'scope`
        // borrow never outlives this stack frame.
        let f: &'static BatchFn<'static> =
            unsafe { std::mem::transmute::<&BatchFn<'_>, &'static BatchFn<'static>>(f) };
        for queue in self.queues.iter() {
            queue.push(Cmd::Batch(f, Arc::clone(&self.batch_latch)));
        }
        self.batch_latch.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for queue in self.queues.iter() {
            queue.close();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &WorkerQueue, index: usize) {
    while let Some(cmd) = queue.pop() {
        match cmd {
            Cmd::Task(task, latch) => {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                latch.complete(outcome.err());
            }
            Cmd::Batch(f, latch) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(index)));
                latch.complete(outcome.err());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Task> = (0..100)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Task
            })
            .collect();
        pool.execute(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_may_borrow_stack_data() {
        let pool = WorkerPool::new(3);
        let input = vec![1u64, 2, 3, 4, 5, 6];
        let mut outputs = vec![0u64; 6];
        let tasks: Vec<Task> = outputs
            .iter_mut()
            .zip(&input)
            .map(|(out, &v)| {
                Box::new(move || {
                    *out = v * v;
                }) as Task
            })
            .collect();
        pool.execute(tasks);
        assert_eq!(outputs, vec![1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn execute_is_a_barrier_across_batches() {
        // A second batch must observe every write of the first.
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 64];
        let tasks: Vec<Task> = data
            .iter_mut()
            .map(|slot| Box::new(move || *slot = 7) as Task)
            .collect();
        pool.execute(tasks);
        let sum = Mutex::new(0u64);
        let data_ref = &data;
        let sum_ref = &sum;
        pool.execute(vec![Box::new(move || {
            *sum_ref.lock().unwrap() = data_ref.iter().sum();
        }) as Task]);
        assert_eq!(sum.into_inner().unwrap(), 7 * 64);
    }

    #[test]
    fn pool_outlives_many_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Task> = (0..8)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Task
                })
                .collect();
            pool.execute(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 8, "round {round}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.execute(Vec::new());
    }

    #[test]
    fn worker_panic_propagates_after_batch_drains() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut tasks: Vec<Task> = vec![Box::new(|| panic!("task failed"))];
            for _ in 0..10 {
                tasks.push(Box::new(|| {
                    completed.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.execute(tasks);
        }));
        assert!(result.is_err(), "panic must reach the caller");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            10,
            "non-panicking tasks still complete before the panic is re-raised"
        );
        // The pool remains usable after a panicked batch.
        let counter = AtomicUsize::new(0);
        pool.execute(vec![Box::new(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        }) as Task]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn broadcast_runs_once_per_worker_with_distinct_indices() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(&|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "worker {w}");
        }
    }

    #[test]
    fn broadcast_is_a_barrier_and_reusable() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for round in 1..=50 {
            pool.broadcast(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 3 * round, "round {round}");
        }
    }

    #[test]
    fn broadcast_may_borrow_stack_data() {
        let pool = WorkerPool::new(4);
        let input = [10u64, 20, 30, 40];
        let squares: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(&|w| {
            squares[w].store((input[w] * input[w]) as usize, Ordering::Relaxed);
        });
        let got: Vec<usize> = squares.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![100, 400, 900, 1600]);
    }

    #[test]
    fn broadcast_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 0 {
                    panic!("worker 0 failed");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
        let counter = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn execute_and_broadcast_interleave() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.execute(vec![Box::new(|| {
            counter.fetch_add(10, Ordering::Relaxed);
        }) as Task]);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0);
    }
}
