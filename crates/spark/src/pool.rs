//! A persistent worker pool for bulk-synchronous kernels.
//!
//! The spawn-per-call kernels in [`crate::kernels`] pay thread creation and
//! teardown on every SMVP — acceptable for one product, ruinous for the
//! paper's 6000-step time loop where the same parallel shape repeats every
//! step. [`WorkerPool`] keeps a fixed set of OS threads alive, each with
//! its **own** command queue (no shared `Mutex<Receiver>` on the dispatch
//! path), and offers two ways to feed them:
//!
//! * [`WorkerPool::execute`] — a batch of boxed closures, round-robined
//!   across the per-worker queues. Flexible (any number of tasks) but pays
//!   one `Box` per task. Full barrier.
//! * [`WorkerPool::broadcast`] — the steady-state fast path: one *shared*
//!   closure invoked once per worker with that worker's index. Nothing is
//!   boxed and nothing is allocated per call (the per-worker queues and the
//!   completion latch are reused), so a 6000-step time loop can dispatch
//!   6000 × phases batches without touching the allocator. Full barrier.
//!
//! # Safety model
//!
//! Tasks may borrow from the caller's stack (`'scope` lifetime). The pool
//! erases that lifetime to move tasks onto long-lived worker threads, which
//! is sound because `execute`/`broadcast` block on a completion latch until
//! every task in the batch has finished (or panicked) — no task can outlive
//! the borrowed data. Worker panics are caught, counted, and re-raised on
//! the calling thread after the batch drains.
//!
//! # Supervision
//!
//! The pool can also act as a *supervisor* instead of a mere conduit for
//! panics: [`WorkerPool::try_broadcast`] reports which workers panicked (as
//! a [`BatchFailure`]) rather than re-raising, and
//! [`WorkerPool::supervised_broadcast`] applies a [`SupervisionPolicy`] —
//! fail fast (the classic behaviour), degrade (re-run the failed shard on
//! the calling thread), or restart (replace the dead worker thread via
//! [`WorkerPool::respawn`] and re-run its shard there). This is the
//! substrate the fault-injected BSP executor builds its PE-crash recovery
//! on: a crashed shard is never silently lost, and the barrier semantics
//! are preserved because every recovery path completes before the batch
//! call returns.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A borrowed task: runs once on some worker thread.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// A shared batch closure, called once per worker with the worker index.
pub type BatchFn<'scope> = dyn Fn(usize) + Sync + 'scope;

/// What a supervising batch call does about panicking workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupervisionPolicy {
    /// Re-raise the first panic on the caller after the batch drains (the
    /// classic [`WorkerPool::broadcast`] behaviour).
    #[default]
    FailFast,
    /// Log nothing, lose nothing: re-run each failed worker's shard on the
    /// calling thread, then return normally.
    Degrade,
    /// Replace each failed worker with a freshly spawned thread and re-run
    /// its shard on the replacement.
    Restart,
}

/// A batch in which one or more workers panicked.
///
/// Returned by [`WorkerPool::try_broadcast`]; the batch itself has fully
/// drained (barrier semantics hold), so the caller may recover — re-run the
/// failed shards, respawn workers — or [`BatchFailure::resume`] the panic.
pub struct BatchFailure {
    /// Indices of the workers whose shard panicked, ascending.
    pub panicked: Vec<usize>,
    /// The first panic payload observed in the batch.
    payload: Box<dyn std::any::Any + Send>,
}

impl BatchFailure {
    /// Re-raises the first panic payload on the current thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }

    /// The panic message, if the payload was a string (the common case).
    pub fn message(&self) -> Option<&str> {
        self.payload
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| self.payload.downcast_ref::<String>().map(String::as_str))
    }
}

impl std::fmt::Debug for BatchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchFailure")
            .field("panicked", &self.panicked)
            .field("message", &self.message())
            .finish()
    }
}

/// Completion latch for one `execute`/`broadcast` batch.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    /// First panic payload observed in the batch, re-raised by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Worker indices whose command panicked, in completion order.
    panicked_workers: Vec<usize>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
                panicked_workers: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Re-arms a drained latch for the next batch (the zero-allocation
    /// `broadcast` path reuses one latch for the pool's whole lifetime).
    fn reset(&self, count: usize) {
        let mut state = self.state.lock().expect("latch lock");
        debug_assert_eq!(state.remaining, 0, "latch reset while a batch is live");
        state.remaining = count;
        state.panic = None;
        state.panicked_workers.clear();
    }

    fn complete(&self, worker: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        state.remaining -= 1;
        if panic.is_some() {
            state.panicked_workers.push(worker);
        }
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Blocks until the batch drains; reports a panicked batch instead of
    /// re-raising.
    fn wait_outcome(&self) -> Result<(), BatchFailure> {
        let mut state = self.state.lock().expect("latch lock");
        while state.remaining > 0 {
            state = self.cv.wait(state).expect("latch wait");
        }
        match state.panic.take() {
            None => Ok(()),
            Some(payload) => {
                let mut panicked = std::mem::take(&mut state.panicked_workers);
                panicked.sort_unstable();
                Err(BatchFailure { panicked, payload })
            }
        }
    }

    fn wait(&self) {
        if let Err(failure) = self.wait_outcome() {
            failure.resume();
        }
    }
}

/// One queued command for a specific worker.
enum Cmd {
    /// A boxed task from `execute`.
    Task(StaticTask, Arc<Latch>),
    /// A lifetime-erased shared closure from `broadcast`; the worker calls
    /// it with its own index.
    Batch(&'static BatchFn<'static>, Arc<Latch>),
    /// Terminate this worker's loop (used by `respawn` to retire one
    /// worker without closing its queue).
    Exit,
}

struct QueueState {
    cmds: VecDeque<Cmd>,
    shutdown: bool,
}

/// A single worker's private command queue.
struct WorkerQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl WorkerQueue {
    fn new() -> Self {
        WorkerQueue {
            state: Mutex::new(QueueState {
                cmds: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, cmd: Cmd) {
        let mut state = self.state.lock().expect("queue lock");
        state.cmds.push_back(cmd);
        self.cv.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.shutdown = true;
        self.cv.notify_all();
    }

    /// Blocks for the next command; `None` once the queue is closed *and*
    /// drained (so no queued work is ever abandoned on shutdown).
    fn pop(&self) -> Option<Cmd> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(cmd) = state.cmds.pop_front() {
                return Some(cmd);
            }
            if state.shutdown {
                return None;
            }
            state = self.cv.wait(state).expect("queue wait");
        }
    }
}

/// A fixed-size pool of persistent worker threads executing borrowed task
/// batches with barrier semantics.
pub struct WorkerPool {
    queues: Arc<Vec<WorkerQueue>>,
    /// One handle per worker slot; `None` only transiently inside
    /// [`WorkerPool::respawn`].
    workers: Vec<Option<JoinHandle<()>>>,
    threads: usize,
    /// Reusable latch for `broadcast` batches (serialized by `submit`).
    batch_latch: Arc<Latch>,
    /// Serializes `broadcast` callers so the reusable latch is never shared
    /// between two live batches.
    submit: Mutex<()>,
    /// Round-robin start offset so small `execute` batches spread across
    /// workers instead of piling onto worker 0.
    next_worker: Mutex<usize>,
    /// Lifetime dispatch counters (relaxed; noise next to the batch
    /// barrier itself) for the observability layer.
    stats: PoolCounters,
}

#[derive(Debug, Default)]
struct PoolCounters {
    broadcasts: AtomicU64,
    targeted: AtomicU64,
    respawns: AtomicU64,
}

/// A snapshot of the pool's lifetime dispatch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Full-pool batches dispatched (`broadcast`, `try_broadcast`,
    /// `supervised_broadcast`).
    pub broadcasts: u64,
    /// Single-worker re-runs dispatched via [`WorkerPool::run_on`].
    pub targeted: u64,
    /// Worker threads replaced via [`WorkerPool::respawn`].
    pub respawns: u64,
}

impl WorkerPool {
    /// Spawns a pool of `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let queues: Arc<Vec<WorkerQueue>> =
            Arc::new((0..threads).map(|_| WorkerQueue::new()).collect());
        let workers = (0..threads)
            .map(|i| {
                let queues = Arc::clone(&queues);
                Some(
                    std::thread::Builder::new()
                        .name(format!("smvp-worker-{i}"))
                        .spawn(move || worker_loop(&queues[i], i))
                        .expect("spawn worker thread"),
                )
            })
            .collect();
        WorkerPool {
            queues,
            workers,
            threads,
            batch_latch: Arc::new(Latch::new(0)),
            submit: Mutex::new(()),
            next_worker: Mutex::new(0),
            stats: PoolCounters::default(),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lifetime dispatch counters: batches, targeted re-runs, respawns.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            broadcasts: self.stats.broadcasts.load(Ordering::Relaxed),
            targeted: self.stats.targeted.load(Ordering::Relaxed),
            respawns: self.stats.respawns.load(Ordering::Relaxed),
        }
    }

    /// Runs every task in `tasks` on the pool and returns once all have
    /// completed — a full barrier. Tasks are distributed round-robin over
    /// the per-worker queues. If any task panicked, the first payload is
    /// re-raised here after the whole batch has drained (so borrowed data
    /// is never abandoned mid-use).
    pub fn execute<'scope>(&self, tasks: Vec<Task<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let start = {
            let mut next = self.next_worker.lock().expect("next_worker lock");
            let s = *next;
            *next = (s + tasks.len()) % self.threads;
            s
        };
        for (k, task) in tasks.into_iter().enumerate() {
            // SAFETY: `wait` below blocks until every task has run to
            // completion (the latch is decremented after the task body
            // returns or panics), so no `'scope` borrow escapes this call.
            let task: StaticTask = unsafe { std::mem::transmute::<Task<'scope>, StaticTask>(task) };
            self.queues[(start + k) % self.threads].push(Cmd::Task(task, Arc::clone(&latch)));
        }
        latch.wait();
    }

    /// The steady-state fast path: runs `f(w)` once on every worker
    /// `w ∈ 0..threads()` and returns once all calls have completed — a
    /// full barrier with the same panic semantics as [`WorkerPool::execute`].
    ///
    /// Nothing is boxed and nothing is heap-allocated on this path: the
    /// closure is passed by reference, the per-worker queues reuse their
    /// capacity, and the completion latch is owned by the pool. Concurrent
    /// `broadcast` calls are serialized internally (each is a barrier
    /// anyway).
    ///
    /// `f` is shared by all workers, so per-worker mutable state must be
    /// reached through the worker index (disjoint slices, per-worker
    /// buffers), not through `&mut` captures.
    pub fn broadcast(&self, f: &BatchFn<'_>) {
        if let Err(failure) = self.try_broadcast(f) {
            failure.resume();
        }
    }

    /// Like [`WorkerPool::broadcast`], but a panicking worker is reported
    /// rather than re-raised: the returned [`BatchFailure`] names every
    /// worker whose `f(w)` call panicked. The batch has fully drained
    /// either way, so the pool (and any data `f` borrowed) is safe to
    /// touch — this is the supervision primitive crash-recovery builds on.
    ///
    /// # Errors
    ///
    /// Returns the [`BatchFailure`] if any worker panicked.
    pub fn try_broadcast(&self, f: &BatchFn<'_>) -> Result<(), BatchFailure> {
        // A previous broadcast may have poisoned the guard by re-raising a
        // worker panic while holding it; the guard carries no data, so
        // poisoning is harmless — recover and keep serializing.
        let _guard = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.batch_latch.reset(self.threads);
        // SAFETY: the latch wait below blocks until every worker has
        // finished its `f(w)` call (or panicked), so the erased `'scope`
        // borrow never outlives this stack frame.
        let f: &'static BatchFn<'static> =
            unsafe { std::mem::transmute::<&BatchFn<'_>, &'static BatchFn<'static>>(f) };
        for queue in self.queues.iter() {
            queue.push(Cmd::Batch(f, Arc::clone(&self.batch_latch)));
        }
        self.batch_latch.wait_outcome()
    }

    /// Runs `f(w)` once on worker `w` only and waits for it — the targeted
    /// re-run primitive used after a [`WorkerPool::respawn`].
    ///
    /// # Errors
    ///
    /// Returns the [`BatchFailure`] if the shard panicked again.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a valid worker index.
    pub fn run_on(&self, w: usize, f: &BatchFn<'_>) -> Result<(), BatchFailure> {
        assert!(w < self.threads, "worker {w} out of range");
        self.stats.targeted.fetch_add(1, Ordering::Relaxed);
        let latch = Arc::new(Latch::new(1));
        // SAFETY: as in `try_broadcast` — the wait below outlives the
        // erased borrow.
        let f: &'static BatchFn<'static> =
            unsafe { std::mem::transmute::<&BatchFn<'_>, &'static BatchFn<'static>>(f) };
        self.queues[w].push(Cmd::Batch(f, Arc::clone(&latch)));
        latch.wait_outcome()
    }

    /// Retires worker `w`'s thread and spawns a replacement on the same
    /// queue — the "replace the dead PE" half of crash recovery. Any
    /// commands already queued for `w` are handed to the replacement (the
    /// queue is never closed), so no work is lost.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a valid worker index or the replacement thread
    /// cannot be spawned.
    pub fn respawn(&mut self, w: usize) {
        assert!(w < self.threads, "worker {w} out of range");
        self.stats.respawns.fetch_add(1, Ordering::Relaxed);
        // Retire the old worker *before* spawning its replacement: both
        // read the same queue, so a replacement spawned early could eat
        // the Exit command itself and leave the old thread (and this
        // join) waiting forever.
        self.queues[w].push(Cmd::Exit);
        if let Some(old) = self.workers[w].take() {
            let _ = old.join();
        }
        let queues = Arc::clone(&self.queues);
        let replacement = std::thread::Builder::new()
            .name(format!("smvp-worker-{w}r"))
            .spawn(move || worker_loop(&queues[w], w))
            .expect("spawn replacement worker thread");
        self.workers[w] = Some(replacement);
    }

    /// A broadcast that *supervises* its workers: on panic, applies
    /// `policy` — [`SupervisionPolicy::FailFast`] re-raises,
    /// [`SupervisionPolicy::Degrade`] re-runs each failed shard on the
    /// calling thread, and [`SupervisionPolicy::Restart`] replaces each
    /// failed worker thread and re-runs the shard on the replacement.
    /// Returns which workers panicked (empty on a clean batch) so callers
    /// can log and account.
    ///
    /// A shard that fails again during its recovery re-run is considered
    /// genuinely broken (not a transient fault) and its panic is re-raised
    /// regardless of policy.
    pub fn supervised_broadcast(
        &mut self,
        f: &BatchFn<'_>,
        policy: SupervisionPolicy,
    ) -> Vec<usize> {
        match self.try_broadcast(f) {
            Ok(()) => Vec::new(),
            Err(failure) => match policy {
                SupervisionPolicy::FailFast => failure.resume(),
                SupervisionPolicy::Degrade => {
                    for &w in &failure.panicked {
                        if let Err(again) = catch_unwind(AssertUnwindSafe(|| f(w))) {
                            resume_unwind(again);
                        }
                    }
                    failure.panicked
                }
                SupervisionPolicy::Restart => {
                    for &w in &failure.panicked {
                        self.respawn(w);
                        if let Err(again) = self.run_on(w, f) {
                            again.resume();
                        }
                    }
                    failure.panicked
                }
            },
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for queue in self.queues.iter() {
            queue.close();
        }
        for handle in self.workers.drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &WorkerQueue, index: usize) {
    while let Some(cmd) = queue.pop() {
        match cmd {
            Cmd::Task(task, latch) => {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                latch.complete(index, outcome.err());
            }
            Cmd::Batch(f, latch) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(index)));
                latch.complete(index, outcome.err());
            }
            Cmd::Exit => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Task> = (0..100)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Task
            })
            .collect();
        pool.execute(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_may_borrow_stack_data() {
        let pool = WorkerPool::new(3);
        let input = vec![1u64, 2, 3, 4, 5, 6];
        let mut outputs = vec![0u64; 6];
        let tasks: Vec<Task> = outputs
            .iter_mut()
            .zip(&input)
            .map(|(out, &v)| {
                Box::new(move || {
                    *out = v * v;
                }) as Task
            })
            .collect();
        pool.execute(tasks);
        assert_eq!(outputs, vec![1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn execute_is_a_barrier_across_batches() {
        // A second batch must observe every write of the first.
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 64];
        let tasks: Vec<Task> = data
            .iter_mut()
            .map(|slot| Box::new(move || *slot = 7) as Task)
            .collect();
        pool.execute(tasks);
        let sum = Mutex::new(0u64);
        let data_ref = &data;
        let sum_ref = &sum;
        pool.execute(vec![Box::new(move || {
            *sum_ref.lock().unwrap() = data_ref.iter().sum();
        }) as Task]);
        assert_eq!(sum.into_inner().unwrap(), 7 * 64);
    }

    #[test]
    fn pool_outlives_many_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Task> = (0..8)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Task
                })
                .collect();
            pool.execute(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 8, "round {round}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.execute(Vec::new());
    }

    #[test]
    fn worker_panic_propagates_after_batch_drains() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut tasks: Vec<Task> = vec![Box::new(|| panic!("task failed"))];
            for _ in 0..10 {
                tasks.push(Box::new(|| {
                    completed.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.execute(tasks);
        }));
        assert!(result.is_err(), "panic must reach the caller");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            10,
            "non-panicking tasks still complete before the panic is re-raised"
        );
        // The pool remains usable after a panicked batch.
        let counter = AtomicUsize::new(0);
        pool.execute(vec![Box::new(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        }) as Task]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn broadcast_runs_once_per_worker_with_distinct_indices() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(&|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for (w, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "worker {w}");
        }
    }

    #[test]
    fn broadcast_is_a_barrier_and_reusable() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for round in 1..=50 {
            pool.broadcast(&|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 3 * round, "round {round}");
        }
    }

    #[test]
    fn broadcast_may_borrow_stack_data() {
        let pool = WorkerPool::new(4);
        let input = [10u64, 20, 30, 40];
        let squares: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(&|w| {
            squares[w].store((input[w] * input[w]) as usize, Ordering::Relaxed);
        });
        let got: Vec<usize> = squares.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![100, 400, 900, 1600]);
    }

    #[test]
    fn broadcast_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|w| {
                if w == 0 {
                    panic!("worker 0 failed");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
        let counter = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn execute_and_broadcast_interleave() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.execute(vec![Box::new(|| {
            counter.fetch_add(10, Ordering::Relaxed);
        }) as Task]);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn try_broadcast_reports_exactly_the_panicked_workers() {
        let pool = WorkerPool::new(4);
        let failure = pool
            .try_broadcast(&|w| {
                if w == 1 || w == 3 {
                    panic!("injected crash on worker {w}");
                }
            })
            .expect_err("two workers panicked");
        assert_eq!(failure.panicked, vec![1, 3]);
        assert!(failure.message().unwrap().contains("injected crash"));
        // Clean batches return Ok and the pool stays usable.
        let counter = AtomicUsize::new(0);
        pool.try_broadcast(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean batch");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn run_on_targets_a_single_worker() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run_on(2, &|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean run");
        let got: Vec<usize> = hits.iter().map(|h| h.load(Ordering::Relaxed)).collect();
        assert_eq!(got, vec![0, 0, 1]);
        assert!(pool.run_on(0, &|_| panic!("again")).is_err());
    }

    #[test]
    fn stats_count_broadcasts_targeted_runs_and_respawns() {
        let mut pool = WorkerPool::new(2);
        assert_eq!(pool.stats(), PoolStats::default());
        pool.broadcast(&|_| {});
        pool.broadcast(&|_| {});
        pool.run_on(1, &|_| {}).expect("targeted run");
        pool.respawn(0);
        let s = pool.stats();
        assert_eq!(s.broadcasts, 2);
        assert_eq!(s.targeted, 1);
        assert_eq!(s.respawns, 1);
    }

    #[test]
    fn respawn_replaces_a_worker_and_keeps_the_pool_whole() {
        let mut pool = WorkerPool::new(2);
        pool.respawn(0);
        assert_eq!(pool.threads(), 2);
        // Both queues are still consumed: every broadcast still runs once
        // per worker index.
        let hits: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            pool.broadcast(&|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits[0].load(Ordering::Relaxed), 10);
        assert_eq!(hits[1].load(Ordering::Relaxed), 10);
    }

    #[test]
    fn supervised_degrade_reruns_failed_shard_inline() {
        let mut pool = WorkerPool::new(3);
        // Worker 1's shard fails once, then succeeds on the re-run.
        let attempts = AtomicUsize::new(0);
        let done: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        let panicked = pool.supervised_broadcast(
            &|w| {
                if w == 1 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient fault");
                }
                done[w].fetch_add(1, Ordering::SeqCst);
            },
            SupervisionPolicy::Degrade,
        );
        assert_eq!(panicked, vec![1]);
        for (w, d) in done.iter().enumerate() {
            assert_eq!(d.load(Ordering::SeqCst), 1, "worker {w} shard ran once");
        }
    }

    #[test]
    fn supervised_restart_respawns_and_reruns_on_replacement() {
        let mut pool = WorkerPool::new(2);
        let attempts = AtomicUsize::new(0);
        let done: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        let panicked = pool.supervised_broadcast(
            &|w| {
                if w == 0 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("PE crash");
                }
                done[w].fetch_add(1, Ordering::SeqCst);
            },
            SupervisionPolicy::Restart,
        );
        assert_eq!(panicked, vec![0]);
        assert_eq!(done[0].load(Ordering::SeqCst), 1);
        assert_eq!(done[1].load(Ordering::SeqCst), 1);
        // The replacement worker participates in later batches.
        let counter = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn supervised_failfast_reraises() {
        let mut pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.supervised_broadcast(
                &|w| {
                    if w == 0 {
                        panic!("fatal");
                    }
                },
                SupervisionPolicy::FailFast,
            );
        }));
        assert!(result.is_err());
    }

    #[test]
    fn persistently_failing_shard_reraises_even_under_supervision() {
        let mut pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.supervised_broadcast(
                &|w| {
                    if w == 1 {
                        panic!("hard fault");
                    }
                },
                SupervisionPolicy::Degrade,
            );
        }));
        assert!(result.is_err(), "a shard that fails its re-run is fatal");
    }
}
