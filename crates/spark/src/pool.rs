//! A persistent worker pool for bulk-synchronous kernels.
//!
//! The spawn-per-call kernels in [`crate::kernels`] pay thread creation and
//! teardown on every SMVP — acceptable for one product, ruinous for the
//! paper's 6000-step time loop where the same parallel shape repeats every
//! step. [`WorkerPool`] keeps a fixed set of OS threads alive and feeds
//! them batches of borrowed closures; [`WorkerPool::execute`] is a full
//! barrier (it returns only after every task has run), which is exactly the
//! phase discipline a bulk-synchronous SMVP needs.
//!
//! # Safety model
//!
//! Tasks may borrow from the caller's stack (`'scope` lifetime). The pool
//! erases that lifetime to move tasks onto long-lived worker threads, which
//! is sound because `execute` blocks on a completion latch until every task
//! in the batch has finished (or panicked) — no task can outlive the
//! borrowed data. Worker panics are caught, counted, and re-raised on the
//! calling thread after the batch drains.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A borrowed task: runs once on some worker thread.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch for one `execute` batch.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    /// First panic payload observed in the batch, re-raised by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch lock");
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic;
        }
        if state.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut state = self.state.lock().expect("latch lock");
        while state.remaining > 0 {
            state = self.cv.wait(state).expect("latch wait");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
    }
}

struct Job {
    task: StaticTask,
    latch: Arc<Latch>,
}

/// A fixed-size pool of persistent worker threads executing borrowed task
/// batches with barrier semantics.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawns a pool of `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("smvp-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task in `tasks` on the pool and returns once all have
    /// completed — a full barrier. If any task panicked, the first payload
    /// is re-raised here after the whole batch has drained (so borrowed
    /// data is never abandoned mid-use).
    pub fn execute<'scope>(&self, tasks: Vec<Task<'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let sender = self.sender.as_ref().expect("pool alive");
        for task in tasks {
            // SAFETY: `wait` below blocks until every task has run to
            // completion (the latch is decremented after the task body
            // returns or panics), so no `'scope` borrow escapes this call.
            let task: StaticTask = unsafe { std::mem::transmute::<Task<'scope>, StaticTask>(task) };
            sender
                .send(Job {
                    task,
                    latch: Arc::clone(&latch),
                })
                .expect("worker threads alive while pool exists");
        }
        latch.wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(Job { task, latch }) => {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                latch.complete(outcome.err());
            }
            // Channel closed: the pool is being dropped.
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Task> = (0..100)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Task
            })
            .collect();
        pool.execute(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_may_borrow_stack_data() {
        let pool = WorkerPool::new(3);
        let input = vec![1u64, 2, 3, 4, 5, 6];
        let mut outputs = vec![0u64; 6];
        let tasks: Vec<Task> = outputs
            .iter_mut()
            .zip(&input)
            .map(|(out, &v)| {
                Box::new(move || {
                    *out = v * v;
                }) as Task
            })
            .collect();
        pool.execute(tasks);
        assert_eq!(outputs, vec![1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn execute_is_a_barrier_across_batches() {
        // A second batch must observe every write of the first.
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 64];
        let tasks: Vec<Task> = data
            .iter_mut()
            .map(|slot| Box::new(move || *slot = 7) as Task)
            .collect();
        pool.execute(tasks);
        let sum = Mutex::new(0u64);
        let data_ref = &data;
        let sum_ref = &sum;
        pool.execute(vec![Box::new(move || {
            *sum_ref.lock().unwrap() = data_ref.iter().sum();
        }) as Task]);
        assert_eq!(sum.into_inner().unwrap(), 7 * 64);
    }

    #[test]
    fn pool_outlives_many_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Task> = (0..8)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Task
                })
                .collect();
            pool.execute(tasks);
            assert_eq!(counter.load(Ordering::Relaxed), 8, "round {round}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.execute(Vec::new());
    }

    #[test]
    fn worker_panic_propagates_after_batch_drains() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut tasks: Vec<Task> = vec![Box::new(|| panic!("task failed"))];
            for _ in 0..10 {
                tasks.push(Box::new(|| {
                    completed.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.execute(tasks);
        }));
        assert!(result.is_err(), "panic must reach the caller");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            10,
            "non-panicking tasks still complete before the panic is re-raised"
        );
        // The pool remains usable after a panicked batch.
        let counter = AtomicUsize::new(0);
        pool.execute(vec![Box::new(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        }) as Task]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0);
    }
}
