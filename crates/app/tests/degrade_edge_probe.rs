//! Reviewer probe: Degrade policy with a straggle and a crash on the same
//! worker chunk in the same step. The inline re-run overwrites the
//! straggled PE's elapsed slot without the delay, which may break the
//! straggle-detection check and unbalance the ledger.

use quake_app::executor::BspExecutor;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::DistributedSystem;
use quake_core::fault::{FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
use quake_fem::assembly::UniformMaterial;
use quake_mesh::ground::Material;
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_sparse::dense::Vec3;

#[test]
fn degrade_straggle_before_crash_same_chunk_stays_balanced() {
    let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
    let partition = RecursiveBisection::inertial()
        .partition(&app.mesh, 4)
        .expect("partition");
    let mat = Material {
        vs: 1000.0,
        vp: 2000.0,
        rho: 2000.0,
    };
    let system =
        DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat)).expect("system");
    let x: Vec<Vec3> = (0..app.mesh.node_count())
        .map(|i| {
            let s = i as f64;
            Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
        })
        .collect();
    // One worker thread => all 4 PEs share one chunk. PE 0 straggles, PE 1
    // crashes in the same step. Under Degrade, the inline re-run of the
    // whole chunk rewrites elapsed[0] without the sleep.
    let plan = FaultPlan::from_events(vec![
        FaultEvent {
            step: 0,
            pe: 0,
            kind: FaultKind::Straggle { delay_us: 300 },
        },
        FaultEvent {
            step: 0,
            pe: 1,
            kind: FaultKind::Crash,
        },
    ]);
    let mut exec = BspExecutor::new(&system, 1);
    exec.enable_faults(plan, RecoveryPolicy::Degrade, 4);
    let _ = exec.run(&x, 2);
    let fr = exec.fault_report().unwrap();
    eprintln!("{fr}");
    assert!(fr.balanced(), "ledger unbalanced: {fr}");
}
