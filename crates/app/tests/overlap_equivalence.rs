//! The latency-hiding schedule's equivalence guarantee, quantified.
//!
//! `--overlap on` restructures the executor's compute and exchange phases
//! into one merged broadcast (boundary rows posted first, interior rows
//! overlapping the exchange), but it must be *observationally invisible*
//! to the numerics: at any worker-thread count from 1 to 8, with or
//! without RCM renumbering, with or without telemetry, with or without
//! chaos-layer fault injection, the overlapped run must produce output
//! **bitwise-equal** to the barrier run of the same product, and the
//! measured `F`/`C_max`/`B_max` counters must match the fault-free
//! characterization exactly. Alongside the equivalence, the row split the
//! executor actually runs must be the split
//! [`OverlapAnalysis`](quake_partition::comm::OverlapAnalysis) prices.
//!
//! The mesh/partition fixture is built once (it is expensive) and shared;
//! each proptest case varies only the cheap knobs.

use proptest::prelude::*;
use quake_app::executor::BspExecutor;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::DistributedSystem;
use quake_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use quake_core::telemetry::{DriftConfig, PhaseId, TelemetryConfig};
use quake_fem::assembly::UniformMaterial;
use quake_mesh::ground::Material;
use quake_partition::comm::{CommAnalysis, OverlapAnalysis};
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_sparse::dense::Vec3;
use std::sync::OnceLock;

const PARTS: usize = 6;
const STEPS: u64 = 5;

struct Fixture {
    system: DistributedSystem,
    x: Vec<Vec3>,
    /// Fault-free characterization maxima: (F, C_max, B_max).
    predicted: (u64, u64, u64),
    /// The model's per-PE boundary row counts.
    boundary_rows: Vec<u64>,
    /// Barrier-schedule output, natural node order.
    reference: Vec<Vec3>,
    /// Barrier-schedule output, RCM-renumbered subdomains.
    reference_rcm: Vec<Vec3>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("fixture mesh");
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, PARTS)
            .expect("fixture partition");
        let analysis = CommAnalysis::new(&app.mesh, &partition);
        let overlap = OverlapAnalysis::new(&app.mesh, &partition);
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let system = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
            .expect("fixture system");
        let x: Vec<Vec3> = (0..app.mesh.node_count())
            .map(|i| {
                let s = i as f64;
                Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
            })
            .collect();
        let reference = BspExecutor::new(&system, 2).run(&x, STEPS);
        let reference_rcm = BspExecutor::with_rcm(&system, 2).run(&x, STEPS);
        Fixture {
            predicted: (analysis.f_max(), analysis.c_max(), analysis.b_max()),
            boundary_rows: overlap.per_pe().iter().map(|l| l.boundary_rows).collect(),
            system,
            x,
            reference,
            reference_rcm,
        }
    })
}

fn bitwise_eq(a: &[Vec3], b: &[Vec3]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(u, v)| {
            (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
        })
}

/// The explicit sweep the issue asks for: every thread count from 1 to 8,
/// both node orderings — the overlapped schedule is bitwise-equal to the
/// barrier schedule and its counters still match the characterization.
#[test]
fn overlap_runs_are_bitwise_equal_across_thread_counts_and_orderings() {
    let fx = fixture();
    for threads in 1..=8 {
        for rcm in [false, true] {
            let mut exec = BspExecutor::with_options(&fx.system, threads, rcm, true);
            assert!(exec.overlap_enabled());
            let y = exec.run(&fx.x, STEPS);
            let reference = if rcm {
                &fx.reference_rcm
            } else {
                &fx.reference
            };
            assert!(
                bitwise_eq(reference, &y),
                "{threads} threads, rcm={rcm}: overlapped run diverged from barrier run"
            );
            let report = exec.report();
            assert_eq!(
                (report.f_max(), report.c_max(), report.b_max()),
                fx.predicted,
                "{threads} threads, rcm={rcm}: counters diverged under overlap"
            );
        }
    }
}

/// The split the executor runs is exactly the split the model prices: the
/// per-PE boundary row counts match `OverlapAnalysis` one for one, and
/// every boundary count is a strict subset of the PE's rows on a
/// multi-PE partition.
#[test]
fn executor_boundary_split_matches_overlap_analysis_exactly() {
    let fx = fixture();
    for rcm in [false, true] {
        let exec = BspExecutor::with_options(&fx.system, 2, rcm, true);
        let split = exec.overlap_boundary_rows().expect("overlap armed");
        let measured: Vec<u64> = split.iter().map(|&nb| nb as u64).collect();
        assert_eq!(
            measured, fx.boundary_rows,
            "rcm={rcm}: executor split disagrees with OverlapAnalysis"
        );
        for (q, (&nb, sd)) in split.iter().zip(fx.system.subdomains()).enumerate() {
            assert!(nb > 0, "PE {q} has no boundary rows on a {PARTS}-way cut");
            assert!(nb < sd.node_count(), "PE {q} has no interior rows");
        }
    }
}

/// Overlap composes with telemetry: output stays bitwise-equal, every
/// overlapped step records Post spans alongside the regular phases, and
/// the drift monitor stays silent (spin-wait time is excluded from the
/// exchange times it judges).
#[test]
fn traced_overlap_runs_record_post_spans_and_stay_drift_silent() {
    let fx = fixture();
    for threads in [1, 3, 8] {
        let mut exec = BspExecutor::with_options(&fx.system, threads, false, true);
        // Drift floor raised past CI scheduler noise: this test asserts
        // wiring and bitwise equality, not the monitor's sensitivity
        // (which drift.rs unit-tests over synthetic times).
        exec.enable_telemetry(TelemetryConfig {
            drift: Some(DriftConfig {
                min_time_s: 1.0,
                ..DriftConfig::default()
            }),
            ..TelemetryConfig::default()
        });
        let y = exec.run(&fx.x, STEPS);
        assert!(
            bitwise_eq(&fx.reference, &y),
            "{threads} threads: traced overlapped run diverged"
        );
        let t = exec.telemetry().expect("telemetry armed");
        assert_eq!(t.steps, STEPS);
        for phase in [
            PhaseId::Assemble,
            PhaseId::Post,
            PhaseId::Compute,
            PhaseId::Exchange,
            PhaseId::Fold,
        ] {
            assert!(
                t.spans.iter().any(|s| s.phase == phase),
                "{threads} threads: no {} span",
                phase.name()
            );
        }
        // One Post span per PE per step: the boundary half of the split.
        let posts = t.spans.iter().filter(|s| s.phase == PhaseId::Post).count() as u64;
        assert_eq!(posts, STEPS * PARTS as u64);
        assert_eq!(t.compute_ns.count(), STEPS * PARTS as u64);
        assert_eq!(t.block_latency_ns.count(), t.block_words.count());
        assert!(
            t.block_latency_ns.count() > 0,
            "no exchange traffic recorded"
        );
        let drift = t.drift.as_ref().expect("drift armed by default");
        assert_eq!(
            drift.flagged_total(),
            0,
            "{threads} threads: drift flagged a clean overlapped run"
        );
        assert!(t.instants().is_empty(), "clean run recorded fault instants");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Overlap composes with the chaos layer (which falls back to barrier
    /// phases over the boundary-first matrices): a fault-injected,
    /// recovered run with overlap armed still equals the barrier
    /// fault-free reference, the ledger balances, and the counters are
    /// untouched.
    #[test]
    fn overlapped_chaos_runs_stay_bitwise_equal_and_balanced(
        seed in 0u64..1_000_000,
        threads in 1usize..=8,
        checkpoint_every in 1u64..=4,
        rcm in 0u8..2,
        trace in 0u8..2,
    ) {
        let rcm = rcm == 1;
        let fx = fixture();
        let plan = FaultPlan::generate(seed, STEPS, PARTS, &FaultRates::uniform(0.25));
        let mut exec = BspExecutor::with_options(&fx.system, threads, rcm, true);
        if trace == 1 {
            exec.enable_telemetry(TelemetryConfig::default());
        }
        exec.enable_faults(plan, RecoveryPolicy::Restart, checkpoint_every);
        let y = exec.run(&fx.x, STEPS);
        let reference = if rcm { &fx.reference_rcm } else { &fx.reference };
        prop_assert!(
            bitwise_eq(reference, &y),
            "seed {seed}, {threads} threads, rcm={rcm}: overlapped chaos run diverged"
        );
        let report = exec.report();
        let fr = report.fault.expect("armed executor reports faults");
        prop_assert!(fr.balanced(), "seed {seed}: unbalanced ledger: {fr}");
        prop_assert_eq!(
            (report.f_max(), report.c_max(), report.b_max()),
            fx.predicted
        );
    }
}
