//! The telemetry layer's zero-interference guarantee, quantified.
//!
//! Arming telemetry must be *observationally invisible* to the numerics: a
//! traced BSP SMVP run — at any worker-thread count from 1 to 8, with or
//! without RCM renumbering, with or without chaos-layer fault injection —
//! must produce output **bitwise-equal** to the untraced run of the same
//! product, and the measured `F`/`C_max`/`B_max` counters must be
//! untouched. Alongside the equivalence, the recorded telemetry itself
//! must be coherent: spans for every BSP phase, consistent histogram
//! counts with ordered percentiles, and a drift monitor that stays silent
//! on clean runs.
//!
//! The mesh/partition fixture is built once (it is expensive) and shared;
//! each proptest case varies only the cheap knobs.

use proptest::prelude::*;
use quake_app::executor::BspExecutor;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::DistributedSystem;
use quake_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use quake_core::telemetry::{DriftConfig, PhaseId, TelemetryConfig};
use quake_fem::assembly::UniformMaterial;
use quake_mesh::ground::Material;
use quake_partition::comm::CommAnalysis;
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_sparse::dense::Vec3;
use std::sync::OnceLock;

const PARTS: usize = 6;
const STEPS: u64 = 5;

struct Fixture {
    system: DistributedSystem,
    x: Vec<Vec3>,
    /// Fault-free characterization maxima: (F, C_max, B_max).
    predicted: (u64, u64, u64),
    /// Untraced output, natural node order.
    reference: Vec<Vec3>,
    /// Untraced output, RCM-renumbered subdomains.
    reference_rcm: Vec<Vec3>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("fixture mesh");
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, PARTS)
            .expect("fixture partition");
        let analysis = CommAnalysis::new(&app.mesh, &partition);
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let system = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
            .expect("fixture system");
        let x: Vec<Vec3> = (0..app.mesh.node_count())
            .map(|i| {
                let s = i as f64;
                Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
            })
            .collect();
        let reference = BspExecutor::new(&system, 2).run(&x, STEPS);
        let reference_rcm = BspExecutor::with_rcm(&system, 2).run(&x, STEPS);
        Fixture {
            predicted: (analysis.f_max(), analysis.c_max(), analysis.b_max()),
            system,
            x,
            reference,
            reference_rcm,
        }
    })
}

fn bitwise_eq(a: &[Vec3], b: &[Vec3]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(u, v)| {
            (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
        })
}

/// Telemetry with the drift noise floor raised past anything a loaded CI
/// machine can produce: these tests assert wiring and bitwise equality
/// under arbitrary scheduler contention, where a multi-millisecond
/// preemption mid-exchange is indistinguishable from real drift. The
/// monitor's sensitivity has its own unit tests over synthetic times.
fn ci_quiet_telemetry() -> TelemetryConfig {
    TelemetryConfig {
        drift: Some(DriftConfig {
            min_time_s: 1.0,
            ..DriftConfig::default()
        }),
        ..TelemetryConfig::default()
    }
}

fn traced_executor(fx: &Fixture, threads: usize, rcm: bool) -> BspExecutor {
    let mut exec = if rcm {
        BspExecutor::with_rcm(&fx.system, threads)
    } else {
        BspExecutor::new(&fx.system, threads)
    };
    exec.enable_telemetry(ci_quiet_telemetry());
    exec
}

/// The explicit thread sweep the issue asks for: every count from 1 to 8,
/// both node orderings, traced vs untraced bitwise equality plus phase
/// coverage and histogram coherence.
#[test]
fn traced_runs_are_bitwise_equal_across_thread_counts_and_orderings() {
    let fx = fixture();
    for threads in 1..=8 {
        for rcm in [false, true] {
            let mut exec = traced_executor(fx, threads, rcm);
            let y = exec.run(&fx.x, STEPS);
            let reference = if rcm {
                &fx.reference_rcm
            } else {
                &fx.reference
            };
            assert!(
                bitwise_eq(reference, &y),
                "{threads} threads, rcm={rcm}: traced run diverged from untraced"
            );
            let t = exec.telemetry().expect("telemetry armed");
            assert_eq!(t.steps, STEPS);
            for phase in [
                PhaseId::Assemble,
                PhaseId::Compute,
                PhaseId::Exchange,
                PhaseId::Fold,
            ] {
                assert!(
                    t.spans.iter().any(|s| s.phase == phase),
                    "{threads} threads, rcm={rcm}: no {} span",
                    phase.name()
                );
            }
            // Every step records one compute sample per PE and one
            // latency+size sample per inbound message; the two block
            // channels must agree with each other.
            assert_eq!(t.compute_ns.count(), STEPS * PARTS as u64);
            assert_eq!(t.block_latency_ns.count(), t.block_words.count());
            assert!(
                t.block_latency_ns.count() > 0,
                "no exchange traffic recorded"
            );
            let lat = t.block_latency_ns.summary();
            assert!(lat.p50 <= lat.p90 && lat.p90 <= lat.p99 && lat.p99 <= lat.max);
            let drift = t.drift.as_ref().expect("drift armed by default");
            assert_eq!(
                drift.flagged_total(),
                0,
                "{threads} threads, rcm={rcm}: drift flagged a clean run \
                 (worst: {:?})",
                drift.worst()
            );
            assert!(t.instants().is_empty(), "clean run recorded fault instants");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tracing composes with the chaos layer: a traced, fault-injected,
    /// recovered run still equals the untraced fault-free reference, and
    /// the ledger and counters are unaffected by the instrumentation.
    #[test]
    fn traced_chaos_runs_stay_bitwise_equal_and_balanced(
        seed in 0u64..1_000_000,
        threads in 1usize..=8,
        checkpoint_every in 1u64..=4,
        degrade in 0u8..2,
        rcm in 0u8..2,
    ) {
        let rcm = rcm == 1;
        let fx = fixture();
        let plan = FaultPlan::generate(seed, STEPS, PARTS, &FaultRates::uniform(0.25));
        let injected_any = !plan.is_empty();
        let policy = if degrade == 1 {
            RecoveryPolicy::Degrade
        } else {
            RecoveryPolicy::Restart
        };
        let mut exec = traced_executor(fx, threads, rcm);
        exec.enable_faults(plan, policy, checkpoint_every);
        let y = exec.run(&fx.x, STEPS);
        let reference = if rcm { &fx.reference_rcm } else { &fx.reference };
        prop_assert!(
            bitwise_eq(reference, &y),
            "seed {seed}, {threads} threads, {policy}, rcm={rcm}: traced chaos run diverged"
        );
        let report = exec.report();
        let fr = report.fault.expect("armed executor reports faults");
        prop_assert!(fr.balanced(), "seed {seed}: unbalanced ledger: {fr}");
        prop_assert_eq!(
            (report.f_max(), report.c_max(), report.b_max()),
            fx.predicted
        );
        let t = exec.telemetry().expect("telemetry armed");
        prop_assert_eq!(t.steps, STEPS);
        // Every injected fault leaves a trace instant (the instant buffer
        // is far larger than any generated plan here).
        // Fault instants must appear exactly when faults were injected.
        prop_assert_eq!(
            t.instants().is_empty() && t.instants_dropped() == 0,
            !injected_any
        );
    }
}
