//! The critical-path profiler's attribution identity, property-tested.
//!
//! `ProfileReport` claims exactness by construction: the rungs of every
//! step row sum to that row's measured step wall, the step wall is the
//! maximum per-PE span total, and the straggler is a real PE of the run.
//! These must hold for every schedule the executor can produce — worker
//! threads 1–8, ±RCM renumbering, ±latency-hiding overlap — because the
//! span shapes differ (the overlap schedule emits post/compute/exchange
//! triples, the barrier schedule compute/exchange pairs, and wait/barrier
//! spans appear only when time was actually lost there).
//!
//! The mesh/partition fixture is built once (it is expensive) and shared;
//! each proptest case varies only the cheap knobs.

use proptest::prelude::*;
use quake_app::executor::BspExecutor;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::DistributedSystem;
use quake_core::telemetry::profile::{ProfileOptions, ProfileReport};
use quake_core::telemetry::{
    DriftConfig, ShardTrace, TelemetryConfig, TelemetrySnapshot, TraceContext,
};
use quake_fem::assembly::UniformMaterial;
use quake_mesh::ground::Material;
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_sparse::dense::Vec3;
use std::sync::OnceLock;

const PARTS: usize = 6;
const STEPS: u64 = 4;

struct Fixture {
    system: DistributedSystem,
    x: Vec<Vec3>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("fixture mesh");
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, PARTS)
            .expect("fixture partition");
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let system = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
            .expect("fixture system");
        let x: Vec<Vec3> = (0..app.mesh.node_count())
            .map(|i| {
                let s = i as f64;
                Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
            })
            .collect();
        Fixture { system, x }
    })
}

/// Telemetry with the drift noise floor raised past anything a loaded CI
/// machine can produce (these tests assert attribution arithmetic, not
/// drift sensitivity) and a ring large enough that no span is dropped.
fn quiet_telemetry() -> TelemetryConfig {
    TelemetryConfig {
        span_capacity: 1 << 14,
        drift: Some(DriftConfig {
            min_time_s: 1.0,
            ..DriftConfig::default()
        }),
        ..TelemetryConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every schedule: each attribution row sums to its measured step
    /// wall exactly, every step appears, and the straggler is a real PE.
    #[test]
    fn attribution_rows_sum_to_the_measured_step_wall(
        threads in 1usize..=8,
        rcm in 0u8..2,
        overlap in 0u8..2,
    ) {
        let (rcm, overlap) = (rcm == 1, overlap == 1);
        let fx = fixture();
        let mut exec = BspExecutor::with_options(&fx.system, threads, rcm, overlap);
        exec.enable_telemetry(quiet_telemetry());
        exec.run(&fx.x, STEPS);
        let telemetry = exec.telemetry().expect("telemetry armed");
        prop_assert!(telemetry.spans.dropped() == 0, "ring sized for the run");
        let shard = ShardTrace {
            snap: TelemetrySnapshot::capture(
                telemetry,
                TraceContext { run_id: 0, shard: 0, generation: 0 },
                0,
                PARTS as u32,
                Vec::new(),
                0,
            ),
            clock_offset_ns: 0,
        };
        let report = ProfileReport::build(
            std::slice::from_ref(&shard),
            &ProfileOptions { loads: Vec::new(), link: None, overlap },
        );
        prop_assert_eq!(report.steps.len(), STEPS as usize);
        let mut total_wall = 0u64;
        for (i, row) in report.steps.iter().enumerate() {
            prop_assert_eq!(row.step, i as u64);
            // The identity under test: rungs are a *partition* of the
            // wall-defining PE's step time, so they sum back exactly.
            prop_assert!(
                row.rungs.total_ns() == row.wall_ns,
                "threads {} rcm {} overlap {} step {}: rungs sum {} != wall {}",
                threads, rcm, overlap, i, row.rungs.total_ns(), row.wall_ns
            );
            prop_assert!(row.wall_ns > 0, "a real step takes time");
            prop_assert!((row.crit_pe as usize) < PARTS);
            prop_assert!((row.straggler_pe as usize) < PARTS);
            prop_assert!(row.straggler_busy_ns <= row.wall_ns);
            // The overlap schedule is the only source of post spans.
            if !overlap {
                prop_assert_eq!(row.rungs.post_ns, 0);
            }
            total_wall += row.wall_ns;
        }
        prop_assert_eq!(report.totals.total_ns(), total_wall);
        // The profiler is pure over the same snapshot: rebuilding must
        // reproduce the rows bit for bit.
        let again = ProfileReport::build(
            std::slice::from_ref(&shard),
            &ProfileOptions { loads: Vec::new(), link: None, overlap },
        );
        for (a, b) in report.steps.iter().zip(&again.steps) {
            prop_assert_eq!(a.rungs, b.rungs);
            prop_assert_eq!(a.straggler_pe, b.straggler_pe);
        }
    }
}
