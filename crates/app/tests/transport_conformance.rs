//! Cross-transport conformance: every `Transport` backend must produce the
//! bitwise-identical folded product and exactly matching measurement
//! counters for the same [`RunSpec`], across the full option surface —
//! worker-thread counts 1–8, ±RCM renumbering, ±latency-hiding overlap,
//! ±telemetry, ±chaos-layer fault injection.
//!
//! `harness = false`: the proc backend re-executes this binary as shard
//! children via `current_exe()`, and the shard hook must run before any
//! other code (libtest's argument parsing included). A custom `main`
//! routes children first, then runs the sections sequentially.
//!
//! `QUAKE_CONFORMANCE_QUICK=1` shrinks the matrix for CI smoke runs.

use quake_app::transport::run::{self, RunOutput};
use quake_app::transport::wire::RunSpec;
use quake_app::transport::{proc, TransportKind};
use quake_partition::comm::{CommAnalysis, OverlapAnalysis};

const PARTS: usize = 5;
const STEPS: u64 = 6;

fn base_spec(case: u64) -> RunSpec {
    RunSpec {
        parts: PARTS,
        steps: STEPS,
        checkpoint_every: 3,
        span_capacity: 4096,
        x_kind: "rng".to_string(),
        x_seed: 40 + case,
        ..RunSpec::default()
    }
}

fn bitwise_eq(a: &[quake_sparse::dense::Vec3], b: &[quake_sparse::dense::Vec3]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(u, v)| {
            (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
        })
}

/// Per-PE measurement counters must match *exactly* — not approximately —
/// between two transports: the trait carries blocks, not arithmetic, so
/// nothing about the fabric may change what was counted.
fn assert_counters_match(label: &str, reference: &RunOutput, other: &RunOutput) {
    assert_eq!(
        reference.report.pe.len(),
        other.report.pe.len(),
        "{label}: PE count"
    );
    for (q, (a, b)) in reference.report.pe.iter().zip(&other.report.pe).enumerate() {
        assert_eq!(a.flops, b.flops, "{label}: PE {q} flops");
        assert_eq!(a.words_sent, b.words_sent, "{label}: PE {q} words_sent");
        assert_eq!(
            a.words_received, b.words_received,
            "{label}: PE {q} words_received"
        );
        assert_eq!(a.blocks_sent, b.blocks_sent, "{label}: PE {q} blocks_sent");
        assert_eq!(
            a.blocks_received, b.blocks_received,
            "{label}: PE {q} blocks_received"
        );
    }
}

/// The conformance matrix. Each thread count runs two flag combinations,
/// chosen so every ±rcm/±overlap/±trace/±faults value appears at several
/// thread counts, and shards alternate between 2 and 3.
fn matrix(quick: bool) {
    let threads: &[usize] = if quick {
        &[1, 4]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let mut case = 0u64;
    for &t in threads {
        for pick in 0..2u64 {
            // Complementary flag pattern per thread count: case parity
            // flips rcm/overlap, thread parity flips trace/faults.
            let rcm = (case + pick) % 2 == 1;
            let overlap = pick == 1;
            let trace = (t + pick as usize).is_multiple_of(2);
            let faults = (t as u64 + case).is_multiple_of(3);
            let mut spec = base_spec(case);
            spec.threads = t;
            spec.rcm = rcm;
            spec.overlap = overlap;
            spec.trace = trace;
            spec.shards = 2 + (case as usize % 2);
            if faults {
                spec.fault_rate = 0.25;
                spec.fault_seed = 1000 + case;
            }
            run_case(&spec, case);
            case += 1;
        }
    }
    println!("conformance matrix: {case} cases passed");
}

fn run_case(spec: &RunSpec, case: u64) {
    let label = format!(
        "case {case} (threads {}, rcm {}, overlap {}, trace {}, faults {}, shards {})",
        spec.threads,
        spec.rcm,
        spec.overlap,
        spec.trace,
        spec.fault_rate > 0.0,
        spec.shards
    );
    let built = run::build(spec).unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
    let shared = run::run_with(TransportKind::Shared, spec, &built)
        .unwrap_or_else(|e| panic!("{label}: shared run failed: {e}"));
    let netsim = run::run_with(TransportKind::Netsim, spec, &built)
        .unwrap_or_else(|e| panic!("{label}: netsim run failed: {e}"));
    let procr = run::run_with(TransportKind::Proc, spec, &built)
        .unwrap_or_else(|e| panic!("{label}: proc run failed: {e}"));

    // Headline invariant: the folded product is bitwise-identical across
    // every backend.
    assert!(
        bitwise_eq(&shared.y, &netsim.y),
        "{label}: netsim y diverged from shared"
    );
    assert!(
        bitwise_eq(&shared.y, &procr.y),
        "{label}: proc y diverged from shared"
    );
    assert_counters_match(&format!("{label} netsim"), &shared, &netsim);
    assert_counters_match(&format!("{label} proc"), &shared, &procr);

    // Counters must also match the static characterization exactly: the
    // same convention the validation layer enforces, per PE.
    let analysis = CommAnalysis::new(&built.app.mesh, &built.partition);
    let steps = spec.steps;
    for (q, (c, predicted)) in shared.report.pe.iter().zip(analysis.per_pe()).enumerate() {
        assert_eq!(c.flops / steps, predicted.flops, "{label}: PE {q} flops");
        assert_eq!(
            (c.words_sent + c.words_received) / steps,
            predicted.words,
            "{label}: PE {q} words"
        );
        assert_eq!(
            (c.blocks_sent + c.blocks_received) / steps,
            predicted.blocks,
            "{label}: PE {q} blocks"
        );
    }
    if spec.overlap {
        let oa = OverlapAnalysis::new(&built.app.mesh, &built.partition);
        let predicted: Vec<usize> = oa
            .per_pe()
            .iter()
            .map(|p| p.boundary_rows as usize)
            .collect();
        for (transport, out) in [("shared", &shared), ("proc", &procr)] {
            let got = out
                .boundary_rows
                .as_deref()
                .unwrap_or_else(|| panic!("{label}: {transport} reported no boundary split"));
            assert_eq!(got, predicted, "{label}: {transport} boundary rows");
        }
    }

    // Link provenance: proc measures its parameters from the live socket,
    // the in-process backends run presets.
    assert!(
        procr.link.measured,
        "{label}: proc link must be microbenchmarked"
    );
    assert!(
        procr.link.t_l > 0.0 && procr.link.t_w > 0.0,
        "{label}: measured link parameters must be positive"
    );
    assert!(!shared.link.measured, "{label}: shared link is a preset");
    assert!(!netsim.link.measured, "{label}: netsim link is a preset");
    let modeled = netsim
        .modeled_exchange_s
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: netsim must model the exchange"));
    assert!(
        modeled.iter().sum::<f64>() > 0.0,
        "{label}: postal model billed nothing"
    );

    // Chaos composition: the ledger balances and matches across fabrics
    // (the plan is a pure function of the spec, and shards own disjoint
    // PE ranges, so the merged proc ledger equals the in-process one).
    if spec.fault_rate > 0.0 {
        match (&shared.report.fault, &procr.report.fault) {
            (Some(a), Some(b)) => {
                assert!(a.balanced(), "{label}: shared ledger unbalanced");
                assert!(b.balanced(), "{label}: proc ledger unbalanced");
                assert_eq!(a.injected, b.injected, "{label}: injected mismatch");
                assert_eq!(a.detected, b.detected, "{label}: detected mismatch");
                assert_eq!(a.recovered, b.recovered, "{label}: recovered mismatch");
            }
            (a, b) => panic!(
                "{label}: fault report presence diverged (shared {}, proc {})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

/// The node-aggregation matrix: the node-aware two-level exchange across
/// node counts 1, 2 and one-node-per-shard, shard counts 2 and 3, ±RCM,
/// ±overlap and ±chaos. Aggregation is transport-level, so every node-aware
/// run — on every backend — must be bitwise-identical to the FLAT shared
/// run of the same spec, with exactly equal per-PE counters (the logical
/// exchange never changes, only how blocks ride the fabric) and balanced
/// fault ledgers matching the flat run's.
fn node_matrix(quick: bool) {
    let cells: Vec<(usize, bool, bool, bool)> = if quick {
        vec![
            (2, false, false, false),
            (3, true, true, false),
            (2, false, true, true),
        ]
    } else {
        let mut v = Vec::new();
        for shards in [2usize, 3] {
            for rcm in [false, true] {
                for overlap in [false, true] {
                    for faults in [false, true] {
                        v.push((shards, rcm, overlap, faults));
                    }
                }
            }
        }
        v
    };
    let mut cases = 0usize;
    for (i, &(shards, rcm, overlap, faults)) in cells.iter().enumerate() {
        let case = 500 + i as u64;
        let mut flat = base_spec(case);
        flat.threads = 2;
        flat.shards = shards;
        flat.rcm = rcm;
        flat.overlap = overlap;
        // Trace half the cells so the gather-span/histogram path runs too.
        flat.trace = i % 2 == 0;
        if faults {
            flat.fault_rate = 0.25;
            flat.fault_seed = 2000 + case;
        }
        let built = run::build(&flat).unwrap_or_else(|e| panic!("node case {case}: build: {e}"));
        let reference = run::run_with(TransportKind::Shared, &flat, &built)
            .unwrap_or_else(|e| panic!("node case {case}: flat shared run: {e}"));
        let mut node_counts = vec![1usize, 2, shards];
        node_counts.dedup();
        for nodes in node_counts {
            let mut spec = flat.clone();
            spec.nodes = nodes;
            for kind in [
                TransportKind::Shared,
                TransportKind::Netsim,
                TransportKind::Proc,
            ] {
                let label = format!(
                    "node case {case} (shards {shards}, nodes {nodes}, rcm {rcm}, overlap \
                     {overlap}, faults {faults}, {kind:?})"
                );
                let out = run::run_with(kind, &spec, &built)
                    .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
                assert!(
                    bitwise_eq(&reference.y, &out.y),
                    "{label}: aggregated y diverged from the flat shared run"
                );
                assert_counters_match(&label, &reference, &out);
                if faults {
                    let (a, b) = (
                        reference.report.fault.as_ref().expect("flat ledger"),
                        out.report
                            .fault
                            .as_ref()
                            .unwrap_or_else(|| panic!("{label}: missing fault ledger")),
                    );
                    assert!(b.balanced(), "{label}: ledger unbalanced:\n{b}");
                    assert_eq!(a.injected, b.injected, "{label}: injected mismatch");
                    assert_eq!(a.recovered, b.recovered, "{label}: recovered mismatch");
                }
                cases += 1;
            }
        }
    }
    println!("node aggregation matrix: {cases} node-aware runs matched the flat reference");
}

/// The wire-chaos matrix: seeded fault injection on the live socket
/// stream — payload corruption, tail truncation, delays, connection
/// resets and hung-peer stalls — across shard counts and schedule
/// variants. Every recovered run must be bitwise-identical to the
/// fault-free shared-memory run of the same spec, with exactly matching
/// per-PE counters and a balanced wire ledger, and an intact restart
/// budget must never escalate to a whole-ensemble restart.
fn wire_chaos_matrix(quick: bool) {
    let cells: Vec<(usize, bool, bool, bool)> = if quick {
        vec![
            (2, false, false, false),
            (3, true, false, true),
            (2, false, true, true),
            (3, true, true, false),
        ]
    } else {
        let mut v = Vec::new();
        for shards in [2usize, 3] {
            for rcm in [false, true] {
                for overlap in [false, true] {
                    for trace in [false, true] {
                        v.push((shards, rcm, overlap, trace));
                    }
                }
            }
        }
        v
    };
    let mut seen = quake_core::fault::WireFaultCounts::default();
    let mut respawns = 0u64;
    for (i, &(shards, rcm, overlap, trace)) in cells.iter().enumerate() {
        let case = 700 + i as u64;
        let label = format!(
            "wire case {case} (shards {shards}, rcm {rcm}, overlap {overlap}, trace {trace})"
        );
        let mut spec = base_spec(case);
        spec.threads = 2;
        spec.shards = shards;
        spec.rcm = rcm;
        spec.overlap = overlap;
        spec.trace = trace;
        spec.recovery = "restart".to_string();
        // Deadline and budget sized for the worst chaos cell: every
        // shard may stall once (each costs one respawn) and a slow
        // respawn may draw one extra suspect, so the budget needs
        // headroom above `shards` for the no-ensemble-restart assertion
        // to be fair.
        spec.conn_timeout = 1.0;
        spec.restart_budget = 5;
        spec.wire_fault_rate = 0.3;
        spec.wire_fault_seed = 7000 + case;
        let built = run::build(&spec).unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
        let reference = run::run_with(TransportKind::Shared, &spec, &built)
            .unwrap_or_else(|e| panic!("{label}: shared run failed: {e}"));
        let chaotic = run::run_with(TransportKind::Proc, &spec, &built)
            .unwrap_or_else(|e| panic!("{label}: proc run failed: {e}"));
        assert!(
            bitwise_eq(&reference.y, &chaotic.y),
            "{label}: recovered output diverged from the fault-free run"
        );
        assert_counters_match(&label, &reference, &chaotic);
        let timeline: Vec<String> = chaotic
            .incidents
            .iter()
            .map(|i| format!("t+{:.2}s shard {} {}", i.t_s, i.shard, i.kind))
            .collect();
        let fr = chaotic
            .report
            .fault
            .unwrap_or_else(|| panic!("{label}: a chaos run must carry a fault report"));
        assert!(
            fr.wire_injected.total() > 0,
            "{label}: the armed plan injected nothing; incidents: {timeline:?}\n{fr}"
        );
        assert!(fr.balanced(), "{label}: wire ledger unbalanced:\n{fr}");
        assert_eq!(
            fr.ensemble_restarts, 0,
            "{label}: ensemble restart despite an intact shard-restart budget"
        );
        seen.corrupt += fr.wire_injected.corrupt;
        seen.truncate += fr.wire_injected.truncate;
        seen.delay += fr.wire_injected.delay;
        seen.reset += fr.wire_injected.reset;
        seen.stall += fr.wire_injected.stall;
        respawns += fr.respawned_shards;
    }
    if !quick {
        // Across the full matrix every fault kind must have fired at
        // least once — otherwise the matrix is not exercising what it
        // claims to.
        for (kind, n) in [
            ("corrupt", seen.corrupt),
            ("truncate", seen.truncate),
            ("delay", seen.delay),
            ("reset", seen.reset),
            ("stall", seen.stall),
        ] {
            assert!(n > 0, "wire matrix never injected a {kind} fault");
        }
    }
    println!(
        "wire chaos matrix: {} cases passed (injected {} = corrupt {} + truncate {} + delay {} \
         + reset {} + stall {}; {} shard respawns, 0 ensemble restarts)",
        cells.len(),
        seen.total(),
        seen.corrupt,
        seen.truncate,
        seen.delay,
        seen.reset,
        seen.stall,
        respawns
    );
}

/// A shard killed mid-step under a non-restart policy must surface as a
/// clean typed error from the parent — no panic, no hang.
fn peer_kill_is_a_clean_error(tmp: &std::path::Path) {
    let mut spec = base_spec(900);
    spec.threads = 2;
    spec.shards = 2;
    spec.conn_timeout = 2.0;
    spec.recovery = "degrade".to_string();
    let marker = tmp.join("kill-once-degrade");
    let built = run::build(&spec).expect("kill fixture builds");
    std::env::set_var("QUAKE_PROC_KILL", "1:3");
    std::env::set_var("QUAKE_PROC_KILL_ONCE", &marker);
    let result = run::run_with(TransportKind::Proc, &spec, &built);
    std::env::remove_var("QUAKE_PROC_KILL");
    std::env::remove_var("QUAKE_PROC_KILL_ONCE");
    let err = match result {
        Ok(_) => panic!("a killed shard must fail the run"),
        Err(e) => e,
    };
    assert!(
        err.contains("disconnected") || err.contains("shard"),
        "error must name the dead peer, got: {err}"
    );
    println!("peer-kill failfast: clean typed error ({err})");
}

/// The same mid-step kill under `restart` recovery: the supervisor must
/// respawn ONLY the dead shard — the survivors hold in degraded wait, the
/// child rebuilds from the spec and replays — and the recovered output is
/// bitwise-identical to the shared-memory transport. An ensemble restart
/// here would mean the shard-level ladder rung was skipped.
fn peer_kill_restart_recovers(tmp: &std::path::Path) {
    let mut spec = base_spec(901);
    spec.threads = 2;
    spec.shards = 2;
    spec.conn_timeout = 2.0;
    spec.recovery = "restart".to_string();
    let marker = tmp.join("kill-once-restart");
    let built = run::build(&spec).expect("restart fixture builds");
    let reference = run::run_with(TransportKind::Shared, &spec, &built).expect("shared reference");
    std::env::set_var("QUAKE_PROC_KILL", "0:2");
    std::env::set_var("QUAKE_PROC_KILL_ONCE", &marker);
    let result = run::run_with(TransportKind::Proc, &spec, &built);
    std::env::remove_var("QUAKE_PROC_KILL");
    std::env::remove_var("QUAKE_PROC_KILL_ONCE");
    assert!(
        marker.exists(),
        "the kill plan must have armed (marker missing)"
    );
    let out = result.expect("restart recovery must revive the shard");
    assert!(
        bitwise_eq(&reference.y, &out.y),
        "recovered proc output diverged from shared"
    );
    let fr = out.report.fault.expect("a respawn run carries a report");
    assert!(
        fr.respawned_shards >= 1,
        "the kill must recover via a shard respawn, got:\n{fr}"
    );
    assert_eq!(
        fr.ensemble_restarts, 0,
        "shard-level recovery must not escalate to an ensemble restart"
    );
    assert!(
        out.incidents.iter().any(|i| i.kind == "shard-respawn"),
        "the incident timeline must record the respawn"
    );
    println!(
        "peer-kill restart: shard respawned in place ({} respawns, 0 ensemble restarts), \
         output bitwise-equal",
        fr.respawned_shards
    );
}

/// With the shard-restart budget zeroed out, the same one-shot kill must
/// fall through to the next ladder rung: one whole-ensemble retry, which
/// succeeds because the kill marker is spent.
fn budget_zero_falls_back_to_ensemble_retry(tmp: &std::path::Path) {
    let mut spec = base_spec(902);
    spec.threads = 2;
    spec.shards = 2;
    spec.conn_timeout = 2.0;
    spec.recovery = "restart".to_string();
    spec.restart_budget = 0;
    let marker = tmp.join("kill-once-no-budget");
    let built = run::build(&spec).expect("budget fixture builds");
    let reference = run::run_with(TransportKind::Shared, &spec, &built).expect("shared reference");
    std::env::set_var("QUAKE_PROC_KILL", "0:2");
    std::env::set_var("QUAKE_PROC_KILL_ONCE", &marker);
    let result = run::run_with(TransportKind::Proc, &spec, &built);
    std::env::remove_var("QUAKE_PROC_KILL");
    std::env::remove_var("QUAKE_PROC_KILL_ONCE");
    let out = result.expect("the ensemble retry must recover the run");
    assert!(
        bitwise_eq(&reference.y, &out.y),
        "ensemble-retried output diverged from shared"
    );
    let fr = out
        .report
        .fault
        .expect("an ensemble retry carries a report");
    assert_eq!(fr.respawned_shards, 0, "budget 0 forbids shard respawns");
    assert_eq!(fr.ensemble_restarts, 1, "exactly one ensemble retry");
    println!("budget-zero kill: recovered by one ensemble retry, output bitwise-equal");
}

/// A shard that dies on EVERY attempt must exhaust the whole ladder —
/// restart budget, then the ensemble retry — and surface as a typed
/// error, not a hang or a panic.
fn persistent_kill_exhausts_the_ladder() {
    let mut spec = base_spec(903);
    spec.threads = 1;
    spec.steps = 3;
    spec.shards = 2;
    spec.conn_timeout = 1.0;
    spec.recovery = "restart".to_string();
    spec.restart_budget = 1;
    let built = run::build(&spec).expect("ladder fixture builds");
    std::env::set_var("QUAKE_PROC_KILL", "1:1");
    let result = run::run_with(TransportKind::Proc, &spec, &built);
    std::env::remove_var("QUAKE_PROC_KILL");
    let err = match result {
        Ok(_) => panic!("a persistently dying shard must fail the run"),
        Err(e) => e,
    };
    assert!(
        err.contains("shard") || err.contains("disconnected") || err.contains("suspect"),
        "the exhausted ladder must name the shard, got: {err}"
    );
    println!("persistent kill: ladder exhausted into a typed error ({err})");
}

fn main() {
    proc::shard_host_hook();
    let quick = std::env::var("QUAKE_CONFORMANCE_QUICK").is_ok();
    if quick {
        println!("transport conformance: quick mode");
    }
    let tmp = std::env::temp_dir().join(format!("quake-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("scratch dir");
    matrix(quick);
    node_matrix(quick);
    wire_chaos_matrix(quick);
    peer_kill_is_a_clean_error(&tmp);
    peer_kill_restart_recovers(&tmp);
    budget_zero_falls_back_to_ensemble_retry(&tmp);
    persistent_kill_exhausts_the_ladder();
    let _ = std::fs::remove_dir_all(&tmp);
    println!("transport conformance: all sections passed");
}
