//! Chaos property tests: the self-healing claim, quantified.
//!
//! For *any* seeded [`FaultPlan`] — stragglers, dropped exchange blocks,
//! corrupted ghost words, and PE crashes — at *any* worker-thread count
//! from 1 to 8, a recovered BSP SMVP run must be **bitwise-equal** to the
//! fault-free run, its fault ledger must balance (injected == detected ==
//! recovered), and its accumulated `F`/`C_max`/`B_max` counters must still
//! match the fault-free characterization exactly. A second property drives
//! the checkpoint/restart path specifically: a crash at an arbitrary
//! (step, PE) with an arbitrary checkpoint interval — including over
//! RCM-renumbered subdomains — restores and replays to the uninterrupted
//! result.
//!
//! The mesh/partition fixture is built once (it is expensive) and shared;
//! each proptest case varies only the cheap knobs (fault seed, thread
//! count, policy, checkpoint interval), so failures replay from the
//! printed inputs alone.

use proptest::prelude::*;
use quake_app::executor::BspExecutor;
use quake_app::family::{AppConfig, QuakeApp};
use quake_app::DistributedSystem;
use quake_core::fault::{FaultEvent, FaultKind, FaultPlan, FaultRates, RecoveryPolicy};
use quake_fem::assembly::UniformMaterial;
use quake_mesh::ground::Material;
use quake_partition::comm::CommAnalysis;
use quake_partition::geometric::{Partitioner, RecursiveBisection};
use quake_sparse::dense::Vec3;
use std::sync::OnceLock;

const PARTS: usize = 6;
const STEPS: u64 = 6;

struct Fixture {
    system: DistributedSystem,
    x: Vec<Vec3>,
    /// Fault-free characterization maxima: (F, C_max, B_max).
    predicted: (u64, u64, u64),
    /// Fault-free output, natural node order.
    reference: Vec<Vec3>,
    /// Fault-free output, RCM-renumbered subdomains.
    reference_rcm: Vec<Vec3>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("fixture mesh");
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, PARTS)
            .expect("fixture partition");
        let analysis = CommAnalysis::new(&app.mesh, &partition);
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let system = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
            .expect("fixture system");
        let x: Vec<Vec3> = (0..app.mesh.node_count())
            .map(|i| {
                let s = i as f64;
                Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
            })
            .collect();
        // The clean result is deterministic and thread-count independent
        // (each PE's work is fixed; exchange and fold orders are fixed), so
        // one reference per node ordering suffices.
        let reference = BspExecutor::new(&system, 2).run(&x, STEPS);
        let reference_rcm = BspExecutor::with_rcm(&system, 2).run(&x, STEPS);
        Fixture {
            predicted: (analysis.f_max(), analysis.c_max(), analysis.b_max()),
            system,
            x,
            reference,
            reference_rcm,
        }
    })
}

fn bitwise_eq(a: &[Vec3], b: &[Vec3]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(u, v)| {
            (u.x.to_bits(), u.y.to_bits(), u.z.to_bits())
                == (v.x.to_bits(), v.y.to_bits(), v.z.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_seeded_plan_recovers_bitwise_equal_and_balanced(
        seed in 0u64..1_000_000,
        threads in 1usize..=8,
        checkpoint_every in 1u64..=4,
        degrade in 0u8..2,
    ) {
        let fx = fixture();
        let plan = FaultPlan::generate(seed, STEPS, PARTS, &FaultRates::uniform(0.25));
        let policy = if degrade == 1 {
            RecoveryPolicy::Degrade
        } else {
            RecoveryPolicy::Restart
        };
        let mut exec = BspExecutor::new(&fx.system, threads);
        exec.enable_faults(plan, policy, checkpoint_every);
        let y = exec.run(&fx.x, STEPS);
        prop_assert!(
            bitwise_eq(&fx.reference, &y),
            "seed {seed}, {threads} threads, {policy}: recovered run diverged"
        );
        let report = exec.report();
        let fr = report.fault.expect("armed executor reports faults");
        prop_assert!(fr.balanced(), "seed {seed}: unbalanced ledger: {fr}");
        prop_assert_eq!(report.steps, STEPS);
        // Recovery (including checkpoint rollback + replay) must not smear
        // the measured characterization.
        prop_assert_eq!(
            (report.f_max(), report.c_max(), report.b_max()),
            fx.predicted
        );
    }

    #[test]
    fn checkpoint_restart_round_trips_from_any_crash_point(
        crash_step in 0..STEPS,
        crash_pe in 0usize..PARTS,
        checkpoint_every in 1u64..=5,
        threads in 1usize..=8,
        rcm in 0u8..2,
    ) {
        let rcm = rcm == 1;
        let fx = fixture();
        let plan = FaultPlan::from_events(vec![FaultEvent {
            step: crash_step,
            pe: crash_pe,
            kind: FaultKind::Crash,
        }]);
        let mut exec = if rcm {
            BspExecutor::with_rcm(&fx.system, threads)
        } else {
            BspExecutor::new(&fx.system, threads)
        };
        exec.enable_faults(plan, RecoveryPolicy::Restart, checkpoint_every);
        let y = exec.run(&fx.x, STEPS);
        let reference = if rcm { &fx.reference_rcm } else { &fx.reference };
        prop_assert!(
            bitwise_eq(reference, &y),
            "crash at ({crash_step}, {crash_pe}), K={checkpoint_every}, rcm={rcm}: \
             restored run diverged"
        );
        let report = exec.report();
        let fr = report.fault.expect("armed executor reports faults");
        prop_assert!(fr.balanced(), "unbalanced ledger: {fr}");
        prop_assert_eq!(fr.injected.crash, 1);
        // Exactly one restore for the single crash.
        prop_assert_eq!(fr.restores, 1);
        prop_assert_eq!(fr.respawned_workers, 1);
        // The restore rewinds to the last checkpoint at or before the crash
        // step, so the replay distance is bounded by the interval.
        prop_assert!(fr.replayed_steps < checkpoint_every);
        prop_assert_eq!(
            (report.f_max(), report.c_max(), report.b_max()),
            fx.predicted
        );
    }
}
