//! The real distributed SMVP of §2.3: local subdomain matrices with
//! replicated shared nodes, a local product per PE, and an exchange-and-sum
//! communication phase.
//!
//! This is an executable model of the data distribution the paper analyzes:
//! `x`/`y` values of a node replicated on every PE whose subdomain touches
//! it, `K_ij` resident wherever both nodes reside (assembled from local
//! elements only), and one message per neighbor pair each way carrying
//! 3 words per shared node. Its numerical output is bit-for-bit comparable
//! with a sequential global SMVP, and its message sizes reproduce the
//! `C_i`/`B_i` counts of [`quake_partition::comm::CommAnalysis`].

use quake_fem::assembly::MaterialField;
use quake_fem::elasticity::{element_stiffness, DegenerateElement};
use quake_mesh::mesh::TetMesh;
use quake_partition::partition::Partition;
use quake_sparse::bcsr::{Bcsr3, Bcsr3Builder};
use quake_sparse::dense::Vec3;
use std::collections::HashMap;

/// One PE's share of the distributed system.
#[derive(Debug, Clone)]
pub struct LocalSubdomain {
    /// Sorted global ids of the nodes residing on this PE.
    pub global_nodes: Vec<usize>,
    /// Local stiffness matrix over local node indices (contributions from
    /// this PE's elements only).
    pub stiffness: Bcsr3,
}

impl LocalSubdomain {
    /// Number of local (possibly replicated) nodes.
    pub fn node_count(&self) -> usize {
        self.global_nodes.len()
    }

    /// Flops of this PE's local SMVP (`F_i = 2·m_i`).
    pub fn smvp_flops(&self) -> u64 {
        self.stiffness.smvp_flops()
    }
}

/// A message exchanged between two PEs during the communication phase.
#[derive(Debug, Clone)]
pub(crate) struct Exchange {
    pub(crate) a: usize,
    pub(crate) b: usize,
    /// `(local index on a, local index on b)` for each shared node.
    pub(crate) pairs: Vec<(usize, usize)>,
}

/// The distributed SMVP system: one subdomain per PE plus the exchange
/// schedule.
#[derive(Debug, Clone)]
pub struct DistributedSystem {
    subdomains: Vec<LocalSubdomain>,
    exchanges: Vec<Exchange>,
    node_count: usize,
}

impl DistributedSystem {
    /// Builds local matrices and the exchange schedule from a partitioned
    /// mesh.
    ///
    /// # Errors
    ///
    /// Returns [`DegenerateElement`] if any element cannot be integrated.
    ///
    /// # Panics
    ///
    /// Panics if `partition` does not match `mesh`.
    pub fn build<F: MaterialField>(
        mesh: &TetMesh,
        partition: &Partition,
        field: &F,
    ) -> Result<Self, DegenerateElement> {
        assert_eq!(
            partition.assignments().len(),
            mesh.element_count(),
            "partition does not match mesh"
        );
        let p = partition.parts();
        // Local node lists (sorted because node ids ascend) and g→l maps.
        let mut global_nodes: Vec<Vec<usize>> = vec![Vec::new(); p];
        for v in 0..mesh.node_count() {
            for &q in partition.node_pes(v) {
                global_nodes[q].push(v);
            }
        }
        let g2l: Vec<HashMap<usize, usize>> = global_nodes
            .iter()
            .map(|nodes| nodes.iter().enumerate().map(|(l, &g)| (g, l)).collect())
            .collect();
        // Local assembly from each PE's own elements.
        let mut builders: Vec<Bcsr3Builder> = global_nodes
            .iter()
            .map(|n| Bcsr3Builder::new(n.len()))
            .collect();
        for (e, &q) in partition.assignments().iter().enumerate() {
            let tet = mesh.tetra(e);
            let mat = field.material(mesh, e);
            let ke = element_stiffness(&tet, mat.lambda(), mat.mu())?;
            let conn = mesh.elements()[e];
            for (a, &ga) in conn.iter().enumerate() {
                let la = g2l[q][&ga];
                for (b, &gb) in conn.iter().enumerate() {
                    let lb = g2l[q][&gb];
                    builders[q].add_block(la, lb, ke[a][b]);
                }
            }
        }
        let subdomains: Vec<LocalSubdomain> = builders
            .into_iter()
            .zip(global_nodes)
            .map(|(b, nodes)| LocalSubdomain {
                global_nodes: nodes,
                stiffness: b.build(),
            })
            .collect();
        // Exchange schedule: for every node shared by several PEs, each
        // unordered pair of sharers exchanges that node's values.
        let mut pair_map: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
        for v in 0..mesh.node_count() {
            let pes = partition.node_pes(v);
            for (ai, &a) in pes.iter().enumerate() {
                for &b in &pes[ai + 1..] {
                    pair_map
                        .entry((a, b))
                        .or_default()
                        .push((g2l[a][&v], g2l[b][&v]));
                }
            }
        }
        let mut exchanges: Vec<Exchange> = pair_map
            .into_iter()
            .map(|((a, b), pairs)| Exchange { a, b, pairs })
            .collect();
        exchanges.sort_by_key(|e| (e.a, e.b));
        Ok(DistributedSystem {
            subdomains,
            exchanges,
            node_count: mesh.node_count(),
        })
    }

    /// The per-PE subdomains.
    pub fn subdomains(&self) -> &[LocalSubdomain] {
        &self.subdomains
    }

    /// The pairwise exchange schedule (for the instrumented executor).
    pub(crate) fn exchanges(&self) -> &[Exchange] {
        &self.exchanges
    }

    /// Total mesh nodes of the global system.
    pub fn global_nodes(&self) -> usize {
        self.node_count
    }

    /// Number of PEs.
    pub fn parts(&self) -> usize {
        self.subdomains.len()
    }

    /// Words of one message between `a` and `b` (3 per shared node), or 0
    /// if they share nothing.
    pub fn message_words(&self, a: usize, b: usize) -> u64 {
        let key = (a.min(b), a.max(b));
        self.exchanges
            .iter()
            .find(|e| (e.a, e.b) == key)
            .map(|e| 3 * e.pairs.len() as u64)
            .unwrap_or(0)
    }

    /// Executes one distributed SMVP for a *global* input vector (one
    /// [`Vec3`] per mesh node) and returns the summed global result.
    ///
    /// The computation phase runs each PE's local product over its
    /// replicated `x` values; the communication phase exchanges partial `y`
    /// sums pairwise and adds them, exactly as §2.3 describes.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the mesh node count.
    pub fn smvp(&self, x: &[Vec3]) -> Vec<Vec3> {
        assert_eq!(x.len(), self.node_count, "x length must match mesh nodes");
        // Computation phase: local products on replicated x, in place over
        // one reusable gather buffer (no per-subdomain spmv_alloc).
        let mut partials: Vec<Vec<Vec3>> = self
            .subdomains
            .iter()
            .map(|sd| vec![Vec3::ZERO; sd.node_count()])
            .collect();
        let mut x_local: Vec<Vec3> = Vec::new();
        for (sd, part) in self.subdomains.iter().zip(partials.iter_mut()) {
            x_local.clear();
            x_local.extend(sd.global_nodes.iter().map(|&g| x[g]));
            sd.stiffness
                .spmv(&x_local, part)
                .expect("local dimensions consistent by construction");
        }
        // Communication phase: exchange original partials and sum. Snapshot
        // the partials first so multi-way shared nodes accumulate each
        // sharer's contribution exactly once.
        let snapshot = partials.clone();
        for ex in &self.exchanges {
            for &(la, lb) in &ex.pairs {
                partials[ex.a][la] += snapshot[ex.b][lb];
                partials[ex.b][lb] += snapshot[ex.a][la];
            }
        }
        // Fold replicated results into the global vector, checking that all
        // replicas agree.
        let mut y = vec![Vec3::ZERO; self.node_count];
        let mut written = vec![false; self.node_count];
        for (sd, part) in self.subdomains.iter().zip(&partials) {
            for (l, &g) in sd.global_nodes.iter().enumerate() {
                if written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    written[g] = true;
                }
            }
        }
        debug_assert!(written.iter().all(|&w| w), "every node resides somewhere");
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AppConfig, QuakeApp};
    use quake_fem::assembly::{assemble, UniformMaterial};
    use quake_mesh::ground::Material;
    use quake_partition::comm::CommAnalysis;
    use quake_partition::geometric::{Partitioner, RecursiveBisection};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mat() -> Material {
        Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        }
    }

    fn setup(parts: usize) -> (TetMesh, Partition, DistributedSystem) {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap();
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, parts)
            .unwrap();
        let sys = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat())).unwrap();
        (app.mesh, partition, sys)
    }

    #[test]
    fn distributed_smvp_matches_sequential() {
        let (mesh, _, sys) = setup(8);
        let global = assemble(&mesh, &UniformMaterial(mat())).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec3> = (0..mesh.node_count())
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let seq = global.stiffness.spmv_alloc(&x).unwrap();
        let dist = sys.smvp(&x);
        let scale: f64 = seq.iter().map(|v| v.norm()).fold(0.0, f64::max);
        for (i, (a, b)) in seq.iter().zip(&dist).enumerate() {
            assert!(
                (*a - *b).norm() <= 1e-10 * (1.0 + scale),
                "node {i}: sequential {a} vs distributed {b}"
            );
        }
    }

    #[test]
    fn message_sizes_match_comm_analysis() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(
                        sys.message_words(a, b),
                        analysis.traffic(a, b),
                        "traffic mismatch between {a} and {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn local_flops_match_comm_analysis() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        for (q, sd) in sys.subdomains().iter().enumerate() {
            assert_eq!(
                sd.smvp_flops(),
                analysis.per_pe()[q].flops,
                "flop count mismatch on PE {q}"
            );
        }
    }

    #[test]
    fn single_pe_degenerates_to_sequential() {
        let (mesh, _, _) = setup(2);
        let partition = RecursiveBisection::inertial().partition(&mesh, 1).unwrap();
        let sys = DistributedSystem::build(&mesh, &partition, &UniformMaterial(mat())).unwrap();
        assert_eq!(sys.parts(), 1);
        assert_eq!(sys.message_words(0, 0), 0);
        let global = assemble(&mesh, &UniformMaterial(mat())).unwrap();
        let x = vec![Vec3::new(1.0, -1.0, 0.5); mesh.node_count()];
        let seq = global.stiffness.spmv_alloc(&x).unwrap();
        let dist = sys.smvp(&x);
        for (a, b) in seq.iter().zip(&dist) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn replication_counts() {
        let (mesh, partition, sys) = setup(8);
        let total_local: usize = sys.subdomains().iter().map(|s| s.node_count()).sum();
        let expected: usize = (0..mesh.node_count())
            .map(|v| partition.node_pes(v).len())
            .sum();
        assert_eq!(total_local, expected);
        assert!(
            total_local > mesh.node_count(),
            "shared nodes are replicated"
        );
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let (_, _, sys) = setup(2);
        let _ = sys.smvp(&[Vec3::ZERO]);
    }
}
