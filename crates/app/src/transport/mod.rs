//! Pluggable ghost-block transport for the BSP executor.
//!
//! Every exchange the executor performs — barrier schedule, latency-hiding
//! overlap schedule, and the chaos layer's staged, checksummed fetches —
//! moves whole *ghost blocks* (one packed `Vec3` block per directed
//! neighbor edge per step). The [`Transport`] trait captures exactly that
//! contract: a sender **posts** the packed block for a directed edge, a
//! receiver **acquires** it (blocking until posted), checksums ride along
//! for receiver-side **verify**, and `shutdown` tears the fabric down. The
//! executor is written against this trait alone, so the same schedules,
//! fault/recovery machinery and telemetry spans run unchanged over:
//!
//! * [`SharedTransport`] — the in-process path: per-edge double-buffered
//!   mailboxes in shared memory, synchronized by Release/Acquire flags.
//!   This is the pre-existing `WorkerPool` execution model with the ghost
//!   hand-off made explicit.
//! * [`NetsimTransport`] — the same mailboxes plus the netsim cost model:
//!   every acquired block is billed `T_l + words·T_w` against a preset
//!   [`Network`](quake_core::machine::Network), so a run reports what the
//!   paper's postal model *predicts* the exchange should have cost.
//! * [`proc::ProcLink`] — a real multi-process backend: shard processes
//!   connected by Unix-domain sockets, ghost blocks as length-prefixed
//!   frames ([`frame`]), and Eq. (2) parameters *measured* from socket
//!   ping/throughput microbenchmarks instead of presets.
//!
//! # Wait contract
//!
//! Every blocking acquire — on a shared-memory flag or a socket-fed
//! mailbox slot — escalates identically: a short spin catches the
//! cache-hot hand-off, a few yields catch a runnable producer, then
//! exponentially growing sleeps (5 µs doubling to a 160 µs cap) take the
//! waiter off the runqueue. [`wait_action`] is that schedule as a pure
//! function, shared by every backend and unit-tested directly, so the
//! socket path provably mirrors the shared-memory path's spin→yield→sleep
//! contract.
//!
//! # Step parity and replay
//!
//! Mailbox slots are double-buffered by step parity: step `s` lands in
//! slot `s % 2`. A sender is never more than one step ahead of a receiver
//! on the same edge (its own acquire of step `s` gates its post of
//! `s + 2`), so a slot is never overwritten before its reader is done.
//! Posted flags advance monotonically (`fetch_max`), which makes the
//! chaos layer's checkpoint/replay loop safe: a replayed step re-posts
//! bitwise-identical blocks (each SMVP step is a pure function of the
//! run's constant `x`) and never regresses a flag a remote reader already
//! observed.

use quake_core::fault::BlockChecksum;
use quake_core::machine::Network;
use quake_core::model::maxrate;
use quake_sparse::dense::Vec3;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod frame;
pub mod proc;
pub mod run;
pub mod wire;

/// Which transport fabric carries the ghost blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process shared-memory mailboxes (the `WorkerPool` path).
    Shared,
    /// Shared mailboxes plus the netsim postal-model cost accounting.
    Netsim,
    /// Shard processes over Unix-domain sockets.
    Proc,
}

impl TransportKind {
    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Shared => "shared",
            TransportKind::Netsim => "netsim",
            TransportKind::Proc => "proc",
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "shared" => Ok(TransportKind::Shared),
            "netsim" => Ok(TransportKind::Netsim),
            "proc" => Ok(TransportKind::Proc),
            other => Err(format!("unknown transport '{other}'")),
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors surfaced by a transport backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No such directed edge in the exchange schedule.
    UnknownEdge {
        /// Sending PE.
        from: usize,
        /// Receiving PE.
        to: usize,
    },
    /// The posted block's length does not match the edge schedule.
    LengthMismatch {
        /// Expected `Vec3` count.
        expected: usize,
        /// Offered `Vec3` count.
        got: usize,
    },
    /// An acquire exceeded its deadline with the peer still alive.
    Timeout {
        /// Sending PE waited on.
        from: usize,
        /// Receiving PE.
        to: usize,
        /// Step waited for.
        step: u64,
        /// Seconds spent waiting.
        waited_s: u64,
    },
    /// The peer process owning the sender side died or closed its socket.
    PeerDisconnected {
        /// The dead peer's shard id.
        shard: usize,
    },
    /// The peer held its connection open but stayed silent past every
    /// deadline and degraded-wait round — hung, not slow. Raised only
    /// after the heartbeat layer stopped hearing from it and the
    /// supervisor was given the chance to respawn it.
    PeerSuspect {
        /// The suspect peer's shard id.
        shard: usize,
        /// Seconds the peer has been silent.
        silent_s: u64,
    },
    /// A malformed frame on the wire (see [`frame::FrameError`]).
    Frame(frame::FrameError),
    /// A socket-level I/O failure.
    Io(String),
    /// The peer violated the bootstrap/result protocol.
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownEdge { from, to } => {
                write!(f, "no ghost edge {from} -> {to} in the exchange schedule")
            }
            TransportError::LengthMismatch { expected, got } => {
                write!(f, "ghost block length {got} != scheduled {expected}")
            }
            TransportError::Timeout {
                from,
                to,
                step,
                waited_s,
            } => write!(
                f,
                "acquire of edge {from} -> {to} timed out after {waited_s} s at step {step}"
            ),
            TransportError::PeerDisconnected { shard } => {
                write!(f, "shard {shard} disconnected (peer process died)")
            }
            TransportError::PeerSuspect { shard, silent_s } => {
                write!(
                    f,
                    "shard {shard} suspected hung (silent for {silent_s} s past every deadline)"
                )
            }
            TransportError::Frame(e) => write!(f, "frame error: {e}"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Protocol(e) => write!(f, "transport protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<frame::FrameError> for TransportError {
    fn from(e: frame::FrameError) -> Self {
        TransportError::Frame(e)
    }
}

/// The postal-model parameters a transport runs at: Eq. (2)'s block
/// latency `T_l` and per-word time `T_w`, and whether they were measured
/// on the live fabric or taken from a preset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Block latency, seconds.
    pub t_l: f64,
    /// Per-64-bit-word time, seconds.
    pub t_w: f64,
    /// `true` if measured by a microbenchmark on this run's fabric,
    /// `false` for a model preset (or the shared path's nominal zeros).
    pub measured: bool,
}

/// What an acquire observed: how long it blocked and the sender-side
/// checksum that [`Transport::verify`] checks the staged copy against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquireInfo {
    /// Seconds spent blocked waiting for the post (0.0 when already up).
    pub waited_s: f64,
    /// FNV-1a checksum the sender computed over the block at post time.
    pub checksum: u64,
}

/// One directed edge of the ghost-exchange schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostEdge {
    /// Sending PE.
    pub from: usize,
    /// Receiving PE.
    pub to: usize,
    /// Block length in `Vec3` entries (3 words each).
    pub len: usize,
}

/// The directed ghost-edge schedule of a distributed system, in the
/// canonical order both ends of every transport agree on.
pub fn ghost_edges(system: &crate::distributed::DistributedSystem) -> Vec<GhostEdge> {
    let mut edges = Vec::new();
    for ex in system.exchanges() {
        edges.push(GhostEdge {
            from: ex.b,
            to: ex.a,
            len: ex.pairs.len(),
        });
        edges.push(GhostEdge {
            from: ex.a,
            to: ex.b,
            len: ex.pairs.len(),
        });
    }
    edges
}

/// The PE → node map of a node-aware two-level exchange: PEs sharing a
/// node gather their boundary partials locally and exactly one merged
/// block per (node, node) pair crosses the slow inter-node link. `None`
/// at the call sites means flat — every PE is its own injection port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMap {
    nodes: usize,
    of: Vec<usize>,
}

impl NodeMap {
    /// A map from an explicit per-PE node vector.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero or any entry is out of range.
    pub fn new(nodes: usize, of: Vec<usize>) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(
            of.iter().all(|&n| n < nodes),
            "node index out of {nodes} nodes"
        );
        NodeMap { nodes, of }
    }

    /// The canonical map every backend agrees on: `parts` PEs chunk
    /// contiguously into `shards` shard slices (the proc backend's
    /// process boundaries) and shards chunk contiguously into `nodes`
    /// nodes, both under [`maxrate::node_of`]'s balanced chunking. The
    /// unsharded backends use the same `shards` value from the spec, so
    /// which PEs share an injection port never depends on the fabric.
    pub fn for_shards(parts: usize, shards: usize, nodes: usize) -> Self {
        let of = (0..parts)
            .map(|q| {
                let shard = maxrate::node_of(parts, shards, q);
                maxrate::node_of(shards, nodes, shard)
            })
            .collect();
        NodeMap { nodes, of }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of mapped PEs.
    pub fn pes(&self) -> usize {
        self.of.len()
    }

    /// The node owning PE `pe`.
    pub fn node_of(&self, pe: usize) -> usize {
        self.of[pe]
    }

    /// Whether two PEs share a node (and thus the fast intra-node path).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.of[a] == self.of[b]
    }
}

/// FNV-1a checksum of a ghost block, word by word — the same digest the
/// chaos layer's staged exchange has always used (x, y, z per entry).
pub fn block_checksum_vec3(block: &[Vec3]) -> u64 {
    let mut ck = BlockChecksum::new();
    for v in block {
        ck.write_f64(v.x);
        ck.write_f64(v.y);
        ck.write_f64(v.z);
    }
    ck.finish()
}

/// A transport carrying ghost blocks between PEs. Methods take `&self`:
/// pool workers post and acquire concurrently, so implementations use
/// interior mutability with per-edge single-writer discipline.
pub trait Transport: Send + Sync {
    /// Which fabric this is.
    fn kind(&self) -> TransportKind;

    /// Publishes the packed ghost block for directed edge `from -> to` at
    /// `step`. The block must match the edge's scheduled length.
    fn post(&self, step: u64, from: usize, to: usize, block: &[Vec3])
        -> Result<(), TransportError>;

    /// Blocks until the `from -> to` block for `step` is posted, then
    /// copies it into `out` and returns the wait time and sender checksum.
    fn acquire(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
    ) -> Result<AcquireInfo, TransportError>;

    /// A step-boundary hook. The in-process backends realize the BSP
    /// barrier through the pool broadcast itself and the socket backend
    /// through acquire dependencies, so the default is a no-op.
    fn barrier(&self, _step: u64) -> Result<(), TransportError> {
        Ok(())
    }

    /// Receiver-side integrity check of a staged block against the
    /// sender's posted checksum.
    fn verify(&self, block: &[Vec3], expected: u64) -> bool {
        block_checksum_vec3(block) == expected
    }

    /// The Eq. (2) parameters this fabric runs at.
    fn link(&self) -> LinkParams;

    /// Tears the fabric down (closes sockets, reaps peers). Idempotent.
    fn shutdown(&self) -> Result<(), TransportError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The shared wait contract.
// ---------------------------------------------------------------------------

/// What a blocked acquire does on its `round`-th failed poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitAction {
    /// Busy-spin (`spin_loop` hint) — the cache-hot hand-off window.
    Spin,
    /// `yield_now` — give a runnable producer the core.
    Yield,
    /// Sleep for the given duration — off the runqueue entirely.
    Sleep(Duration),
}

/// The escalation schedule every transport wait follows: spin for rounds
/// `0..128`, yield for `128..144`, then exponential sleeps starting at
/// 5 µs and doubling to a 160 µs cap. This is the executor's historical
/// `wait_for_post` contract, extracted so the socket backend provably
/// runs the same policy as the shared-memory flags.
pub fn wait_action(round: u32) -> WaitAction {
    if round < 128 {
        WaitAction::Spin
    } else if round < 144 {
        WaitAction::Yield
    } else {
        let exp = (round - 144).min(5);
        WaitAction::Sleep(Duration::from_micros(5 << exp))
    }
}

/// Polls `ready` under the [`wait_action`] escalation schedule until it
/// returns `true` (Ok: seconds waited) or `deadline` elapses (Err:
/// seconds waited). The deadline is only checked once the wait has
/// escalated past the spin phase, so the hot path stays clock-free.
pub fn escalating_wait(deadline: Duration, mut ready: impl FnMut() -> bool) -> Result<f64, f64> {
    if ready() {
        return Ok(0.0);
    }
    let t0 = Instant::now();
    let mut round = 0u32;
    while !ready() {
        match wait_action(round) {
            WaitAction::Spin => std::hint::spin_loop(),
            WaitAction::Yield => std::thread::yield_now(),
            WaitAction::Sleep(d) => {
                if t0.elapsed() >= deadline {
                    return Err(t0.elapsed().as_secs_f64());
                }
                std::thread::sleep(d);
            }
        }
        round += 1;
    }
    Ok(t0.elapsed().as_secs_f64())
}

/// The default acquire deadline, overridable (milliseconds) through
/// `QUAKE_TRANSPORT_TIMEOUT_MS` — tests shrink it to exercise the
/// timeout path without waiting half a minute.
pub fn default_timeout() -> Duration {
    std::env::var("QUAKE_TRANSPORT_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(30))
}

// ---------------------------------------------------------------------------
// The double-buffered mailbox shared by the in-process backends (and the
// proc backend's local + socket-fed slots).
// ---------------------------------------------------------------------------

/// One directed edge's mailbox: two step-parity slots, each a fixed-size
/// block buffer plus its sender checksum and a monotonic posted flag
/// (`step + 1` of the newest block in the slot).
struct Slot {
    posted: [AtomicU64; 2],
    checksum: [AtomicU64; 2],
    buf: [UnsafeCell<Vec<Vec3>>; 2],
}

/// Per-edge double-buffered ghost mailboxes. Single-writer per edge (the
/// owning sender PE's worker, or the one socket reader thread that feeds
/// the edge); readers are gated by the slot's Acquire-loaded posted flag,
/// which the writer stores with Release ordering after filling the
/// buffer — a reader that observes `posted >= step + 1` therefore also
/// observes the block bytes.
pub(crate) struct Mailbox {
    slots: Vec<Slot>,
    index: HashMap<(usize, usize), usize>,
    lens: Vec<usize>,
    timeout: Duration,
}

// SAFETY: see the struct docs — the UnsafeCell buffers follow a
// single-writer, flag-gated protocol.
unsafe impl Sync for Mailbox {}
unsafe impl Send for Mailbox {}

impl Mailbox {
    pub(crate) fn new(edges: &[GhostEdge], timeout: Duration) -> Self {
        let mut index = HashMap::with_capacity(edges.len());
        let mut slots = Vec::with_capacity(edges.len());
        let mut lens = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            index.insert((e.from, e.to), i);
            slots.push(Slot {
                posted: [AtomicU64::new(0), AtomicU64::new(0)],
                checksum: [AtomicU64::new(0), AtomicU64::new(0)],
                buf: [
                    UnsafeCell::new(vec![Vec3::ZERO; e.len]),
                    UnsafeCell::new(vec![Vec3::ZERO; e.len]),
                ],
            });
            lens.push(e.len);
        }
        Mailbox {
            slots,
            index,
            lens,
            timeout,
        }
    }

    fn edge(&self, from: usize, to: usize) -> Result<usize, TransportError> {
        self.index
            .get(&(from, to))
            .copied()
            .ok_or(TransportError::UnknownEdge { from, to })
    }

    pub(crate) fn post(
        &self,
        step: u64,
        from: usize,
        to: usize,
        block: &[Vec3],
    ) -> Result<u64, TransportError> {
        let i = self.edge(from, to)?;
        if block.len() != self.lens[i] {
            return Err(TransportError::LengthMismatch {
                expected: self.lens[i],
                got: block.len(),
            });
        }
        let checksum = block_checksum_vec3(block);
        self.deliver(i, step, block, checksum);
        Ok(checksum)
    }

    /// Writes a block (with its already-computed sender checksum) into the
    /// edge's parity slot and raises the posted flag. Used by `post` and
    /// by the proc backend's socket reader threads.
    pub(crate) fn deliver(&self, edge: usize, step: u64, block: &[Vec3], checksum: u64) {
        let slot = &self.slots[edge];
        let parity = (step % 2) as usize;
        // A delivery that skips ahead of everything this mailbox has seen
        // (a peer's cache replay into a freshly respawned shard, which
        // carries only the newest step per edge) must satisfy acquires of
        // *both* parities: by the constant-x replay invariant the bytes
        // are valid for every step, so mirror them into the other slot.
        let newest = slot.posted[0]
            .load(Ordering::Acquire)
            .max(slot.posted[1].load(Ordering::Acquire));
        // SAFETY: single writer per edge; readers are gated by `posted`.
        unsafe {
            (*slot.buf[parity].get()).copy_from_slice(block);
        }
        slot.checksum[parity].store(checksum, Ordering::Relaxed);
        // Monotonic: a replayed (older) step never regresses the flag, and
        // its bytes are identical by the constant-x replay invariant.
        slot.posted[parity].fetch_max(step + 1, Ordering::Release);
        if step > newest {
            let other = parity ^ 1;
            // SAFETY: same single-writer protocol as above.
            unsafe {
                (*slot.buf[other].get()).copy_from_slice(block);
            }
            slot.checksum[other].store(checksum, Ordering::Relaxed);
            // `step` is exactly "step - 1, the other parity, plus one".
            slot.posted[other].fetch_max(step, Ordering::Release);
        }
    }

    pub(crate) fn acquire(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
    ) -> Result<AcquireInfo, TransportError> {
        self.acquire_watch(step, from, to, out, || true)
    }

    /// `acquire`, aborting early (PeerDisconnected is diagnosed by the
    /// caller) when `alive` turns false.
    pub(crate) fn acquire_watch(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
        mut alive: impl FnMut() -> bool,
    ) -> Result<AcquireInfo, TransportError> {
        let i = self.edge(from, to)?;
        if out.len() != self.lens[i] {
            return Err(TransportError::LengthMismatch {
                expected: self.lens[i],
                got: out.len(),
            });
        }
        let slot = &self.slots[i];
        let parity = (step % 2) as usize;
        let flag = &slot.posted[parity];
        let mut dead = false;
        let waited_s = escalating_wait(self.timeout, || {
            if flag.load(Ordering::Acquire) > step {
                return true;
            }
            if !alive() {
                dead = true;
                return true;
            }
            false
        })
        .map_err(|waited| TransportError::Timeout {
            from,
            to,
            step,
            waited_s: waited as u64,
        })?;
        if dead && flag.load(Ordering::Acquire) < step + 1 {
            return Err(TransportError::PeerDisconnected { shard: usize::MAX });
        }
        // SAFETY: the Acquire load above pairs with the writer's Release
        // store; the writer will not touch this parity slot again before
        // our own step-parity progression allows it.
        unsafe {
            out.copy_from_slice(&*slot.buf[parity].get());
        }
        Ok(AcquireInfo {
            waited_s,
            checksum: slot.checksum[parity].load(Ordering::Relaxed),
        })
    }

    /// Merged-arrival acquire for node-aggregated fabrics: the cross-node
    /// block travels as one unit per (node, node) pair, so the acquire is
    /// gated on *every* edge of its group being posted for `step` before
    /// this edge's slot is copied out. Data, checksums and counters are
    /// untouched — only the wait semantics model the aggregation.
    ///
    /// Deadlock-free because the executor's exchange posts all outbound
    /// edges before acquiring any inbound one, and posting never blocks.
    pub(crate) fn acquire_group(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
        group: &[usize],
    ) -> Result<AcquireInfo, TransportError> {
        let i = self.edge(from, to)?;
        if out.len() != self.lens[i] {
            return Err(TransportError::LengthMismatch {
                expected: self.lens[i],
                got: out.len(),
            });
        }
        let parity = (step % 2) as usize;
        let waited_s = escalating_wait(self.timeout, || {
            group
                .iter()
                .all(|&g| self.slots[g].posted[parity].load(Ordering::Acquire) > step)
        })
        .map_err(|waited| TransportError::Timeout {
            from,
            to,
            step,
            waited_s: waited as u64,
        })?;
        let slot = &self.slots[i];
        // SAFETY: the group's Acquire loads pair with each writer's
        // Release store; our own edge's flag is among them.
        unsafe {
            out.copy_from_slice(&*slot.buf[parity].get());
        }
        Ok(AcquireInfo {
            waited_s,
            checksum: slot.checksum[parity].load(Ordering::Relaxed),
        })
    }
}

/// The directed (node, node) merged-arrival groups of an edge schedule:
/// `groups[i]` holds every edge index riding the same cross-node merged
/// block as edge `i`, or `None` for intra-node edges.
fn edge_groups(edges: &[GhostEdge], map: &NodeMap) -> Vec<Option<Arc<Vec<usize>>>> {
    let mut by_pair: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (i, e) in edges.iter().enumerate() {
        let (a, b) = (map.node_of(e.from), map.node_of(e.to));
        if a != b {
            by_pair.entry((a, b)).or_default().push(i);
        }
    }
    let by_pair: HashMap<(usize, usize), Arc<Vec<usize>>> =
        by_pair.into_iter().map(|(k, v)| (k, Arc::new(v))).collect();
    edges
        .iter()
        .map(|e| {
            let (a, b) = (map.node_of(e.from), map.node_of(e.to));
            (a != b).then(|| Arc::clone(&by_pair[&(a, b)]))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Backend (a): shared memory.
// ---------------------------------------------------------------------------

/// The in-process transport: ghost blocks cross PEs through shared-memory
/// mailboxes, the execution model the repo has always run.
///
/// With a [`NodeMap`], cross-node acquires are gated on the whole merged
/// (node, node) block being up (the hierarchical mailbox): PEs of one
/// node gather locally at full speed, while an inter-node block is only
/// observable once every edge riding it has been posted — the
/// shared-memory rendering of "one aggregated block crosses the slow
/// link". Data, checksums and counters are bitwise those of a flat run.
pub struct SharedTransport {
    mailbox: Mailbox,
    /// Per-edge merged-arrival group; `None` for intra-node (and all
    /// flat-run) edges.
    groups: Vec<Option<Arc<Vec<usize>>>>,
}

impl SharedTransport {
    /// A flat shared-memory fabric over the given edge schedule.
    pub fn new(edges: &[GhostEdge]) -> Self {
        SharedTransport {
            mailbox: Mailbox::new(edges, default_timeout()),
            groups: vec![None; edges.len()],
        }
    }

    /// A node-aggregated fabric: cross-node edges wait for their merged
    /// (node, node) block as one unit.
    pub fn with_nodes(edges: &[GhostEdge], map: &NodeMap) -> Self {
        SharedTransport {
            mailbox: Mailbox::new(edges, default_timeout()),
            groups: edge_groups(edges, map),
        }
    }
}

impl Transport for SharedTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Shared
    }

    fn post(
        &self,
        step: u64,
        from: usize,
        to: usize,
        block: &[Vec3],
    ) -> Result<(), TransportError> {
        self.mailbox.post(step, from, to, block).map(|_| ())
    }

    fn acquire(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
    ) -> Result<AcquireInfo, TransportError> {
        let i = self.mailbox.edge(from, to)?;
        match &self.groups[i] {
            Some(group) => self.mailbox.acquire_group(step, from, to, out, group),
            None => self.mailbox.acquire(step, from, to, out),
        }
    }

    fn link(&self) -> LinkParams {
        // Nominal: the shared path pays no modeled message cost.
        LinkParams {
            t_l: 0.0,
            t_w: 0.0,
            measured: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Backend (b): netsim cost model.
// ---------------------------------------------------------------------------

/// The netsim-model transport: data moves through the same shared
/// mailboxes (so outputs and counters are bitwise/exactly identical), and
/// every acquired block is additionally billed `T_l + words·T_w` against
/// a preset [`Network`] — the paper's postal model riding along with the
/// live run.
pub struct NetsimTransport {
    mailbox: Mailbox,
    network: Network,
    /// Modeled cost in nanoseconds per directed edge per step. Flat runs
    /// bill the postal model per block; node-aggregated runs bill
    /// intra-node edges at the fast local link and cross-node edges as
    /// their share of one merged (node, node) block — `T_l·w_e/W +
    /// w_e·T_w`, so the shares of a pair sum to exactly `T_l + W·T_w`.
    edge_cost_ns: Vec<u64>,
    /// Modeled exchange nanoseconds accumulated per receiving PE.
    modeled_ns: Vec<AtomicU64>,
}

impl NetsimTransport {
    /// A flat modeled fabric over the given edges with `pes` receiving
    /// PEs: every acquired block bills `T_l + words·T_w`.
    pub fn new(edges: &[GhostEdge], pes: usize, network: Network) -> Self {
        let edge_cost_ns = edges
            .iter()
            .map(|e| (network.block_transfer_time(3 * e.len as u64) * 1e9) as u64)
            .collect();
        NetsimTransport {
            mailbox: Mailbox::new(edges, default_timeout()),
            network,
            edge_cost_ns,
            modeled_ns: (0..pes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A node-aggregated modeled fabric with two-tier link billing:
    /// intra-node edges ride `local`, cross-node edges split one merged
    /// block per (node, node) pair over `network`.
    pub fn with_nodes(
        edges: &[GhostEdge],
        pes: usize,
        network: Network,
        local: Network,
        map: &NodeMap,
    ) -> Self {
        // Total merged words per directed (node, node) pair.
        let mut pair_words: HashMap<(usize, usize), u64> = HashMap::new();
        for e in edges {
            let (a, b) = (map.node_of(e.from), map.node_of(e.to));
            if a != b {
                *pair_words.entry((a, b)).or_default() += 3 * e.len as u64;
            }
        }
        let edge_cost_ns = edges
            .iter()
            .map(|e| {
                let (a, b) = (map.node_of(e.from), map.node_of(e.to));
                let words = 3 * e.len as u64;
                let cost_s = if a == b {
                    local.block_transfer_time(words)
                } else {
                    let total = pair_words[&(a, b)] as f64;
                    network.t_l * words as f64 / total + words as f64 * network.t_w
                };
                (cost_s * 1e9) as u64
            })
            .collect();
        NetsimTransport {
            mailbox: Mailbox::new(edges, default_timeout()),
            network,
            edge_cost_ns,
            modeled_ns: (0..pes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The preset network this model bills against.
    pub fn network(&self) -> Network {
        self.network
    }

    /// Modeled exchange seconds accumulated per PE (all steps).
    pub fn modeled_exchange_s(&self) -> Vec<f64> {
        self.modeled_ns
            .iter()
            .map(|ns| ns.load(Ordering::Relaxed) as f64 / 1e9)
            .collect()
    }
}

impl Transport for NetsimTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Netsim
    }

    fn post(
        &self,
        step: u64,
        from: usize,
        to: usize,
        block: &[Vec3],
    ) -> Result<(), TransportError> {
        self.mailbox.post(step, from, to, block).map(|_| ())
    }

    fn acquire(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
    ) -> Result<AcquireInfo, TransportError> {
        let i = self.mailbox.edge(from, to)?;
        let info = self.mailbox.acquire(step, from, to, out)?;
        if let Some(acc) = self.modeled_ns.get(to) {
            acc.fetch_add(self.edge_cost_ns[i], Ordering::Relaxed);
        }
        Ok(info)
    }

    fn link(&self) -> LinkParams {
        LinkParams {
            t_l: self.network.t_l,
            t_w: self.network.t_w,
            measured: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges2() -> Vec<GhostEdge> {
        vec![
            GhostEdge {
                from: 0,
                to: 1,
                len: 2,
            },
            GhostEdge {
                from: 1,
                to: 0,
                len: 2,
            },
        ]
    }

    #[test]
    fn wait_action_contract_is_spin_yield_sleep() {
        for round in 0..128 {
            assert_eq!(wait_action(round), WaitAction::Spin, "round {round}");
        }
        for round in 128..144 {
            assert_eq!(wait_action(round), WaitAction::Yield, "round {round}");
        }
        // Exponential sleeps: 5 µs doubling to the 160 µs cap.
        for (i, want_us) in [(0u32, 5u64), (1, 10), (2, 20), (3, 40), (4, 80), (5, 160)] {
            assert_eq!(
                wait_action(144 + i),
                WaitAction::Sleep(Duration::from_micros(want_us))
            );
        }
        for round in [150, 200, 1_000_000] {
            assert_eq!(
                wait_action(round),
                WaitAction::Sleep(Duration::from_micros(160)),
                "sleep must stay capped at round {round}"
            );
        }
    }

    #[test]
    fn escalating_wait_returns_immediately_when_ready() {
        assert_eq!(escalating_wait(Duration::from_secs(1), || true), Ok(0.0));
    }

    #[test]
    fn escalating_wait_times_out_against_a_never_ready_condition() {
        let waited =
            escalating_wait(Duration::from_millis(5), || false).expect_err("must time out");
        assert!(waited >= 0.005, "reported wait {waited} below the deadline");
        assert!(waited < 5.0, "timeout took absurdly long: {waited}");
    }

    #[test]
    fn mailbox_round_trips_blocks_with_checksums() {
        let mb = Mailbox::new(&edges2(), Duration::from_secs(1));
        let block = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(-4.0, 0.5, 9.0)];
        let ck = mb.post(0, 0, 1, &block).unwrap();
        assert_eq!(ck, block_checksum_vec3(&block));
        let mut out = [Vec3::ZERO; 2];
        let info = mb.acquire(0, 0, 1, &mut out).unwrap();
        assert_eq!(info.checksum, ck);
        assert_eq!(out[1].x.to_bits(), block[1].x.to_bits());
        // Unknown edges and wrong lengths are typed errors, not panics.
        assert!(matches!(
            mb.post(0, 0, 7, &block),
            Err(TransportError::UnknownEdge { .. })
        ));
        assert!(matches!(
            mb.post(0, 0, 1, &block[..1]),
            Err(TransportError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn mailbox_acquire_times_out_when_nothing_is_posted() {
        let mb = Mailbox::new(&edges2(), Duration::from_millis(5));
        let mut out = [Vec3::ZERO; 2];
        assert!(matches!(
            mb.acquire(3, 0, 1, &mut out),
            Err(TransportError::Timeout { step: 3, .. })
        ));
    }

    #[test]
    fn mailbox_parity_slots_hold_two_steps_in_flight() {
        let mb = Mailbox::new(&edges2(), Duration::from_secs(1));
        let b0 = [Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO];
        let b1 = [Vec3::new(2.0, 0.0, 0.0), Vec3::ZERO];
        mb.post(0, 0, 1, &b0).unwrap();
        mb.post(1, 0, 1, &b1).unwrap();
        let mut out = [Vec3::ZERO; 2];
        mb.acquire(0, 0, 1, &mut out).unwrap();
        assert_eq!(out[0].x, 1.0, "step 0 slot intact with step 1 posted");
        mb.acquire(1, 0, 1, &mut out).unwrap();
        assert_eq!(out[0].x, 2.0);
    }

    #[test]
    fn replayed_posts_never_regress_the_flag() {
        let mb = Mailbox::new(&edges2(), Duration::from_secs(1));
        let b = [Vec3::new(5.0, 5.0, 5.0), Vec3::ZERO];
        mb.post(4, 0, 1, &b).unwrap();
        // A checkpoint-replay re-post of step 2 (same parity) must not make
        // step 4 unacquirable.
        mb.post(2, 0, 1, &b).unwrap();
        let mut out = [Vec3::ZERO; 2];
        assert!(mb.acquire(4, 0, 1, &mut out).is_ok());
    }

    #[test]
    fn skip_ahead_deliveries_satisfy_both_parities() {
        // A respawned shard's fresh mailbox is fed by peer cache replay,
        // which carries only the newest step per edge. The replay must
        // unblock acquires of either parity, or the respawned shard would
        // deadlock replaying odd steps from an even-step cache entry.
        let mb = Mailbox::new(&edges2(), Duration::from_secs(1));
        let b = [Vec3::new(7.0, 8.0, 9.0), Vec3::ZERO];
        let ck = block_checksum_vec3(&b);
        mb.deliver(0, 5, &b, ck);
        let mut out = [Vec3::ZERO; 2];
        for step in 0..=5 {
            let info = mb
                .acquire(step, 0, 1, &mut out)
                .unwrap_or_else(|e| panic!("step {step} blocked: {e}"));
            assert_eq!(info.checksum, ck, "step {step}");
            assert_eq!(out[0].x.to_bits(), b[0].x.to_bits(), "step {step}");
        }
        // Steps past the replayed frontier still block.
        let mb2 = Mailbox::new(&edges2(), Duration::from_millis(5));
        mb2.deliver(0, 5, &b, ck);
        assert!(matches!(
            mb2.acquire(6, 0, 1, &mut out),
            Err(TransportError::Timeout { .. })
        ));
    }

    #[test]
    fn netsim_transport_bills_the_postal_model() {
        let net = Network::cray_t3e();
        let t = NetsimTransport::new(&edges2(), 2, net);
        let block = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        t.post(0, 0, 1, &block).unwrap();
        let mut out = [Vec3::ZERO; 2];
        t.acquire(0, 0, 1, &mut out).unwrap();
        let modeled = t.modeled_exchange_s();
        let expect = net.block_transfer_time(6);
        assert!((modeled[1] - expect).abs() < 1e-9, "{modeled:?}");
        assert_eq!(modeled[0], 0.0);
        assert!(!t.link().measured, "presets are not measurements");
    }

    /// Three PEs, nodes {0,1} and {2}: two cross-node edges into PE 2,
    /// one back, plus an intra-node pair.
    fn edges3() -> Vec<GhostEdge> {
        vec![
            GhostEdge {
                from: 0,
                to: 2,
                len: 2,
            },
            GhostEdge {
                from: 1,
                to: 2,
                len: 1,
            },
            GhostEdge {
                from: 2,
                to: 0,
                len: 2,
            },
            GhostEdge {
                from: 0,
                to: 1,
                len: 3,
            },
        ]
    }

    fn map3() -> NodeMap {
        NodeMap::new(2, vec![0, 0, 1])
    }

    #[test]
    fn node_map_for_shards_matches_shard_chunking() {
        // 10 PEs over 4 shards over 2 nodes: shards {0,1} are node 0.
        let m = NodeMap::for_shards(10, 4, 2);
        assert_eq!(m.nodes(), 2);
        assert_eq!(m.pes(), 10);
        for q in 0..10 {
            let shard = (0..4)
                .find(|&k| (10 * k / 4..10 * (k + 1) / 4).contains(&q))
                .unwrap();
            let node = if shard < 2 { 0 } else { 1 };
            assert_eq!(m.node_of(q), node, "pe {q} (shard {shard})");
        }
        assert!(m.same_node(0, 4));
        assert!(!m.same_node(4, 5));
        // One PE per node degenerates to the identity.
        let flat = NodeMap::for_shards(4, 4, 4);
        for q in 0..4 {
            assert_eq!(flat.node_of(q), q);
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn node_map_rejects_zero_nodes() {
        let _ = NodeMap::new(0, vec![]);
    }

    #[test]
    fn edge_groups_split_cross_from_intra() {
        let groups = edge_groups(&edges3(), &map3());
        // Edges 0 and 1 ride the same (0 -> 1) merged block.
        let g01 = groups[0].as_ref().expect("cross edge grouped");
        assert_eq!(g01.as_slice(), &[0, 1]);
        assert!(Arc::ptr_eq(g01, groups[1].as_ref().unwrap()));
        // Edge 2 is the lone (1 -> 0) block; edge 3 is intra-node.
        assert_eq!(groups[2].as_ref().unwrap().as_slice(), &[2]);
        assert!(groups[3].is_none());
    }

    #[test]
    fn grouped_acquire_waits_for_the_whole_merged_block() {
        let t = Arc::new(SharedTransport::with_nodes(&edges3(), &map3()));
        let b02 = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        let b12 = [Vec3::new(-7.0, 8.0, -9.0)];
        t.post(0, 0, 2, &b02).unwrap();
        // Only half the merged block is up: the acquire must keep
        // blocking until the straggler edge posts.
        let t2 = Arc::clone(&t);
        let poster = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            t2.post(0, 1, 2, &b12).unwrap();
        });
        let mut out = [Vec3::ZERO; 2];
        let info = t.acquire(0, 0, 2, &mut out).unwrap();
        poster.join().unwrap();
        assert!(
            info.waited_s >= 0.02,
            "acquire returned before the merged block was whole (waited {} s)",
            info.waited_s
        );
        // Data and checksum are the flat run's, bit for bit.
        assert_eq!(out[1].z.to_bits(), b02[1].z.to_bits());
        assert_eq!(info.checksum, block_checksum_vec3(&b02));
        // The second rider of the now-complete block returns immediately.
        let mut out1 = [Vec3::ZERO; 1];
        let info1 = t.acquire(0, 1, 2, &mut out1).unwrap();
        assert_eq!(info1.waited_s, 0.0);
        assert_eq!(out1[0].x.to_bits(), b12[0].x.to_bits());
        // Intra-node edges never gate on the cross-node group.
        let b01 = [Vec3::ZERO; 3];
        t.post(0, 0, 1, &b01).unwrap();
        let mut out01 = [Vec3::ZERO; 3];
        assert_eq!(t.acquire(0, 0, 1, &mut out01).unwrap().waited_s, 0.0);
    }

    #[test]
    fn netsim_two_tier_billing_sums_to_one_merged_block() {
        let slow = Network {
            name: "slow",
            t_l: 20e-6,
            t_w: 50e-9,
        };
        let fast = Network {
            name: "fast",
            t_l: 2e-6,
            t_w: 5e-9,
        };
        let t = NetsimTransport::with_nodes(&edges3(), 3, slow, fast, &map3());
        let b02 = [Vec3::ZERO; 2];
        let b12 = [Vec3::ZERO; 1];
        let b01 = [Vec3::ZERO; 3];
        t.post(0, 0, 2, &b02).unwrap();
        t.post(0, 1, 2, &b12).unwrap();
        t.post(0, 0, 1, &b01).unwrap();
        let mut o2 = [Vec3::ZERO; 2];
        let mut o1 = [Vec3::ZERO; 1];
        let mut o3 = [Vec3::ZERO; 3];
        t.acquire(0, 0, 2, &mut o2).unwrap();
        t.acquire(0, 1, 2, &mut o1).unwrap();
        t.acquire(0, 0, 1, &mut o3).unwrap();
        let modeled = t.modeled_exchange_s();
        // PE 2 drained one merged block of 6 + 3 = 9 words: exactly one
        // slow latency plus nine slow word times, not two latencies.
        let merged = slow.t_l + 9.0 * slow.t_w;
        assert!(
            (modeled[2] - merged).abs() < 2e-9,
            "merged billing {} != {merged}",
            modeled[2]
        );
        // PE 1's inbound edge is intra-node: fast-link postal cost.
        let intra = fast.t_l + 9.0 * fast.t_w;
        assert!(
            (modeled[1] - intra).abs() < 2e-9,
            "intra billing {} != {intra}",
            modeled[1]
        );
        // A flat fabric over the same edges pays two slow latencies in.
        let flat = NetsimTransport::new(&edges3(), 3, slow);
        flat.post(0, 0, 2, &b02).unwrap();
        flat.post(0, 1, 2, &b12).unwrap();
        flat.acquire(0, 0, 2, &mut o2).unwrap();
        flat.acquire(0, 1, 2, &mut o1).unwrap();
        let flat_cost = flat.modeled_exchange_s()[2];
        assert!(
            flat_cost > modeled[2] + slow.t_l * 0.9,
            "aggregation must shave a whole block latency: flat {flat_cost}, merged {}",
            modeled[2]
        );
    }

    #[test]
    fn shared_transport_verifies_checksums() {
        let t = SharedTransport::new(&edges2());
        let block = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        t.post(7, 1, 0, &block).unwrap();
        let mut out = [Vec3::ZERO; 2];
        let info = t.acquire(7, 1, 0, &mut out).unwrap();
        assert!(t.verify(&out, info.checksum));
        out[0].x = -out[0].x;
        assert!(!t.verify(&out, info.checksum), "tampering must be caught");
    }
}
