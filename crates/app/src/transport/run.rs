//! Spec-driven run construction shared by every transport host.
//!
//! The proc backend's shard children rebuild the *entire* problem from a
//! [`RunSpec`] — mesh generation, partitioning, assembly and the input
//! vector are all pure functions of the spec, so only ghost blocks and
//! results ever cross a socket. The same builder drives the in-process
//! backends, which is what makes the cross-transport conformance suite
//! meaningful: every backend runs the bitwise-identical problem.

use super::wire::RunSpec;
use super::{
    ghost_edges, proc, LinkParams, NetsimTransport, NodeMap, SharedTransport, Transport,
    TransportKind,
};
use crate::distributed::DistributedSystem;
use crate::executor::{BspExecutor, ExecutionReport};
use crate::family::{AppConfig, QuakeApp};
use quake_core::fault::{FaultPlan, FaultRates, RecoveryPolicy};
use quake_core::machine::Network;
use quake_core::telemetry::{ShardTrace, TelemetryConfig};
use quake_fem::assembly::UniformMaterial;
use quake_mesh::ground::Material;
use quake_partition::geometric::Partitioner;
use quake_partition::partition::Partition;
use quake_sparse::dense::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A fully constructed problem instance: everything deterministic that a
/// run needs, before any transport is chosen.
pub struct Built {
    /// The generated application (mesh + ground model).
    pub app: QuakeApp,
    /// The element partition every PE count derives from.
    pub partition: Partition,
    /// The executable distributed system.
    pub system: DistributedSystem,
    /// The global input vector.
    pub x: Vec<Vec3>,
}

/// What one transport run produced, in transport-independent shape.
pub struct RunOutput {
    /// The folded global product after the last step.
    pub y: Vec<Vec3>,
    /// The measurement report (proc: merged across shard processes).
    pub report: ExecutionReport,
    /// Per-PE boundary-row counts when the overlap schedule ran.
    pub boundary_rows: Option<Vec<usize>>,
    /// The Eq. (2) parameters the fabric ran at (proc: measured).
    pub link: LinkParams,
    /// Netsim only: modeled exchange seconds per PE over all steps.
    pub modeled_exchange_s: Option<Vec<f64>>,
    /// Proc only: supervisor-observed recovery incidents (suspects,
    /// shard respawns, stall announcements), in wall-clock order.
    pub incidents: Vec<Incident>,
    /// Proc + trace only: every shard's telemetry snapshot with its
    /// handshake-measured clock offset, ready for the trace merger. One
    /// entry per shard generation that finished a run attempt.
    pub shard_telemetry: Vec<ShardTrace>,
    /// Proc only: per-shard wire/chaos ledgers as `(shard, generation,
    /// report)`, for shard-labeled Prometheus series.
    pub shard_faults: Vec<(usize, u32, quake_core::fault::FaultReport)>,
}

/// One supervisor-observed recovery event on the proc fabric, stamped
/// relative to the ensemble's Go.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Seconds since the ensemble released the shards.
    pub t_s: f64,
    /// What happened: `wire-stall`, `suspect`, `shard-respawn`,
    /// `ensemble-restart`.
    pub kind: &'static str,
    /// The shard the event concerns.
    pub shard: usize,
}

/// The partitioner registry, keyed by the CLI spelling.
///
/// # Errors
///
/// Returns a message naming the unknown partitioner.
pub fn partitioner(name: &str) -> Result<Box<dyn Partitioner>, String> {
    use quake_partition::geometric::{LinearPartition, RandomPartition, RecursiveBisection};
    use quake_partition::sfc::MortonPartition;
    use quake_partition::spectral::SpectralBisection;
    Ok(match name {
        "rib" => Box::new(RecursiveBisection::inertial()),
        "rcb" => Box::new(RecursiveBisection::coordinate()),
        "spectral" => Box::new(SpectralBisection::default()),
        "morton" => Box::new(MortonPartition),
        "linear" => Box::new(LinearPartition),
        "random" => Box::new(RandomPartition { seed: 1 }),
        other => return Err(format!("unknown partitioner '{other}'")),
    })
}

/// The deterministic input vector for a spec: the CLI's trig formula, or a
/// seeded uniform sample for conformance runs.
///
/// # Errors
///
/// Returns a message on an unknown `x_kind`.
pub fn make_x(spec: &RunSpec, nodes: usize) -> Result<Vec<Vec3>, String> {
    match spec.x_kind.as_str() {
        "trig" => Ok((0..nodes)
            .map(|i| {
                let s = i as f64;
                Vec3::new((0.1 * s).sin(), (0.2 * s).cos(), (0.3 * s).sin())
            })
            .collect()),
        "rng" => {
            let mut rng = StdRng::seed_from_u64(spec.x_seed);
            Ok((0..nodes)
                .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
                .collect())
        }
        other => Err(format!("unknown x_kind '{other}'")),
    }
}

/// Builds the full problem instance a spec describes. Mirrors the
/// `smvp-run` command's construction path exactly — a shard child calling
/// this reproduces the parent's mesh, partition and matrices bit for bit.
///
/// # Errors
///
/// Returns a message on an invalid spec or a generation failure.
pub fn build(spec: &RunSpec) -> Result<Built, String> {
    let mut config = AppConfig::new(format!("sf{}", spec.period), spec.period, spec.scale);
    config.seed = spec.seed;
    let app = QuakeApp::generate(config).map_err(|e| e.to_string())?;
    let strat = partitioner(&spec.partitioner)?;
    let partition = strat
        .partition(&app.mesh, spec.parts)
        .map_err(|e| e.to_string())?;
    let mat = Material {
        vs: app.ground.vs_rock,
        vp: 2.0 * app.ground.vs_rock,
        rho: 2600.0,
    };
    let system = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat))
        .map_err(|e| e.to_string())?;
    let x = make_x(spec, app.mesh.node_count())?;
    Ok(Built {
        app,
        partition,
        system,
        x,
    })
}

/// Arms the fault and telemetry layers on an executor per the spec —
/// shared by the in-process runner and the proc shard children so every
/// backend runs the same chaos plan and the same telemetry config.
///
/// # Errors
///
/// Returns a message on an unknown recovery policy.
pub(crate) fn arm(exec: &mut BspExecutor, spec: &RunSpec) -> Result<(), String> {
    arm_at(exec, spec, None)
}

/// [`arm`] with an explicit telemetry epoch: a proc shard child passes its
/// fabric origin so its span clock is the one the parent's handshake offset
/// measurement refers to.
pub(crate) fn arm_at(
    exec: &mut BspExecutor,
    spec: &RunSpec,
    epoch: Option<std::time::Instant>,
) -> Result<(), String> {
    exec.set_kernel(spec.kernel.parse()?);
    if spec.fault_rate > 0.0 {
        let policy: RecoveryPolicy = spec
            .recovery
            .parse()
            .map_err(|_| format!("unknown recovery policy '{}'", spec.recovery))?;
        let plan = FaultPlan::generate(
            spec.fault_seed,
            spec.steps,
            spec.parts,
            &FaultRates::uniform(spec.fault_rate),
        );
        exec.enable_faults(plan, policy, spec.checkpoint_every);
    }
    if spec.trace {
        let mut config = TelemetryConfig {
            span_capacity: spec.span_capacity,
            ..TelemetryConfig::default()
        };
        if let Some(d) = config.drift.as_mut() {
            d.threshold = spec.drift_threshold;
        }
        match epoch {
            Some(at) => exec.enable_telemetry_at(config, at),
            None => exec.enable_telemetry(config),
        }
    }
    if spec.nodes >= 1 && spec.aggregate {
        // Telemetry attribution only (gather spans, merged-block
        // histogram); the transports carry the actual aggregation.
        let map = NodeMap::for_shards(spec.parts, spec.shards, spec.nodes);
        let of: Vec<usize> = (0..spec.parts).map(|q| map.node_of(q)).collect();
        exec.set_node_map(&of);
    }
    Ok(())
}

/// Runs the spec over the chosen transport and returns the folded product
/// plus the merged report. `shared` and `netsim` run in-process over the
/// mailbox fabric; `proc` forks `spec.shards` shard processes connected
/// by Unix-domain sockets (see [`proc::run_parent`]).
///
/// # Errors
///
/// Returns a message on any build, protocol or child-process failure —
/// never panics on transport faults.
pub fn run_with(kind: TransportKind, spec: &RunSpec, built: &Built) -> Result<RunOutput, String> {
    if kind == TransportKind::Proc {
        return proc::run_parent(spec, built).map_err(|e| e.to_string());
    }
    let edges = ghost_edges(&built.system);
    let p = built.system.subdomains().len();
    // Node-aware runs swap in the aggregating fabrics; the executor's
    // schedule is identical either way (aggregation is transport-level).
    // `aggregate false` is the ablation arm: the node placement stays
    // (so an emulated wire still prices the same topology) but the
    // exchange runs flat.
    let node_map = (spec.nodes >= 1 && spec.aggregate)
        .then(|| NodeMap::for_shards(spec.parts, spec.shards, spec.nodes));
    let mut netsim: Option<Arc<NetsimTransport>> = None;
    let link: Arc<dyn Transport> = match kind {
        TransportKind::Shared => match &node_map {
            Some(map) => Arc::new(SharedTransport::with_nodes(&edges, map)),
            None => Arc::new(SharedTransport::new(&edges)),
        },
        TransportKind::Netsim => {
            let t = Arc::new(match &node_map {
                Some(map) => NetsimTransport::with_nodes(
                    &edges,
                    p,
                    Network::cray_t3e(),
                    Network::node_local(),
                    map,
                ),
                None => NetsimTransport::new(&edges, p, Network::cray_t3e()),
            });
            netsim = Some(Arc::clone(&t));
            t
        }
        TransportKind::Proc => unreachable!("handled above"),
    };
    let params = link.link();
    let mut exec = BspExecutor::with_transport(
        &built.system,
        spec.threads,
        spec.rcm,
        spec.overlap,
        0..p,
        link,
    );
    arm(&mut exec, spec)?;
    let y = exec.run(&built.x, spec.steps);
    Ok(RunOutput {
        y,
        report: exec.report(),
        boundary_rows: exec.overlap_boundary_rows().map(|b| b.to_vec()),
        link: params,
        modeled_exchange_s: netsim.map(|t| t.modeled_exchange_s()),
        incidents: Vec::new(),
        shard_telemetry: Vec::new(),
        shard_faults: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trig_x_matches_the_cli_formula() {
        let spec = RunSpec::default();
        let x = make_x(&spec, 4).unwrap();
        assert_eq!(x[3].x.to_bits(), (0.1f64 * 3.0).sin().to_bits());
        assert_eq!(x[3].y.to_bits(), (0.2f64 * 3.0).cos().to_bits());
    }

    #[test]
    fn rng_x_is_seed_deterministic() {
        let mut spec = RunSpec {
            x_kind: "rng".into(),
            x_seed: 7,
            ..RunSpec::default()
        };
        let a = make_x(&spec, 16).unwrap();
        let b = make_x(&spec, 16).unwrap();
        assert_eq!(a, b, "same seed, same vector");
        spec.x_seed = 8;
        assert_ne!(a, make_x(&spec, 16).unwrap(), "different seed differs");
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        assert!(partitioner("voronoi").is_err());
        let spec = RunSpec {
            x_kind: "zeros".into(),
            ..RunSpec::default()
        };
        assert!(make_x(&spec, 3).is_err());
    }

    #[test]
    fn shared_and_netsim_runners_agree_bitwise() {
        let spec = RunSpec {
            parts: 4,
            threads: 2,
            steps: 3,
            ..RunSpec::default()
        };
        let built = build(&spec).expect("sf10 builds");
        let a = run_with(TransportKind::Shared, &spec, &built).unwrap();
        let b = run_with(TransportKind::Netsim, &spec, &built).unwrap();
        assert_eq!(a.y.len(), b.y.len());
        for (u, v) in a.y.iter().zip(&b.y) {
            assert_eq!(u.x.to_bits(), v.x.to_bits());
            assert_eq!(u.y.to_bits(), v.y.to_bits());
            assert_eq!(u.z.to_bits(), v.z.to_bits());
        }
        assert_eq!(a.report.pe.len(), b.report.pe.len());
        for (u, v) in a.report.pe.iter().zip(&b.report.pe) {
            assert_eq!(u.flops, v.flops);
            assert_eq!(u.words_sent, v.words_sent);
            assert_eq!(u.words_received, v.words_received);
            assert_eq!(u.blocks_sent, v.blocks_sent);
            assert_eq!(u.blocks_received, v.blocks_received);
        }
        let modeled = b.modeled_exchange_s.expect("netsim models the exchange");
        assert!(modeled.iter().sum::<f64>() > 0.0, "postal model billed");
        assert!(!b.link.measured, "netsim runs a preset, not a measurement");
    }
}
