//! Wire formats for the proc transport: the run specification a parent
//! hands its shard children, and the payload codecs that ride inside
//! [`super::frame`] frames.
//!
//! Children never receive the mesh or matrix over the wire. They receive
//! a [`RunSpec`] — the full set of knobs `smvp-run` resolved — and
//! re-derive the identical `DistributedSystem` deterministically (mesh
//! generation, partitioning and assembly are all pure functions of the
//! spec). Only ghost blocks and final results cross the sockets.

use quake_core::fault::{FaultCounts, FaultReport};
use quake_sparse::dense::Vec3;

use super::TransportError;

// ---------------------------------------------------------------------------
// Byte-level helpers.
// ---------------------------------------------------------------------------

/// Little-endian payload writer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian payload reader with typed out-of-data errors.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        if self.pos + n > self.buf.len() {
            return Err(TransportError::Protocol(format!(
                "payload underrun: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a u32.
    pub fn u32(&mut self) -> Result<u32, TransportError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a u64.
    pub fn u64(&mut self) -> Result<u64, TransportError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 bit pattern.
    pub fn f64(&mut self) -> Result<f64, TransportError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// True when every byte has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Ghost-block payloads.
// ---------------------------------------------------------------------------

/// A decoded ghost payload: one posted block for one directed edge.
#[derive(Debug, Clone, PartialEq)]
pub struct GhostPayload {
    /// BSP step the block belongs to.
    pub step: u64,
    /// Sending PE.
    pub from: usize,
    /// Receiving PE.
    pub to: usize,
    /// The packed boundary partials.
    pub block: Vec<Vec3>,
}

/// Encodes a posted ghost block.
pub fn encode_ghost(step: u64, from: usize, to: usize, block: &[Vec3]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(step);
    w.u32(from as u32);
    w.u32(to as u32);
    w.u32(block.len() as u32);
    for v in block {
        w.f64(v.x);
        w.f64(v.y);
        w.f64(v.z);
    }
    w.finish()
}

/// Decodes a ghost payload.
///
/// # Errors
///
/// Returns [`TransportError::Protocol`] on a malformed payload.
pub fn decode_ghost(payload: &[u8]) -> Result<GhostPayload, TransportError> {
    let mut r = ByteReader::new(payload);
    let step = r.u64()?;
    let from = r.u32()? as usize;
    let to = r.u32()? as usize;
    let count = r.u32()? as usize;
    let mut block = Vec::with_capacity(count);
    for _ in 0..count {
        block.push(Vec3::new(r.f64()?, r.f64()?, r.f64()?));
    }
    if !r.exhausted() {
        return Err(TransportError::Protocol(
            "trailing bytes after ghost block".into(),
        ));
    }
    Ok(GhostPayload {
        step,
        from,
        to,
        block,
    })
}

// ---------------------------------------------------------------------------
// Merged node-level batches.
// ---------------------------------------------------------------------------

/// Encodes a merged node-level batch: several directed-edge ghost blocks
/// gathered on one node, crossing the slow link as one frame.
///
/// Layout: `count u32`, then per sub-block a manifest entry
/// `(step u64, from u32, to u32, len u32)` followed by the block words and
/// an FNV-1a digest of them ([`super::block_checksum_vec3`]). The frame
/// codec's whole-payload checksum guards the wire; the per-sub-block
/// digests let the receiver verify each constituent block independently —
/// the property the chaos layer's resend path relies on when a batch is
/// replayed after a corruption or reconnect.
pub fn encode_ghost_batch(subs: &[(u64, usize, usize, &[Vec3])]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(subs.len() as u32);
    for &(step, from, to, block) in subs {
        w.u64(step);
        w.u32(from as u32);
        w.u32(to as u32);
        w.u32(block.len() as u32);
        for v in block {
            w.f64(v.x);
            w.f64(v.y);
            w.f64(v.z);
        }
        w.u64(super::block_checksum_vec3(block));
    }
    w.finish()
}

/// Decodes a merged batch into its constituent ghost blocks, verifying
/// every sub-block digest.
///
/// # Errors
///
/// Returns [`TransportError::Protocol`] on a malformed payload or a
/// sub-block whose digest does not match its words.
pub fn decode_ghost_batch(payload: &[u8]) -> Result<Vec<GhostPayload>, TransportError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()? as usize;
    let mut subs = Vec::with_capacity(count.min(1 << 16));
    for i in 0..count {
        let step = r.u64()?;
        let from = r.u32()? as usize;
        let to = r.u32()? as usize;
        let len = r.u32()? as usize;
        let mut block = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            block.push(Vec3::new(r.f64()?, r.f64()?, r.f64()?));
        }
        let declared = r.u64()?;
        let got = super::block_checksum_vec3(&block);
        if got != declared {
            return Err(TransportError::Protocol(format!(
                "batch sub-block {i} ({from}->{to} step {step}) checksum \
                 mismatch: declared {declared:#018x}, got {got:#018x}"
            )));
        }
        subs.push(GhostPayload {
            step,
            from,
            to,
            block,
        });
    }
    if !r.exhausted() {
        return Err(TransportError::Protocol(
            "trailing bytes after ghost batch".into(),
        ));
    }
    Ok(subs)
}

// ---------------------------------------------------------------------------
// Child result payloads.
// ---------------------------------------------------------------------------

/// One owned PE's contribution to the merged run report.
#[derive(Debug, Clone, PartialEq)]
pub struct PeResult {
    /// Global node index per local slot (the PE's gather list, in the
    /// executor's possibly-renumbered local order).
    pub gather: Vec<usize>,
    /// The PE's post-exchange partials, same local order.
    pub exchanged: Vec<Vec3>,
    /// Counter snapshot: flops, words/blocks sent+received, phase times.
    pub counters: [u64; 5],
    /// Per-phase seconds: assemble, compute, exchange, barrier.
    pub times: [f64; 4],
    /// Boundary-row count when the overlap schedule ran.
    pub boundary_rows: Option<usize>,
}

/// A shard child's complete result bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// The reporting shard.
    pub shard: usize,
    /// First owned PE.
    pub pe_lo: usize,
    /// One past the last owned PE.
    pub pe_hi: usize,
    /// Phase wall-clocks as the shard saw them: assemble, compute,
    /// exchange, fold.
    pub phases: [f64; 4],
    /// Per owned PE, in PE order.
    pub pes: Vec<PeResult>,
    /// The shard's fault ledger, when the chaos layer was armed.
    pub fault: Option<FaultReport>,
}

fn encode_fault(w: &mut ByteWriter, fr: &FaultReport) {
    for c in [&fr.injected, &fr.detected, &fr.recovered] {
        w.u64(c.straggle);
        w.u64(c.drop);
        w.u64(c.corrupt);
        w.u64(c.crash);
    }
    for v in [
        fr.retries,
        fr.refetches,
        fr.replayed_steps,
        fr.checkpoints,
        fr.restores,
        fr.degraded_shards,
        fr.respawned_workers,
    ] {
        w.u64(v);
    }
    for c in [&fr.wire_injected, &fr.wire_detected, &fr.wire_recovered] {
        w.u64(c.corrupt);
        w.u64(c.truncate);
        w.u64(c.delay);
        w.u64(c.reset);
        w.u64(c.stall);
    }
    for v in [
        fr.wire_resends,
        fr.reconnects,
        fr.suspects,
        fr.respawned_shards,
        fr.ensemble_restarts,
    ] {
        w.u64(v);
    }
    for b in fr.wire_delay_us_hist {
        w.u64(b);
    }
    w.u64(fr.wire_delay_us_sum);
}

fn decode_fault(r: &mut ByteReader<'_>) -> Result<FaultReport, TransportError> {
    let mut counts = [FaultCounts::default(); 3];
    for c in counts.iter_mut() {
        c.straggle = r.u64()?;
        c.drop = r.u64()?;
        c.corrupt = r.u64()?;
        c.crash = r.u64()?;
    }
    let mut fr = FaultReport {
        injected: counts[0],
        detected: counts[1],
        recovered: counts[2],
        retries: r.u64()?,
        refetches: r.u64()?,
        replayed_steps: r.u64()?,
        checkpoints: r.u64()?,
        restores: r.u64()?,
        degraded_shards: r.u64()?,
        respawned_workers: r.u64()?,
        ..FaultReport::default()
    };
    for c in [
        &mut fr.wire_injected,
        &mut fr.wire_detected,
        &mut fr.wire_recovered,
    ] {
        c.corrupt = r.u64()?;
        c.truncate = r.u64()?;
        c.delay = r.u64()?;
        c.reset = r.u64()?;
        c.stall = r.u64()?;
    }
    fr.wire_resends = r.u64()?;
    fr.reconnects = r.u64()?;
    fr.suspects = r.u64()?;
    fr.respawned_shards = r.u64()?;
    fr.ensemble_restarts = r.u64()?;
    for b in fr.wire_delay_us_hist.iter_mut() {
        *b = r.u64()?;
    }
    fr.wire_delay_us_sum = r.u64()?;
    Ok(fr)
}

/// Encodes a shard's result bundle.
pub fn encode_result(res: &ShardResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(res.shard as u32);
    w.u32(res.pe_lo as u32);
    w.u32(res.pe_hi as u32);
    for p in res.phases {
        w.f64(p);
    }
    for pe in &res.pes {
        w.u32(pe.gather.len() as u32);
        for &g in &pe.gather {
            w.u32(g as u32);
        }
        for v in &pe.exchanged {
            w.f64(v.x);
            w.f64(v.y);
            w.f64(v.z);
        }
        for c in pe.counters {
            w.u64(c);
        }
        for t in pe.times {
            w.f64(t);
        }
        match pe.boundary_rows {
            Some(b) => {
                w.u32(1);
                w.u32(b as u32);
            }
            None => w.u32(0),
        }
    }
    match &res.fault {
        Some(fr) => {
            w.u32(1);
            encode_fault(&mut w, fr);
        }
        None => w.u32(0),
    }
    w.finish()
}

/// Decodes a shard's result bundle.
///
/// # Errors
///
/// Returns [`TransportError::Protocol`] on a malformed payload.
pub fn decode_result(payload: &[u8]) -> Result<ShardResult, TransportError> {
    let mut r = ByteReader::new(payload);
    let shard = r.u32()? as usize;
    let pe_lo = r.u32()? as usize;
    let pe_hi = r.u32()? as usize;
    if pe_hi < pe_lo || pe_hi - pe_lo > 1 << 20 {
        return Err(TransportError::Protocol(format!(
            "implausible owned range {pe_lo}..{pe_hi}"
        )));
    }
    let mut phases = [0.0; 4];
    for p in phases.iter_mut() {
        *p = r.f64()?;
    }
    let mut pes = Vec::with_capacity(pe_hi - pe_lo);
    for _ in pe_lo..pe_hi {
        let n = r.u32()? as usize;
        let mut gather = Vec::with_capacity(n);
        for _ in 0..n {
            gather.push(r.u32()? as usize);
        }
        let mut exchanged = Vec::with_capacity(n);
        for _ in 0..n {
            exchanged.push(Vec3::new(r.f64()?, r.f64()?, r.f64()?));
        }
        let mut counters = [0u64; 5];
        for c in counters.iter_mut() {
            *c = r.u64()?;
        }
        let mut times = [0.0f64; 4];
        for t in times.iter_mut() {
            *t = r.f64()?;
        }
        let boundary_rows = match r.u32()? {
            0 => None,
            _ => Some(r.u32()? as usize),
        };
        pes.push(PeResult {
            gather,
            exchanged,
            counters,
            times,
            boundary_rows,
        });
    }
    let fault = match r.u32()? {
        0 => None,
        _ => Some(decode_fault(&mut r)?),
    };
    if !r.exhausted() {
        return Err(TransportError::Protocol(
            "trailing bytes after shard result".into(),
        ));
    }
    Ok(ShardResult {
        shard,
        pe_lo,
        pe_hi,
        phases,
        pes,
        fault,
    })
}

// ---------------------------------------------------------------------------
// The run specification.
// ---------------------------------------------------------------------------

/// Everything a shard child needs to rebuild the run deterministically.
/// Serialized as `key value` lines in a spec file the parent writes to
/// the shard rendezvous directory.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Basin period (seconds) — sets the mesh name `sf<period>`.
    pub period: f64,
    /// Mesh refinement scale.
    pub scale: f64,
    /// Mesh generation seed.
    pub seed: u64,
    /// PE (subdomain) count.
    pub parts: usize,
    /// Worker threads per shard pool.
    pub threads: usize,
    /// BSP steps.
    pub steps: u64,
    /// Partitioner name (the CLI spelling).
    pub partitioner: String,
    /// Reverse Cuthill-McKee renumbering.
    pub rcm: bool,
    /// Latency-hiding overlap schedule.
    pub overlap: bool,
    /// Chaos layer rate (0 disarms it).
    pub fault_rate: f64,
    /// Fault plan seed.
    pub fault_seed: u64,
    /// Recovery policy (CLI spelling).
    pub recovery: String,
    /// Checkpoint interval for Restart recovery.
    pub checkpoint_every: u64,
    /// Arm the telemetry layer in each shard.
    pub trace: bool,
    /// Drift monitor threshold.
    pub drift_threshold: f64,
    /// Telemetry span ring capacity.
    pub span_capacity: usize,
    /// Shard process count for the proc transport.
    pub shards: usize,
    /// Input-vector generator: `trig` (the CLI's formula) or `rng`.
    pub x_kind: String,
    /// Seed for the `rng` input generator.
    pub x_seed: u64,
    /// Compute-phase microkernel (CLI spelling: `micro` or `micro-simd`).
    pub kernel: String,
    /// Connection deadline in seconds: bounds the bootstrap rendezvous,
    /// the steady-state peer-silence window, and the degraded wait while
    /// a shard respawns.
    pub conn_timeout: f64,
    /// Wire chaos rate (0 disarms the socket-stream injector).
    pub wire_fault_rate: f64,
    /// Wire fault sampler seed.
    pub wire_fault_seed: u64,
    /// How many times the supervisor may respawn each individual shard
    /// before falling back to the whole-ensemble retry (0 disables
    /// per-shard respawn entirely).
    pub restart_budget: u64,
    /// Node count for the two-level node-aware exchange: PEs/shards are
    /// chunked contiguously onto this many nodes and boundary partials are
    /// gathered intra-node before one merged block per (node, node) pair
    /// crosses the slow link. `0` (the legacy default) disables
    /// aggregation — the flat one-block-per-PE-pair exchange.
    pub nodes: usize,
    /// Whether a `nodes >= 1` topology actually aggregates (`true`, the
    /// default) or only places shards on nodes while the exchange stays
    /// flat (`false`) — the ablation arm for pricing aggregation against
    /// the identical placement.
    pub aggregate: bool,
    /// Emulated inter-node link latency in seconds (netem-style: every
    /// ghost frame between shards on *different* nodes is held this long
    /// on the sender before hitting the socket). `0` (default) leaves
    /// the raw socket; requires a `nodes >= 1` topology to take effect.
    pub wire_latency: f64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            period: 10.0,
            scale: 8.0,
            seed: 0x5eed,
            parts: 4,
            threads: 4,
            steps: 25,
            partitioner: "rib".into(),
            rcm: false,
            overlap: false,
            fault_rate: 0.0,
            fault_seed: 0,
            recovery: "restart".into(),
            checkpoint_every: 5,
            trace: false,
            drift_threshold: 2.0,
            span_capacity: 65_536,
            shards: 2,
            x_kind: "trig".into(),
            x_seed: 0,
            kernel: "micro".into(),
            conn_timeout: 30.0,
            wire_fault_rate: 0.0,
            wire_fault_seed: 0,
            restart_budget: 2,
            nodes: 0,
            aggregate: true,
            wire_latency: 0.0,
        }
    }
}

impl RunSpec {
    /// Serializes to `key value` lines. `{:?}` float formatting round
    /// trips f64 exactly.
    pub fn serialize(&self) -> String {
        format!(
            "period {:?}\nscale {:?}\nseed {}\nparts {}\nthreads {}\nsteps {}\n\
             partitioner {}\nrcm {}\noverlap {}\nfault_rate {:?}\nfault_seed {}\n\
             recovery {}\ncheckpoint_every {}\ntrace {}\ndrift_threshold {:?}\n\
             span_capacity {}\nshards {}\nx_kind {}\nx_seed {}\nkernel {}\n\
             conn_timeout {:?}\nwire_fault_rate {:?}\nwire_fault_seed {}\n\
             restart_budget {}\nnodes {}\naggregate {}\nwire_latency {:?}\n",
            self.period,
            self.scale,
            self.seed,
            self.parts,
            self.threads,
            self.steps,
            self.partitioner,
            self.rcm,
            self.overlap,
            self.fault_rate,
            self.fault_seed,
            self.recovery,
            self.checkpoint_every,
            self.trace,
            self.drift_threshold,
            self.span_capacity,
            self.shards,
            self.x_kind,
            self.x_seed,
            self.kernel,
            self.conn_timeout,
            self.wire_fault_rate,
            self.wire_fault_seed,
            self.restart_budget,
            self.nodes,
            self.aggregate,
            self.wire_latency,
        )
    }

    /// Parses [`RunSpec::serialize`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn deserialize(text: &str) -> Result<RunSpec, String> {
        fn set<T: std::str::FromStr>(slot: &mut T, key: &str, val: &str) -> Result<(), String> {
            *slot = val
                .parse()
                .map_err(|_| format!("bad spec value '{val}' for {key}"))?;
            Ok(())
        }
        let mut spec = RunSpec::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad spec line '{line}'"))?;
            match key {
                "period" => set(&mut spec.period, key, val)?,
                "scale" => set(&mut spec.scale, key, val)?,
                "seed" => set(&mut spec.seed, key, val)?,
                "parts" => set(&mut spec.parts, key, val)?,
                "threads" => set(&mut spec.threads, key, val)?,
                "steps" => set(&mut spec.steps, key, val)?,
                "partitioner" => spec.partitioner = val.to_string(),
                "rcm" => set(&mut spec.rcm, key, val)?,
                "overlap" => set(&mut spec.overlap, key, val)?,
                "fault_rate" => set(&mut spec.fault_rate, key, val)?,
                "fault_seed" => set(&mut spec.fault_seed, key, val)?,
                "recovery" => spec.recovery = val.to_string(),
                "checkpoint_every" => set(&mut spec.checkpoint_every, key, val)?,
                "trace" => set(&mut spec.trace, key, val)?,
                "drift_threshold" => set(&mut spec.drift_threshold, key, val)?,
                "span_capacity" => set(&mut spec.span_capacity, key, val)?,
                "shards" => set(&mut spec.shards, key, val)?,
                "x_kind" => spec.x_kind = val.to_string(),
                "x_seed" => set(&mut spec.x_seed, key, val)?,
                "kernel" => spec.kernel = val.to_string(),
                "conn_timeout" => set(&mut spec.conn_timeout, key, val)?,
                "wire_fault_rate" => set(&mut spec.wire_fault_rate, key, val)?,
                "wire_fault_seed" => set(&mut spec.wire_fault_seed, key, val)?,
                "restart_budget" => set(&mut spec.restart_budget, key, val)?,
                "nodes" => set(&mut spec.nodes, key, val)?,
                "aggregate" => set(&mut spec.aggregate, key, val)?,
                "wire_latency" => set(&mut spec.wire_latency, key, val)?,
                other => return Err(format!("unknown spec key '{other}'")),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn run_spec_round_trips() {
        let mut spec = RunSpec {
            period: 2.5,
            scale: 12.0,
            parts: 6,
            threads: 3,
            steps: 7,
            rcm: true,
            overlap: true,
            fault_rate: 0.125,
            shards: 3,
            x_kind: "rng".into(),
            x_seed: 42,
            kernel: "micro-simd".into(),
            conn_timeout: 1.25,
            wire_fault_rate: 0.375,
            wire_fault_seed: 0xbead,
            restart_budget: 3,
            nodes: 2,
            aggregate: false,
            wire_latency: 2.5e-4,
            ..RunSpec::default()
        };
        spec.drift_threshold = 1.75;
        let text = spec.serialize();
        assert_eq!(RunSpec::deserialize(&text).unwrap(), spec);
    }

    #[test]
    fn legacy_specs_without_wire_keys_still_parse() {
        // PR 6 spec files predate the wire-chaos knobs; missing keys must
        // fall back to defaults so old rendezvous dirs stay readable.
        let spec = RunSpec::deserialize("parts 6\nshards 3\n").unwrap();
        assert_eq!(spec.parts, 6);
        assert_eq!(spec.conn_timeout, 30.0);
        assert_eq!(spec.wire_fault_rate, 0.0);
        assert_eq!(spec.restart_budget, 2);
        // Node aggregation postdates PR 9 spec files: absent means flat,
        // aggregating, over the raw socket.
        assert_eq!(spec.nodes, 0);
        assert!(spec.aggregate);
        assert_eq!(spec.wire_latency, 0.0);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(RunSpec::deserialize("nonsense").is_err());
        assert!(RunSpec::deserialize("parts four\n").is_err());
        assert!(RunSpec::deserialize("quux 3\n").is_err());
    }

    proptest! {
        #[test]
        fn ghost_payloads_round_trip(
            step in 0u64..1000,
            from in 0usize..64,
            to in 0usize..64,
            words in proptest::collection::vec(-1e12f64..1e12, 0..64),
        ) {
            let block: Vec<Vec3> = words
                .chunks(3)
                .filter(|c| c.len() == 3)
                .map(|c| Vec3::new(c[0], c[1], c[2]))
                .collect();
            let bytes = encode_ghost(step, from, to, &block);
            let back = decode_ghost(&bytes).expect("round trip");
            prop_assert_eq!(back.step, step);
            prop_assert_eq!(back.from, from);
            prop_assert_eq!(back.to, to);
            prop_assert_eq!(back.block.len(), block.len());
            for (a, b) in back.block.iter().zip(&block) {
                prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
                prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
                prop_assert_eq!(a.z.to_bits(), b.z.to_bits());
            }
        }

        #[test]
        fn truncated_ghost_payloads_error_cleanly(
            cut in 0usize..30,
        ) {
            let block = [Vec3::new(1.0, 2.0, 3.0)];
            let bytes = encode_ghost(9, 1, 2, &block);
            let cut = cut.min(bytes.len() - 1);
            prop_assert!(decode_ghost(&bytes[..cut]).is_err());
        }

        #[test]
        fn ghost_batches_round_trip(
            step in 0u64..1000,
            blocks in proptest::collection::vec(
                proptest::collection::vec(-1e12f64..1e12, 0..12), 0..8),
        ) {
            let typed: Vec<Vec<Vec3>> = blocks
                .iter()
                .map(|ws| {
                    ws.chunks(3)
                        .filter(|c| c.len() == 3)
                        .map(|c| Vec3::new(c[0], c[1], c[2]))
                        .collect()
                })
                .collect();
            let subs: Vec<(u64, usize, usize, &[Vec3])> = typed
                .iter()
                .enumerate()
                .map(|(i, b)| (step, i, i + 1, b.as_slice()))
                .collect();
            let bytes = encode_ghost_batch(&subs);
            let back = decode_ghost_batch(&bytes).expect("round trip");
            prop_assert_eq!(back.len(), subs.len());
            for (g, &(s, f, t, b)) in back.iter().zip(&subs) {
                prop_assert_eq!(g.step, s);
                prop_assert_eq!(g.from, f);
                prop_assert_eq!(g.to, t);
                prop_assert_eq!(g.block.len(), b.len());
                for (x, y) in g.block.iter().zip(b) {
                    prop_assert_eq!(x.x.to_bits(), y.x.to_bits());
                    prop_assert_eq!(x.y.to_bits(), y.y.to_bits());
                    prop_assert_eq!(x.z.to_bits(), y.z.to_bits());
                }
            }
        }

        #[test]
        fn corrupted_batch_sub_blocks_are_caught(
            pos_frac in 0.0f64..1.0,
            bit in 0usize..8,
        ) {
            // Flip one bit anywhere inside a sub-block's words: the
            // per-sub-block digest must catch what the frame checksum
            // would have caught on the wire — the property the replay
            // path needs when a cached batch is re-sent after chaos.
            let b0 = [Vec3::new(1.5, -2.5, 3.5)];
            let b1 = [Vec3::new(4.0, 5.0, 6.0), Vec3::new(7.0, 8.0, 9.0)];
            let subs: Vec<(u64, usize, usize, &[Vec3])> =
                vec![(3, 0, 2, &b0), (3, 1, 2, &b1)];
            let mut bytes = encode_ghost_batch(&subs);
            // Words of sub-block 0 start after count(4) + manifest(20).
            let lo = 4 + 20;
            let hi = lo + 24;
            let pos = lo + (((hi - lo - 1) as f64) * pos_frac) as usize;
            bytes[pos] ^= 1 << bit;
            prop_assert!(decode_ghost_batch(&bytes).is_err());
        }

        #[test]
        fn truncated_batches_error_cleanly(cut_frac in 0.0f64..1.0) {
            let b0 = [Vec3::new(1.0, 2.0, 3.0)];
            let subs: Vec<(u64, usize, usize, &[Vec3])> = vec![(1, 0, 1, &b0)];
            let bytes = encode_ghost_batch(&subs);
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(decode_ghost_batch(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn empty_batches_round_trip() {
        let bytes = encode_ghost_batch(&[]);
        assert_eq!(decode_ghost_batch(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn batch_trailing_bytes_are_rejected() {
        let b0 = [Vec3::new(1.0, 2.0, 3.0)];
        let subs: Vec<(u64, usize, usize, &[Vec3])> = vec![(1, 0, 1, &b0)];
        let mut bytes = encode_ghost_batch(&subs);
        bytes.push(0);
        assert!(decode_ghost_batch(&bytes).is_err());
    }

    #[test]
    fn shard_results_round_trip() {
        let res = ShardResult {
            shard: 1,
            pe_lo: 2,
            pe_hi: 4,
            phases: [0.1, 0.2, 0.3, 0.4],
            pes: vec![
                PeResult {
                    gather: vec![5, 9, 11],
                    exchanged: vec![
                        Vec3::new(1.0, -2.0, 3.0),
                        Vec3::new(0.0, 0.5, -0.5),
                        Vec3::new(9.0, 9.0, 9.0),
                    ],
                    counters: [100, 6, 6, 2, 2],
                    times: [1e-3, 2e-3, 3e-4, 5e-5],
                    boundary_rows: Some(2),
                },
                PeResult {
                    gather: vec![0],
                    exchanged: vec![Vec3::ZERO],
                    counters: [7, 0, 0, 0, 0],
                    times: [0.0; 4],
                    boundary_rows: None,
                },
            ],
            fault: Some({
                let mut fr = FaultReport {
                    retries: 3,
                    wire_resends: 2,
                    reconnects: 1,
                    suspects: 1,
                    respawned_shards: 1,
                    ensemble_restarts: 1,
                    ..FaultReport::default()
                };
                fr.wire_injected.truncate = 4;
                fr.wire_detected.truncate = 4;
                fr.wire_recovered.truncate = 4;
                fr.wire_delay_us_hist[7] = 9;
                fr.wire_delay_us_sum = 9 * 200;
                fr
            }),
        };
        let bytes = encode_result(&res);
        assert_eq!(decode_result(&bytes).unwrap(), res);
    }

    #[test]
    fn truncated_results_error_cleanly() {
        let res = ShardResult {
            shard: 0,
            pe_lo: 0,
            pe_hi: 1,
            phases: [0.0; 4],
            pes: vec![PeResult {
                gather: vec![1, 2],
                exchanged: vec![Vec3::ZERO, Vec3::ZERO],
                counters: [0; 5],
                times: [0.0; 4],
                boundary_rows: None,
            }],
            fault: None,
        };
        let bytes = encode_result(&res);
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_result(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
