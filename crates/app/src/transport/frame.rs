//! Length-prefixed frame codec for the socket transport.
//!
//! Every message on a proc-transport socket is one frame:
//!
//! ```text
//! [magic u16 = 0x5147 "QG"] [kind u8] [reserved u8 = 0]
//! [payload_len u32 le] [payload bytes] [fnv64(payload) u64 le]
//! ```
//!
//! Decoding is total: truncated, oversized, garbage-magic, unknown-kind
//! and checksum-corrupted inputs all surface as typed [`FrameError`]s —
//! never a panic — so a hostile or flaky peer cannot take a shard down.
//! A [`FrameError::ChecksumMismatch`] is recoverable: the reader keeps
//! the stream framed (header and trailer were fully consumed) and asks
//! the peer to resend its cached ghost blocks, feeding the same re-fetch
//! path the chaos layer's corruption detector uses.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: "QG" little-endian.
pub const MAGIC: u16 = 0x5147;

/// Largest accepted payload (16 MiB) — far above any ghost block or
/// result bundle this repo produces, far below an OOM.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Frame header length in bytes (magic + kind + reserved + payload_len).
pub const HEADER_LEN: usize = 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Peer identifies itself: payload = shard id (u32).
    Hello = 1,
    /// Child finished its bootstrap and is ready to run.
    Ready = 2,
    /// Parent releases the children into the run loop.
    Go = 3,
    /// Latency microbenchmark probe (parent -> child).
    Ping = 4,
    /// Latency microbenchmark echo (child -> parent).
    Pong = 5,
    /// Throughput microbenchmark payload (parent -> child).
    Bulk = 6,
    /// Throughput microbenchmark acknowledgement (child -> parent).
    BulkAck = 7,
    /// A posted ghost block (see [`super::wire::GhostPayload`]).
    Ghost = 8,
    /// Request to resend all cached ghost blocks on this connection.
    Resend = 9,
    /// A child's merged run results (see [`super::wire`]).
    Result = 10,
    /// Orderly goodbye.
    Bye = 11,
    /// Liveness beacon sent during long compute phases so a slow peer can
    /// be told apart from a hung one.
    Heartbeat = 12,
    /// A shard tells the supervisor a peer has been silent past the
    /// deadline: payload = suspect shard id (u32).
    Suspect = 13,
    /// A shard notifies the supervisor of a wire-chaos event it is about
    /// to suffer and cannot account for itself (e.g. a stall that ends in
    /// the shard being killed): payload = event code (u32).
    WireEvent = 14,
    /// A child's telemetry snapshot (span ring, histograms, instants, flow
    /// endpoints), sent just before [`FrameKind::Result`] when tracing is
    /// on: payload = `quake_core::telemetry::TelemetrySnapshot::encode`.
    Telemetry = 15,
    /// A merged node-level batch of ghost blocks (see
    /// [`super::wire::encode_ghost_batch`]): one frame per (node, node)
    /// pair per step under the two-level exchange, carrying a sub-block
    /// manifest with per-block digests.
    GhostBatch = 16,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::Ready,
            3 => FrameKind::Go,
            4 => FrameKind::Ping,
            5 => FrameKind::Pong,
            6 => FrameKind::Bulk,
            7 => FrameKind::BulkAck,
            8 => FrameKind::Ghost,
            9 => FrameKind::Resend,
            10 => FrameKind::Result,
            11 => FrameKind::Bye,
            12 => FrameKind::Heartbeat,
            13 => FrameKind::Suspect,
            14 => FrameKind::WireEvent,
            15 => FrameKind::Telemetry,
            16 => FrameKind::GhostBatch,
            _ => return None,
        })
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind.
    pub kind: FrameKind,
    /// The payload bytes (checksum already verified).
    pub payload: Vec<u8>,
}

/// Typed decode/IO failures. No codec path panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary (peer closed its socket).
    Closed,
    /// The stream ended in the middle of a frame.
    Truncated {
        /// How many bytes of the frame were still expected.
        missing: usize,
    },
    /// The first two bytes were not [`MAGIC`] — the stream is desynced.
    BadMagic {
        /// The bytes actually seen.
        got: u16,
    },
    /// An undefined kind byte.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared length.
        len: u32,
    },
    /// The payload checksum did not match; the stream is still framed
    /// and the block can be re-requested.
    ChecksumMismatch {
        /// Checksum declared by the sender.
        expected: u64,
        /// Checksum recomputed over the received payload.
        got: u64,
    },
    /// A read deadline expired at a frame boundary with no bytes in
    /// flight — the peer is silent, not broken. Only surfaced when the
    /// caller armed a socket read timeout.
    TimedOut,
    /// An OS-level I/O error.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the stream"),
            FrameError::Truncated { missing } => {
                write!(f, "stream truncated mid-frame ({missing} bytes missing)")
            }
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:#06x} (expected {MAGIC:#06x})")
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_PAYLOAD} cap"
                )
            }
            FrameError::ChecksumMismatch { expected, got } => write!(
                f,
                "frame checksum mismatch (sent {expected:#018x}, received {got:#018x})"
            ),
            FrameError::TimedOut => write!(f, "read deadline expired at a frame boundary"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over raw bytes — the same core `BlockChecksum` folds f64
/// words through, applied to the frame payload.
fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Encodes one frame into a byte vector.
pub fn encode(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() as u32 <= MAX_PAYLOAD);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(kind as u8);
    out.push(0);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// Writes one frame to `w`.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on a write failure.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), FrameError> {
    let bytes = encode(kind, payload);
    w.write_all(&bytes)
        .map_err(|e| FrameError::Io(e.to_string()))?;
    w.flush().map_err(|e| FrameError::Io(e.to_string()))
}

/// Reads exactly `buf.len()` bytes; distinguishes clean EOF at offset 0
/// (`at_boundary`) from a mid-frame truncation.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated {
                        missing: buf.len() - filled,
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A socket read deadline fired. Clean at a boundary; a
                // mid-frame expiry leaves the stream desynced and must
                // surface as a hard error.
                return if at_boundary && filled == 0 {
                    Err(FrameError::TimedOut)
                } else {
                    Err(FrameError::Io("read timed out mid-frame".into()))
                };
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return if at_boundary && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated {
                        missing: buf.len() - filled,
                    })
                };
            }
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Reads and validates one frame from `r`.
///
/// # Errors
///
/// Every malformed input maps to a typed [`FrameError`]; a
/// `ChecksumMismatch` leaves the stream positioned at the next frame
/// boundary so the caller can request a resend and keep reading.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_or(r, &mut header, true)?;
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic { got: magic });
    }
    let kind = FrameKind::from_u8(header[2]).ok_or(FrameError::UnknownKind(header[2]))?;
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, false)?;
    let mut trailer = [0u8; 8];
    read_exact_or(r, &mut trailer, false)?;
    let expected = u64::from_le_bytes(trailer);
    let got = fnv64(&payload);
    if got != expected {
        return Err(FrameError::ChecksumMismatch { expected, got });
    }
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    const KINDS: [FrameKind; 16] = [
        FrameKind::Hello,
        FrameKind::Ready,
        FrameKind::Go,
        FrameKind::Ping,
        FrameKind::Pong,
        FrameKind::Bulk,
        FrameKind::BulkAck,
        FrameKind::Ghost,
        FrameKind::Resend,
        FrameKind::Result,
        FrameKind::Bye,
        FrameKind::Heartbeat,
        FrameKind::Suspect,
        FrameKind::WireEvent,
        FrameKind::Telemetry,
        FrameKind::GhostBatch,
    ];

    proptest! {
        #[test]
        fn round_trips_arbitrary_payloads(
            kind_idx in 0usize..16,
            payload in proptest::collection::vec(0u8..=255, 0..2048),
        ) {
            let kind = KINDS[kind_idx];
            let bytes = encode(kind, &payload);
            let frame = read_frame(&mut Cursor::new(&bytes)).expect("round trip");
            prop_assert_eq!(frame.kind, kind);
            prop_assert_eq!(frame.payload, payload);
        }

        #[test]
        fn every_truncation_is_a_typed_error(
            payload in proptest::collection::vec(0u8..=255, 0..256),
            cut_frac in 0.0f64..1.0,
        ) {
            let bytes = encode(FrameKind::Ghost, &payload);
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            let err = read_frame(&mut Cursor::new(&bytes[..cut]))
                .expect_err("truncated frame must not decode");
            prop_assert!(matches!(
                err,
                FrameError::Closed | FrameError::Truncated { .. }
            ), "got {:?}", err);
        }

        #[test]
        fn garbage_never_panics(
            junk in proptest::collection::vec(0u8..=255, 0..512),
        ) {
            // Any byte soup must produce a typed error or, by one-in-2^80
            // coincidence, a valid frame — never a panic.
            let _ = read_frame(&mut Cursor::new(&junk));
        }

        #[test]
        fn corrupted_length_prefixes_always_yield_typed_errors(
            payload in proptest::collection::vec(0u8..=255, 0..512),
            raw_len in 0u32..=u32::MAX,
        ) {
            let mut bytes = encode(FrameKind::Ghost, &payload);
            // Any length but the true one is a lie worth testing.
            let bogus_len = if raw_len == payload.len() as u32 {
                raw_len + 1
            } else {
                raw_len
            };
            bytes[4..8].copy_from_slice(&bogus_len.to_le_bytes());
            let err = read_frame(&mut Cursor::new(&bytes))
                .expect_err("a lying length prefix must not decode");
            if bogus_len > MAX_PAYLOAD {
                prop_assert_eq!(err, FrameError::Oversized { len: bogus_len });
            } else {
                // Shorter: trailer bytes come from the old payload, so the
                // checksum misses; longer: the stream runs dry mid-read.
                prop_assert!(matches!(
                    err,
                    FrameError::Truncated { .. } | FrameError::ChecksumMismatch { .. }
                ), "got {:?}", err);
            }
        }

        #[test]
        fn oversized_lengths_are_rejected_before_any_payload_is_read(
            declared in MAX_PAYLOAD + 1..=u32::MAX,
            kind_idx in 0usize..16,
        ) {
            // Feed ONLY the 8-byte header: if the length guard ran after the
            // payload read (or after allocation), this would report
            // Truncated or hang on a multi-gigabyte buffer; Oversized proves
            // the check precedes both.
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC.to_le_bytes());
            header.push(KINDS[kind_idx] as u8);
            header.push(0);
            header.extend_from_slice(&declared.to_le_bytes());
            let err = read_frame(&mut Cursor::new(&header))
                .expect_err("oversized declaration must not decode");
            prop_assert_eq!(err, FrameError::Oversized { len: declared });
        }

        #[test]
        fn truncated_multi_frame_streams_fail_typed_after_good_frames(
            payloads in proptest::collection::vec(
                proptest::collection::vec(0u8..=255, 0..64), 1..4),
            cut_frac in 0.0f64..1.0,
        ) {
            // Several good frames followed by a cut-off one: the reader must
            // hand back every intact frame, then a typed Closed/Truncated.
            let mut stream = Vec::new();
            for p in &payloads {
                stream.extend_from_slice(&encode(FrameKind::Ghost, p));
            }
            let tail = encode(FrameKind::Ghost, b"severed");
            let cut = ((tail.len() - 1) as f64 * cut_frac) as usize;
            stream.extend_from_slice(&tail[..cut]);
            let mut cursor = Cursor::new(&stream);
            for p in &payloads {
                let frame = read_frame(&mut cursor).expect("intact frame");
                prop_assert_eq!(&frame.payload, p);
            }
            prop_assert!(matches!(
                read_frame(&mut cursor),
                Err(FrameError::Closed) | Err(FrameError::Truncated { .. })
            ));
        }

        #[test]
        fn tail_zeroed_runt_frames_are_caught_and_keep_the_stream_framed(
            payload in proptest::collection::vec(1u8..=255, 1..256),
            cut_frac in 0.0f64..1.0,
        ) {
            // The wire injector's truncation model: length prefix intact,
            // payload+trailer zeroed from a cut point. Must surface as a
            // checksum mismatch with the NEXT frame still decodable.
            let mut bytes = encode(FrameKind::Ghost, &payload);
            let cut = HEADER_LEN + ((payload.len() - 1) as f64 * cut_frac) as usize;
            for b in bytes[cut..].iter_mut() {
                *b = 0;
            }
            bytes.extend_from_slice(&encode(FrameKind::Resend, b""));
            let mut cursor = Cursor::new(&bytes);
            prop_assert!(matches!(
                read_frame(&mut cursor),
                Err(FrameError::ChecksumMismatch { .. })
            ));
            let next = read_frame(&mut cursor).expect("stream must stay framed");
            prop_assert_eq!(next.kind, FrameKind::Resend);
        }

        #[test]
        fn single_bit_flips_in_the_payload_are_caught(
            payload in proptest::collection::vec(0u8..=255, 1..256),
            bit in 0usize..8,
            pos_frac in 0.0f64..1.0,
        ) {
            let mut bytes = encode(FrameKind::Ghost, &payload);
            let pos = HEADER_LEN + ((payload.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] ^= 1 << bit;
            let err = read_frame(&mut Cursor::new(&bytes))
                .expect_err("corrupted payload must not decode");
            prop_assert!(
                matches!(err, FrameError::ChecksumMismatch { .. }),
                "got {:?}", err
            );
        }
    }

    #[test]
    fn clean_eof_is_closed_not_truncated() {
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut Cursor::new(empty)), Err(FrameError::Closed));
    }

    #[test]
    fn bad_magic_is_reported_with_the_bytes_seen() {
        let mut bytes = encode(FrameKind::Ping, b"x");
        bytes[0] = 0xde;
        bytes[1] = 0xad;
        assert_eq!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::BadMagic { got: 0xadde })
        );
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let mut bytes = encode(FrameKind::Ping, b"");
        bytes[2] = 0xfe;
        assert_eq!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::UnknownKind(0xfe))
        );
    }

    #[test]
    fn oversized_declarations_are_rejected_without_allocating() {
        let mut bytes = encode(FrameKind::Bulk, b"");
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::Oversized { len: u32::MAX })
        );
    }

    #[test]
    fn checksum_mismatch_keeps_the_stream_framed() {
        // Corrupt frame A's payload, then append a good frame B: the
        // reader must report the mismatch AND decode B on the next call —
        // the property the resend protocol relies on.
        let mut stream = encode(FrameKind::Ghost, b"abcdef");
        let flip = HEADER_LEN + 2;
        stream[flip] ^= 0x40;
        stream.extend_from_slice(&encode(FrameKind::Resend, b""));
        let mut cursor = Cursor::new(&stream);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        let next = read_frame(&mut cursor).expect("stream must stay framed");
        assert_eq!(next.kind, FrameKind::Resend);
    }

    #[test]
    fn errors_display_without_panicking() {
        for e in [
            FrameError::Closed,
            FrameError::Truncated { missing: 3 },
            FrameError::BadMagic { got: 1 },
            FrameError::UnknownKind(0),
            FrameError::Oversized { len: u32::MAX },
            FrameError::ChecksumMismatch {
                expected: 1,
                got: 2,
            },
            FrameError::Io("nope".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
