//! The multi-process transport: shard processes over Unix-domain sockets.
//!
//! `--transport proc` forks `shards` child processes of the current
//! executable. Each child rebuilds the identical problem from the spec
//! file (see [`super::run::build`]), runs a [`BspExecutor`] over its
//! contiguous slice of PEs with one `WorkerPool` per process, and carries
//! ghost blocks to remote PEs as length-prefixed [`frame`](super::frame)
//! frames over a full mesh of Unix-domain sockets. Locally owned edges
//! stay in the in-process [`Mailbox`]; one reader thread per peer
//! connection drains remote ghost frames into the same mailbox, so the
//! executor's acquire path is byte-for-byte the shared-memory path.
//!
//! # Bootstrap protocol
//!
//! The parent binds `parent.sock` in a private rendezvous directory,
//! writes the spec file and spawns the children (`QUAKE_PROC_ROLE=shard`
//! plus id/dir in the environment — [`shard_host_hook`] intercepts them at
//! the top of the host binary's `main`). Each child dials the parent and
//! sends `Hello`, binds its own `shard<k>.sock`, dials every lower shard
//! and accepts every higher one (every child binds before it dials, so
//! the mesh cannot deadlock), then sends `Ready`. The parent runs the
//! socket microbenchmark against shard 0 — 64 `Ping`/`Pong` round trips
//! give Eq. (2)'s `T_l` (half the median RTT) and eight 128-KiB
//! `Bulk`/`BulkAck` transfers give `T_w` — and releases everyone with a
//! `Go` frame carrying the measured parameters. The reported link is
//! therefore *measured on this run's fabric*, never a preset.
//!
//! # Failure semantics
//!
//! A peer death is detected twice over: the dead process's sockets close,
//! which flips the connection's `alive` flag (waking any blocked acquire
//! into a typed [`TransportError::PeerDisconnected`]), and the parent's
//! `try_wait` polling sees the exit status. The parent then kills the
//! remaining children and surfaces one clean error — or, when the spec's
//! recovery policy is `restart`, retries the whole ensemble once (the
//! run is a pure function of the spec, so a retry is exact). A frame
//! whose payload checksum fails leaves the stream framed; the receiver
//! answers with `Resend` and the sender replays its per-edge cache of
//! posted blocks — the constant-`x` replay invariant makes any
//! superseding re-delivery bitwise-harmless.

use super::frame::{read_frame, write_frame, FrameError, FrameKind};
use super::wire::{
    decode_ghost, decode_result, encode_ghost, encode_result, ByteReader, ByteWriter, PeResult,
    RunSpec, ShardResult,
};
use super::{
    block_checksum_vec3, default_timeout, ghost_edges, AcquireInfo, LinkParams, Mailbox, Transport,
    TransportError, TransportKind,
};
use crate::executor::{BspExecutor, ExecutionReport, PeCounters, PhaseWalls};
use crate::transport::run::{Built, RunOutput};
use quake_core::fault::FaultReport;
use quake_sparse::dense::Vec3;
use std::collections::HashMap;
use std::io::ErrorKind;
use std::ops::Range;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Environment marker selecting the shard-child entry point.
const ENV_ROLE: &str = "QUAKE_PROC_ROLE";
/// The child's shard id.
const ENV_ID: &str = "QUAKE_PROC_ID";
/// The rendezvous directory holding the spec file and sockets.
const ENV_DIR: &str = "QUAKE_PROC_DIR";
/// Test knob: `"<shard>:<step>"` makes that shard exit hard at that step.
const ENV_KILL: &str = "QUAKE_PROC_KILL";
/// Test knob: marker-file path making [`ENV_KILL`] fire only once.
const ENV_KILL_ONCE: &str = "QUAKE_PROC_KILL_ONCE";

/// Wall-clock budget for the bootstrap handshakes.
const BOOTSTRAP_TIMEOUT: Duration = Duration::from_secs(30);

/// Shard `k`'s contiguous owned-PE slice — the same near-equal chunking
/// the executor uses for its worker assignment.
pub fn shard_pe_range(parts: usize, shards: usize, k: usize) -> Range<usize> {
    (parts * k / shards)..(parts * (k + 1) / shards)
}

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

/// Intercepts shard-child invocations. Must be the first statement of
/// `main` in every binary that hosts a proc parent (the CLI, the
/// conformance suite, the bench harness): the parent re-executes
/// `current_exe()`, and this hook routes those children into the shard
/// protocol before any argument parsing can run. Returns immediately in
/// every other process.
pub fn shard_host_hook() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("shard") {
        return;
    }
    let code = match child_main() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("quake proc shard: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// The socket-backed Transport.
// ---------------------------------------------------------------------------

/// One peer connection: serialized writer, per-edge resend cache, and the
/// liveness flag the reader thread owns.
struct Peer {
    /// The reporting shard id of the peer.
    shard: usize,
    writer: Mutex<UnixStream>,
    /// Latest posted payload per directed edge on this connection. A
    /// `Resend` request replays the whole cache; superseded steps are
    /// bitwise-identical by the constant-`x` invariant, so over-delivery
    /// is harmless.
    cache: Mutex<HashMap<(usize, usize), Vec<u8>>>,
    alive: AtomicBool,
}

impl Peer {
    fn send(&self, kind: FrameKind, payload: &[u8]) -> Result<(), TransportError> {
        let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        write_frame(&mut *w, kind, payload).map_err(|_| {
            self.alive.store(false, Ordering::Release);
            TransportError::PeerDisconnected { shard: self.shard }
        })
    }
}

/// `(edge index, scheduled length)` by directed edge — shared by the link
/// and its reader threads.
type EdgeMap = HashMap<(usize, usize), (usize, usize)>;

/// The socket-backed [`Transport`] a shard child runs over: local edges
/// through the shared [`Mailbox`], remote edges as `Ghost` frames, with
/// the remote side's reader thread delivering into the same mailbox.
pub struct ProcLink {
    shard: usize,
    mailbox: Arc<Mailbox>,
    /// PE -> owning shard.
    pe_owner: Vec<usize>,
    edges: Arc<EdgeMap>,
    /// Peer connections by shard id (`None` at our own slot).
    peers: Vec<Option<Arc<Peer>>>,
    params: LinkParams,
    /// Fault-injection knob: hard-exit when posting this step.
    kill_at: Option<u64>,
}

impl ProcLink {
    fn owner_of(&self, pe: usize, peer_pe: usize) -> Result<usize, TransportError> {
        self.pe_owner
            .get(pe)
            .copied()
            .ok_or(TransportError::UnknownEdge {
                from: pe.min(peer_pe),
                to: pe.max(peer_pe),
            })
    }

    fn peer(&self, shard: usize) -> Result<&Arc<Peer>, TransportError> {
        match self.peers.get(shard) {
            Some(Some(p)) => Ok(p),
            _ => Err(TransportError::PeerDisconnected { shard }),
        }
    }

    /// Sends an orderly goodbye to every peer (errors ignored — a peer
    /// that already left closed the socket first).
    fn farewell(&self) {
        for peer in self.peers.iter().flatten() {
            let _ = peer.send(FrameKind::Bye, &[]);
        }
    }
}

impl Transport for ProcLink {
    fn kind(&self) -> TransportKind {
        TransportKind::Proc
    }

    fn post(
        &self,
        step: u64,
        from: usize,
        to: usize,
        block: &[Vec3],
    ) -> Result<(), TransportError> {
        if let Some(kill) = self.kill_at {
            if step >= kill {
                // The chaos knob: die exactly like a SIGKILLed shard,
                // with sockets closing mid-protocol.
                std::process::exit(101);
            }
        }
        if self.owner_of(to, from)? == self.shard {
            return self.mailbox.post(step, from, to, block).map(|_| ());
        }
        let &(_, len) = self
            .edges
            .get(&(from, to))
            .ok_or(TransportError::UnknownEdge { from, to })?;
        if block.len() != len {
            return Err(TransportError::LengthMismatch {
                expected: len,
                got: block.len(),
            });
        }
        let peer = self.peer(self.owner_of(to, from)?)?;
        let payload = encode_ghost(step, from, to, block);
        peer.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert((from, to), payload.clone());
        peer.send(FrameKind::Ghost, &payload)
    }

    fn acquire(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
    ) -> Result<AcquireInfo, TransportError> {
        let owner = self.owner_of(from, to)?;
        if owner == self.shard {
            return self.mailbox.acquire(step, from, to, out);
        }
        let peer = self.peer(owner)?;
        let alive = Arc::clone(peer);
        self.mailbox
            .acquire_watch(step, from, to, out, || alive.alive.load(Ordering::Acquire))
            .map_err(|e| match e {
                TransportError::PeerDisconnected { .. } => {
                    TransportError::PeerDisconnected { shard: owner }
                }
                other => other,
            })
    }

    fn link(&self) -> LinkParams {
        self.params
    }

    fn shutdown(&self) -> Result<(), TransportError> {
        self.farewell();
        Ok(())
    }
}

/// Drains one peer connection into the mailbox until the peer says `Bye`
/// or the socket dies. Checksum-mismatched frames leave the stream framed
/// and trigger a `Resend` request; `Resend` requests from the peer replay
/// our cache through the shared writer.
fn reader_loop(
    mut stream: UnixStream,
    peer: Arc<Peer>,
    mailbox: Arc<Mailbox>,
    edges: Arc<EdgeMap>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(f) => match f.kind {
                FrameKind::Ghost => {
                    let Ok(g) = decode_ghost(&f.payload) else {
                        peer.alive.store(false, Ordering::Release);
                        return;
                    };
                    let Some(&(edge, len)) = edges.get(&(g.from, g.to)) else {
                        peer.alive.store(false, Ordering::Release);
                        return;
                    };
                    if g.block.len() != len {
                        peer.alive.store(false, Ordering::Release);
                        return;
                    }
                    // Recompute the receiver-side checksum the executor's
                    // verify path will check the staged copy against.
                    let ck = block_checksum_vec3(&g.block);
                    mailbox.deliver(edge, g.step, &g.block, ck);
                }
                FrameKind::Resend => {
                    let cache = peer.cache.lock().unwrap_or_else(|p| p.into_inner());
                    for payload in cache.values() {
                        if peer.send_locked_is_dead(payload) {
                            return;
                        }
                    }
                }
                // An orderly goodbye: the peer finished its run. Its
                // posted blocks stay acquirable, so `alive` stays up.
                FrameKind::Bye => return,
                _ => {
                    peer.alive.store(false, Ordering::Release);
                    return;
                }
            },
            Err(FrameError::ChecksumMismatch { .. }) => {
                // Stream still framed: ask for a replay of everything
                // this peer posted us.
                if peer.send(FrameKind::Resend, &[]).is_err() {
                    return;
                }
            }
            Err(_) => {
                peer.alive.store(false, Ordering::Release);
                return;
            }
        }
    }
}

impl Peer {
    /// Resends one cached payload; returns `true` when the peer is gone.
    fn send_locked_is_dead(&self, payload: &[u8]) -> bool {
        self.send(FrameKind::Ghost, payload).is_err()
    }
}

// ---------------------------------------------------------------------------
// Child process.
// ---------------------------------------------------------------------------

fn connect_retry(path: &Path, deadline: Instant) -> Result<UnixStream, TransportError> {
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Io(format!(
                        "connect {} timed out: {e}",
                        path.display()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn env_usize(key: &str) -> Result<usize, TransportError> {
    std::env::var(key)
        .map_err(|_| TransportError::Protocol(format!("missing {key}")))?
        .parse()
        .map_err(|_| TransportError::Protocol(format!("bad {key}")))
}

/// Parses the kill knob for this shard. Creating the once-marker at plan
/// time is deliberate: this process will deterministically die at the
/// planned step, and the marker must already exist when the parent's
/// retry ensemble re-reads the environment.
fn kill_plan(shard: usize) -> Option<u64> {
    let spec = std::env::var(ENV_KILL).ok()?;
    let (victim, step) = spec.split_once(':')?;
    if victim.parse::<usize>().ok()? != shard {
        return None;
    }
    let step = step.parse().ok()?;
    if let Ok(marker) = std::env::var(ENV_KILL_ONCE) {
        if Path::new(&marker).exists() {
            return None;
        }
        let _ = std::fs::write(&marker, b"fired\n");
    }
    Some(step)
}

fn expect_hello(stream: &mut UnixStream) -> Result<usize, TransportError> {
    let f = read_frame(stream)?;
    if f.kind != FrameKind::Hello {
        return Err(TransportError::Protocol(format!(
            "expected Hello, got {:?}",
            f.kind
        )));
    }
    let mut r = ByteReader::new(&f.payload);
    let id = r.u32()? as usize;
    Ok(id)
}

fn hello_payload(id: usize) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(id as u32);
    w.finish()
}

/// The shard-child entry point: rebuild the problem, join the socket
/// mesh, serve the microbenchmark, run the owned PE slice, report.
fn child_main() -> Result<(), TransportError> {
    let id = env_usize(ENV_ID)?;
    let dir = PathBuf::from(
        std::env::var(ENV_DIR)
            .map_err(|_| TransportError::Protocol(format!("missing {ENV_DIR}")))?,
    );
    let spec_text = std::fs::read_to_string(dir.join("spec.txt")).map_err(io_err)?;
    let spec = RunSpec::deserialize(&spec_text).map_err(TransportError::Protocol)?;
    let built = super::run::build(&spec).map_err(TransportError::Protocol)?;
    let shards = spec.shards;
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;

    let mut parent = connect_retry(&dir.join("parent.sock"), deadline)?;
    write_frame(&mut parent, FrameKind::Hello, &hello_payload(id))?;

    // Peer mesh: bind first, then dial down, then accept from above — the
    // bind-before-dial order makes the mesh deadlock-free.
    let listener = UnixListener::bind(dir.join(format!("shard{id}.sock"))).map_err(io_err)?;
    let mut streams: Vec<Option<UnixStream>> = (0..shards).map(|_| None).collect();
    for j in 0..id {
        let mut s = connect_retry(&dir.join(format!("shard{j}.sock")), deadline)?;
        write_frame(&mut s, FrameKind::Hello, &hello_payload(id))?;
        streams[j] = Some(s);
    }
    for _ in id + 1..shards {
        let (mut s, _) = listener.accept().map_err(io_err)?;
        let j = expect_hello(&mut s)?;
        if j <= id || j >= shards || streams[j].is_some() {
            return Err(TransportError::Protocol(format!(
                "unexpected Hello from shard {j}"
            )));
        }
        streams[j] = Some(s);
    }
    write_frame(&mut parent, FrameKind::Ready, &[])?;

    // Serve the parent's microbenchmark until the Go carrying the
    // measured link parameters.
    let (t_l, t_w) = loop {
        let f = read_frame(&mut parent)?;
        match f.kind {
            FrameKind::Ping => write_frame(&mut parent, FrameKind::Pong, &f.payload)?,
            FrameKind::Bulk => write_frame(&mut parent, FrameKind::BulkAck, &[])?,
            FrameKind::Go => {
                let mut r = ByteReader::new(&f.payload);
                break (r.f64()?, r.f64()?);
            }
            other => {
                return Err(TransportError::Protocol(format!(
                    "expected Ping/Bulk/Go, got {other:?}"
                )))
            }
        }
    };

    // Assemble the link and its reader threads.
    let parts = spec.parts;
    let owned = shard_pe_range(parts, shards, id);
    let edge_list = ghost_edges(&built.system);
    let mailbox = Arc::new(Mailbox::new(&edge_list, default_timeout()));
    let edges: Arc<EdgeMap> = Arc::new(
        edge_list
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.from, e.to), (i, e.len)))
            .collect(),
    );
    let pe_owner: Vec<usize> = (0..parts)
        .map(|q| (0..shards).find(|&k| shard_pe_range(parts, shards, k).contains(&q)))
        .map(|k| k.expect("shard ranges tile the PE space"))
        .collect();
    let mut peers: Vec<Option<Arc<Peer>>> = (0..shards).map(|_| None).collect();
    let mut readers = Vec::new();
    for (j, slot) in streams.iter_mut().enumerate() {
        let Some(s) = slot.take() else { continue };
        let rs = s.try_clone().map_err(io_err)?;
        let peer = Arc::new(Peer {
            shard: j,
            writer: Mutex::new(s),
            cache: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        peers[j] = Some(Arc::clone(&peer));
        let mb = Arc::clone(&mailbox);
        let em = Arc::clone(&edges);
        readers.push(std::thread::spawn(move || reader_loop(rs, peer, mb, em)));
    }
    let link = Arc::new(ProcLink {
        shard: id,
        mailbox,
        pe_owner,
        edges,
        peers,
        params: LinkParams {
            t_l,
            t_w,
            measured: true,
        },
        kill_at: kill_plan(id),
    });

    // Run the owned slice. Transport faults surface as panics out of the
    // worker pool; catch them so a peer death exits this child cleanly
    // (nonzero) instead of aborting mid-unwind.
    let mut exec = BspExecutor::with_transport(
        &built.system,
        spec.threads,
        spec.rcm,
        spec.overlap,
        owned.clone(),
        Arc::clone(&link) as Arc<dyn Transport>,
    );
    super::run::arm(&mut exec, &spec).map_err(TransportError::Protocol)?;
    let ran = catch_unwind(AssertUnwindSafe(|| exec.run(&built.x, spec.steps)));
    if let Err(panic) = ran {
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "worker panic".into());
        return Err(TransportError::Protocol(format!(
            "shard {id} run failed: {msg}"
        )));
    }

    // Report: gather lists + post-exchange partials per owned PE, plus
    // counters, phase walls and the fault ledger.
    let report = exec.report();
    let boundary = exec.overlap_boundary_rows().map(|b| b.to_vec());
    let pes: Vec<PeResult> = owned
        .clone()
        .map(|q| {
            let c = report.pe[q];
            PeResult {
                gather: exec.gather_of(q).to_vec(),
                exchanged: exec.exchanged_of(q).to_vec(),
                counters: [
                    c.flops,
                    c.words_sent,
                    c.words_received,
                    c.blocks_sent,
                    c.blocks_received,
                ],
                times: [c.t_assemble, c.t_compute, c.t_exchange, c.t_barrier],
                boundary_rows: boundary.as_ref().map(|b| b[q]),
            }
        })
        .collect();
    let result = ShardResult {
        shard: id,
        pe_lo: owned.start,
        pe_hi: owned.end,
        phases: [
            report.phases.assemble,
            report.phases.compute,
            report.phases.exchange,
            report.phases.fold,
        ],
        pes,
        fault: report.fault,
    };
    write_frame(&mut parent, FrameKind::Result, &encode_result(&result))?;
    link.farewell();
    // The parent stops reading the moment the Result frame lands, so this
    // courtesy Bye can race the dropped socket — not a failure.
    let _ = write_frame(&mut parent, FrameKind::Bye, &[]);
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent process.
// ---------------------------------------------------------------------------

/// Kills and reaps the children and removes the rendezvous directory,
/// whatever state the ensemble died in.
struct Ensemble {
    children: Vec<Child>,
    dir: PathBuf,
}

impl Drop for Ensemble {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
        }
        for c in &mut self.children {
            let _ = c.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn rendezvous_dir() -> Result<PathBuf, TransportError> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "quake-proc-{}-{}-{nanos}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir(&dir).map_err(io_err)?;
    Ok(dir)
}

fn any_child_dead(children: &mut [Child], done: &[bool]) -> Option<usize> {
    for (k, c) in children.iter_mut().enumerate() {
        if done[k] {
            continue;
        }
        if let Ok(Some(status)) = c.try_wait() {
            if !status.success() {
                return Some(k);
            }
        }
    }
    None
}

/// Runs the Eq. (2) microbenchmark against one child: `T_l` from 64
/// ping/pong RTTs (median, halved), `T_w` from eight 128-KiB bulk
/// transfers with the latency share subtracted.
fn microbench(conn: &mut UnixStream) -> Result<LinkParams, TransportError> {
    const PINGS: usize = 64;
    const ROUNDS: usize = 8;
    const BULK_BYTES: usize = 128 * 1024;
    let mut rtts = Vec::with_capacity(PINGS);
    for i in 0..PINGS {
        let t0 = Instant::now();
        write_frame(conn, FrameKind::Ping, &(i as u64).to_le_bytes())?;
        let f = read_frame(conn)?;
        if f.kind != FrameKind::Pong {
            return Err(TransportError::Protocol(format!(
                "expected Pong, got {:?}",
                f.kind
            )));
        }
        rtts.push(t0.elapsed().as_secs_f64());
    }
    rtts.sort_by(|a, b| a.partial_cmp(b).expect("RTTs are finite"));
    let t_l = (rtts[PINGS / 2] / 2.0).max(1e-9);
    let payload = vec![0u8; BULK_BYTES];
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        write_frame(conn, FrameKind::Bulk, &payload)?;
        let f = read_frame(conn)?;
        if f.kind != FrameKind::BulkAck {
            return Err(TransportError::Protocol(format!(
                "expected BulkAck, got {:?}",
                f.kind
            )));
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let words = (ROUNDS * BULK_BYTES / 8) as f64;
    let t_w = ((elapsed - (ROUNDS as f64) * 2.0 * t_l) / words).max(1e-12);
    Ok(LinkParams {
        t_l,
        t_w,
        measured: true,
    })
}

fn merge_fault(into: &mut FaultReport, fr: &FaultReport) {
    for (a, b) in [
        (&mut into.injected, &fr.injected),
        (&mut into.detected, &fr.detected),
        (&mut into.recovered, &fr.recovered),
    ] {
        a.straggle += b.straggle;
        a.drop += b.drop;
        a.corrupt += b.corrupt;
        a.crash += b.crash;
    }
    into.retries += fr.retries;
    into.refetches += fr.refetches;
    into.replayed_steps += fr.replayed_steps;
    into.checkpoints += fr.checkpoints;
    into.restores += fr.restores;
    into.degraded_shards += fr.degraded_shards;
    into.respawned_workers += fr.respawned_workers;
}

/// Launches the shard ensemble for a spec and merges its results. With
/// the `restart` recovery policy a failed ensemble is retried once — the
/// run is a pure function of the spec, so the retry is exact.
///
/// # Errors
///
/// Returns a typed error on any spawn, protocol, or child failure.
pub fn run_parent(spec: &RunSpec, built: &Built) -> Result<RunOutput, TransportError> {
    if spec.shards == 0 {
        return Err(TransportError::Protocol("shards must be at least 1".into()));
    }
    let attempts = if spec.recovery == "restart" { 2 } else { 1 };
    let mut last = None;
    for _ in 0..attempts {
        match run_ensemble(spec, built) {
            Ok(out) => return Ok(out),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt ran"))
}

fn run_ensemble(spec: &RunSpec, built: &Built) -> Result<RunOutput, TransportError> {
    let dir = rendezvous_dir()?;
    std::fs::write(dir.join("spec.txt"), spec.serialize()).map_err(io_err)?;
    let listener = UnixListener::bind(dir.join("parent.sock")).map_err(io_err)?;
    listener.set_nonblocking(true).map_err(io_err)?;
    let exe = std::env::current_exe().map_err(io_err)?;
    let mut ensemble = Ensemble {
        children: Vec::new(),
        dir: dir.clone(),
    };
    for k in 0..spec.shards {
        let child = Command::new(&exe)
            .env(ENV_ROLE, "shard")
            .env(ENV_ID, k.to_string())
            .env(ENV_DIR, &dir)
            .stdin(Stdio::null())
            .spawn()
            .map_err(io_err)?;
        ensemble.children.push(child);
    }

    // Collect Hellos.
    let deadline = Instant::now() + BOOTSTRAP_TIMEOUT;
    let mut conns: Vec<Option<UnixStream>> = (0..spec.shards).map(|_| None).collect();
    let mut connected = 0;
    while connected < spec.shards {
        match listener.accept() {
            Ok((mut s, _)) => {
                s.set_nonblocking(false).map_err(io_err)?;
                s.set_read_timeout(Some(BOOTSTRAP_TIMEOUT))
                    .map_err(io_err)?;
                let id = expect_hello(&mut s)?;
                if id >= spec.shards || conns[id].is_some() {
                    return Err(TransportError::Protocol(format!(
                        "unexpected Hello from shard {id}"
                    )));
                }
                conns[id] = Some(s);
                connected += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                let none_done = vec![false; spec.shards];
                if let Some(k) = any_child_dead(&mut ensemble.children, &none_done) {
                    return Err(TransportError::PeerDisconnected { shard: k });
                }
                if Instant::now() >= deadline {
                    return Err(TransportError::Io("bootstrap accept timed out".into()));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    let mut conns: Vec<UnixStream> = conns
        .into_iter()
        .map(|c| c.expect("all shards connected"))
        .collect();

    // Readies, then the microbenchmark, then Go.
    for (k, conn) in conns.iter_mut().enumerate() {
        let f = read_frame(conn)?;
        if f.kind != FrameKind::Ready {
            return Err(TransportError::Protocol(format!(
                "shard {k}: expected Ready, got {:?}",
                f.kind
            )));
        }
    }
    let params = microbench(&mut conns[0])?;
    let mut go = ByteWriter::new();
    go.f64(params.t_l);
    go.f64(params.t_w);
    let go = go.finish();
    for conn in conns.iter_mut() {
        write_frame(conn, FrameKind::Go, &go)?;
    }

    // One blocking reader per child; the main thread polls for results
    // and child deaths.
    let (tx, rx) = mpsc::channel::<(usize, Result<ShardResult, TransportError>)>();
    let mut handles = Vec::new();
    for (k, mut s) in conns.into_iter().enumerate() {
        s.set_read_timeout(None).map_err(io_err)?;
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let out = (|| loop {
                let f = read_frame(&mut s)?;
                match f.kind {
                    FrameKind::Result => return decode_result(&f.payload),
                    FrameKind::Bye => {
                        return Err(TransportError::Protocol("Bye before Result".into()))
                    }
                    _ => {}
                }
            })();
            let _ = tx.send((k, out));
        }));
    }
    drop(tx);
    let mut results: Vec<Option<ShardResult>> = (0..spec.shards).map(|_| None).collect();
    let mut failure: Option<TransportError> = None;
    let mut pending = spec.shards;
    while pending > 0 && failure.is_none() {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok((k, Ok(res))) => {
                if res.shard != k
                    || (res.pe_lo..res.pe_hi) != shard_pe_range(spec.parts, spec.shards, k)
                {
                    failure = Some(TransportError::Protocol(format!(
                        "shard {k} reported foreign range {}..{}",
                        res.pe_lo, res.pe_hi
                    )));
                } else {
                    results[k] = Some(res);
                    pending -= 1;
                }
            }
            Ok((k, Err(e))) => {
                failure = Some(match e {
                    TransportError::Frame(FrameError::Closed) => {
                        TransportError::PeerDisconnected { shard: k }
                    }
                    other => other,
                });
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let done: Vec<bool> = results.iter().map(|r| r.is_some()).collect();
                if let Some(k) = any_child_dead(&mut ensemble.children, &done) {
                    failure = Some(TransportError::PeerDisconnected { shard: k });
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                failure = Some(TransportError::Protocol(
                    "result readers exited without reporting".into(),
                ));
            }
        }
    }
    if let Some(e) = failure {
        // Ensemble::drop kills the survivors; the closed sockets unblock
        // the reader threads, so the joins below cannot hang.
        drop(ensemble);
        for h in handles {
            let _ = h.join();
        }
        return Err(e);
    }
    for h in handles {
        let _ = h.join();
    }

    // Merge: counters per owned slot, phase walls elementwise max (the
    // ensemble's critical path), fault ledgers summed, and the global
    // fold replayed first-writer-wins in ascending shard/PE order — the
    // exact order the in-process executor folds in.
    let nodes = built.system.global_nodes();
    let mut y = vec![Vec3::ZERO; nodes];
    let mut written = vec![false; nodes];
    let mut pe = vec![PeCounters::default(); spec.parts];
    let mut phases = PhaseWalls::default();
    let mut fault: Option<FaultReport> = None;
    let mut boundary: Option<Vec<usize>> = spec.overlap.then(|| vec![0usize; spec.parts]);
    for res in results.iter().map(|r| r.as_ref().expect("all reported")) {
        for (i, pr) in res.pes.iter().enumerate() {
            let q = res.pe_lo + i;
            if pr.gather.len() != pr.exchanged.len() {
                return Err(TransportError::Protocol(format!(
                    "PE {q}: gather/exchanged length mismatch"
                )));
            }
            for (l, &g) in pr.gather.iter().enumerate() {
                if g >= nodes {
                    return Err(TransportError::Protocol(format!(
                        "PE {q}: gather index {g} out of {nodes} nodes"
                    )));
                }
                if !written[g] {
                    written[g] = true;
                    y[g] = pr.exchanged[l];
                }
            }
            pe[q] = PeCounters {
                flops: pr.counters[0],
                words_sent: pr.counters[1],
                words_received: pr.counters[2],
                blocks_sent: pr.counters[3],
                blocks_received: pr.counters[4],
                t_assemble: pr.times[0],
                t_compute: pr.times[1],
                t_exchange: pr.times[2],
                t_barrier: pr.times[3],
            };
            if let (Some(b), Some(br)) = (boundary.as_mut(), pr.boundary_rows) {
                b[q] = br;
            }
        }
        phases.assemble = phases.assemble.max(res.phases[0]);
        phases.compute = phases.compute.max(res.phases[1]);
        phases.exchange = phases.exchange.max(res.phases[2]);
        phases.fold = phases.fold.max(res.phases[3]);
        if let Some(fr) = &res.fault {
            match fault.as_mut() {
                Some(acc) => merge_fault(acc, fr),
                None => fault = Some(*fr),
            }
        }
    }
    if !written.iter().all(|&w| w) {
        return Err(TransportError::Protocol(
            "shard results do not cover every global node".into(),
        ));
    }
    Ok(RunOutput {
        y,
        report: ExecutionReport {
            threads: spec.threads,
            steps: spec.steps,
            pe,
            phases,
            fault,
        },
        boundary_rows: boundary,
        link: params,
        modeled_exchange_s: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::frame;
    use crate::transport::GhostEdge;

    #[test]
    fn shard_ranges_tile_the_pe_space() {
        for parts in 1..12 {
            for shards in 1..=parts {
                let mut covered = 0;
                let mut expect_start = 0;
                for k in 0..shards {
                    let r = shard_pe_range(parts, shards, k);
                    assert_eq!(r.start, expect_start, "contiguous tiling");
                    expect_start = r.end;
                    covered += r.len();
                }
                assert_eq!(expect_start, parts);
                assert_eq!(covered, parts);
            }
        }
    }

    fn test_edges() -> Vec<GhostEdge> {
        vec![
            GhostEdge {
                from: 0,
                to: 1,
                len: 2,
            },
            GhostEdge {
                from: 1,
                to: 0,
                len: 2,
            },
        ]
    }

    fn spawn_reader(
        stream: UnixStream,
        peer_shard: usize,
    ) -> (Arc<Peer>, Arc<Mailbox>, std::thread::JoinHandle<()>) {
        let edges = test_edges();
        let mailbox = Arc::new(Mailbox::new(&edges, Duration::from_secs(2)));
        let map: Arc<EdgeMap> = Arc::new(
            edges
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.from, e.to), (i, e.len)))
                .collect(),
        );
        let peer = Arc::new(Peer {
            shard: peer_shard,
            writer: Mutex::new(stream.try_clone().unwrap()),
            cache: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        let h = {
            let (p, m, e) = (Arc::clone(&peer), Arc::clone(&mailbox), Arc::clone(&map));
            std::thread::spawn(move || reader_loop(stream, p, m, e))
        };
        (peer, mailbox, h)
    }

    #[test]
    fn reader_delivers_remote_ghost_blocks_into_the_mailbox() {
        let (mut ours, theirs) = UnixStream::pair().unwrap();
        let (peer, mailbox, h) = spawn_reader(theirs, 1);
        let block = [Vec3::new(1.5, -2.5, 3.5), Vec3::new(0.25, 0.5, 0.75)];
        let payload = encode_ghost(3, 0, 1, &block);
        write_frame(&mut ours, FrameKind::Ghost, &payload).unwrap();
        let mut out = [Vec3::ZERO; 2];
        let info = mailbox.acquire(3, 0, 1, &mut out).unwrap();
        assert_eq!(out[0].x.to_bits(), block[0].x.to_bits());
        assert_eq!(info.checksum, block_checksum_vec3(&block));
        assert!(peer.alive.load(Ordering::Acquire));
        write_frame(&mut ours, FrameKind::Bye, &[]).unwrap();
        h.join().unwrap();
        // An orderly Bye leaves posted blocks acquirable.
        assert!(peer.alive.load(Ordering::Acquire));
        assert!(mailbox.acquire(3, 0, 1, &mut out).is_ok());
    }

    #[test]
    fn checksum_mismatch_triggers_resend_and_stream_stays_framed() {
        let (mut ours, theirs) = UnixStream::pair().unwrap();
        let (_peer, mailbox, h) = spawn_reader(theirs, 1);
        let block = [Vec3::new(9.0, 8.0, 7.0), Vec3::new(6.0, 5.0, 4.0)];
        let payload = encode_ghost(0, 0, 1, &block);
        // Corrupt one payload byte after framing: the frame checksum now
        // mismatches but the length prefix keeps the stream in sync.
        let mut bytes = frame::encode(FrameKind::Ghost, &payload);
        let flip = frame::HEADER_LEN + payload.len() / 2;
        bytes[flip] ^= 0xff;
        use std::io::Write as _;
        ours.write_all(&bytes).unwrap();
        // The reader must answer with a Resend request...
        let f = read_frame(&mut ours).unwrap();
        assert_eq!(f.kind, FrameKind::Resend);
        // ...and accept the clean replay on the still-framed stream.
        write_frame(&mut ours, FrameKind::Ghost, &payload).unwrap();
        let mut out = [Vec3::ZERO; 2];
        let info = mailbox.acquire(0, 0, 1, &mut out).unwrap();
        assert_eq!(out[1].z.to_bits(), block[1].z.to_bits());
        assert_eq!(info.checksum, block_checksum_vec3(&block));
        drop(ours);
        h.join().unwrap();
    }

    #[test]
    fn peer_resends_its_cache_on_request() {
        // Build a minimal ProcLink whose only remote peer is our end of a
        // socketpair, post through it, then ask for a resend.
        let (ours, theirs) = UnixStream::pair().unwrap();
        let edges = test_edges();
        let mailbox = Arc::new(Mailbox::new(&edges, Duration::from_secs(2)));
        let map: Arc<EdgeMap> = Arc::new(
            edges
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.from, e.to), (i, e.len)))
                .collect(),
        );
        let peer = Arc::new(Peer {
            shard: 1,
            writer: Mutex::new(theirs.try_clone().unwrap()),
            cache: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(true),
        });
        let reader = {
            let (p, m, e) = (Arc::clone(&peer), Arc::clone(&mailbox), Arc::clone(&map));
            std::thread::spawn(move || reader_loop(theirs, p, m, e))
        };
        let link = ProcLink {
            shard: 0,
            mailbox: Arc::clone(&mailbox),
            pe_owner: vec![0, 1],
            edges: map,
            peers: vec![None, Some(Arc::clone(&peer))],
            params: LinkParams {
                t_l: 0.0,
                t_w: 0.0,
                measured: false,
            },
            kill_at: None,
        };
        let block = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        link.post(5, 0, 1, &block).unwrap();
        let mut ours_r = ours.try_clone().unwrap();
        let f = read_frame(&mut ours_r).unwrap();
        assert_eq!(f.kind, FrameKind::Ghost);
        // Simulate a receiver that lost the frame: request a resend.
        let mut ours_w = ours;
        write_frame(&mut ours_w, FrameKind::Resend, &[]).unwrap();
        let f = read_frame(&mut ours_r).unwrap();
        assert_eq!(f.kind, FrameKind::Ghost);
        let g = decode_ghost(&f.payload).unwrap();
        assert_eq!(g.step, 5);
        assert_eq!((g.from, g.to), (0, 1));
        assert_eq!(g.block[1].y.to_bits(), block[1].y.to_bits());
        // Typed errors on bad posts, never panics.
        assert!(matches!(
            link.post(5, 0, 1, &block[..1]),
            Err(TransportError::LengthMismatch { .. })
        ));
        assert!(matches!(
            link.post(5, 0, 9, &block),
            Err(TransportError::UnknownEdge { .. })
        ));
        drop(ours_w);
        drop(ours_r);
        reader.join().unwrap();
    }

    #[test]
    fn dead_peer_turns_acquires_into_typed_disconnects() {
        let (ours, theirs) = UnixStream::pair().unwrap();
        let (peer, mailbox, h) = spawn_reader(theirs, 1);
        let map: Arc<EdgeMap> = Arc::new(
            test_edges()
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.from, e.to), (i, e.len)))
                .collect(),
        );
        let link = ProcLink {
            shard: 0,
            mailbox,
            pe_owner: vec![0, 1],
            edges: map,
            peers: vec![None, Some(Arc::clone(&peer))],
            params: LinkParams {
                t_l: 0.0,
                t_w: 0.0,
                measured: false,
            },
            kill_at: None,
        };
        drop(ours); // peer dies without Bye
        h.join().unwrap();
        let mut out = [Vec3::ZERO; 2];
        assert_eq!(
            link.acquire(0, 1, 0, &mut out).unwrap_err(),
            TransportError::PeerDisconnected { shard: 1 }
        );
    }
}
